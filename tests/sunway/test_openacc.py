"""Tests for the OpenACC facade (the interface the paper rejected)."""

import pytest

from repro.des import Simulator
from repro.sunway.openacc import SunwayOpenACC


def test_parallel_and_wait():
    sim = Simulator()
    acc = SunwayOpenACC(sim, launch_latency=1e-5)
    done = []

    def proc(sim, acc):
        region = acc.parallel(duration=1e-3, on_complete=lambda: done.append(sim.now))
        yield acc.acc_wait(region)
        return sim.now

    p = sim.process(proc(sim, acc))
    sim.run()
    assert p.value == pytest.approx(1e-3 + 1e-5)
    assert done == [p.value]


def test_wait_all():
    sim = Simulator()
    acc = SunwayOpenACC(sim, launch_latency=0.0)

    def proc(sim, acc):
        acc.parallel(duration=1e-3)
        yield acc.acc_wait_all()
        return sim.now

    p = sim.process(proc(sim, acc))
    sim.run()
    assert p.value == pytest.approx(1e-3)


def test_async_test_unsupported_as_on_sunway():
    """The paper's reason for using athread instead: no acc_async_test."""
    sim = Simulator()
    acc = SunwayOpenACC(sim)
    region = acc.parallel(duration=1.0)
    with pytest.raises(NotImplementedError, match="acc_async_test"):
        acc.acc_async_test(region)
    sim.run()


def test_openacc_launch_costlier_than_athread():
    """The facade models OpenACC's heavier launch path."""
    from repro.sunway.athread import AthreadRuntime

    sim = Simulator()
    acc = SunwayOpenACC(sim)
    raw = AthreadRuntime(sim)
    assert acc._athread.launch_latency > raw.launch_latency


def test_region_exposes_no_completion_probe():
    """AccRegion deliberately hides the handle's `done` (no polling API)."""
    sim = Simulator()
    acc = SunwayOpenACC(sim)
    region = acc.parallel(duration=1.0)
    assert not hasattr(region, "done")
    sim.run()
