"""Minimized, seeded reproduction bundles for verification failures.

When the differential harness finds a violating or physics-divergent
case it emits a :class:`ReproBundle`: the exact (mode, policy, fault
seed, problem) coordinates, minimized to the fewest timesteps that still
fail, plus the first violating event and the window of bus events around
it.  A bundle is a plain JSON file; ``ReproBundle.command`` is the CLI
line that re-runs the failing case deterministically.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t


@dataclasses.dataclass
class ReproBundle:
    """Everything needed to reproduce one verification failure."""

    #: What failed: an invariant identifier from the catalog, or
    #: ``"physics-divergence"`` / ``"schedule-perturbation"``.
    failure: str
    mode: str
    select_policy: str
    #: Fault seed (None = fault-free case).
    fault_seed: int | None
    #: Problem coordinates: extent, layout, num_ranks, nsteps (minimized).
    problem: dict
    #: The first violation, as a dict (None for pure divergence cases).
    violation: dict | None
    #: Ring-buffer snapshot of bus events around the first violation.
    window: list[dict]
    #: Free-form description of the failure.
    detail: str = ""

    @property
    def command(self) -> str:
        """CLI line that re-runs exactly this case."""
        extent = "x".join(str(e) for e in self.problem.get("extent", ()))
        parts = [
            "repro verify",
            f"--modes {self.mode}",
            f"--policies {self.select_policy}",
            f"--nsteps {self.problem.get('nsteps', 3)}",
            f"--extent {extent}" if extent else "",
            f"--cgs {self.problem.get('num_ranks', 2)}",
        ]
        parts.append(
            f"--seeds {self.fault_seed}" if self.fault_seed is not None else "--seeds none"
        )
        return " ".join(p for p in parts if p)

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "failure": self.failure,
            "mode": self.mode,
            "select_policy": self.select_policy,
            "fault_seed": self.fault_seed,
            "problem": self.problem,
            "violation": self.violation,
            "window": self.window,
            "detail": self.detail,
            "command": self.command,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def read(cls, path: str | pathlib.Path) -> "ReproBundle":
        data = json.loads(pathlib.Path(path).read_text())
        data.pop("command", None)  # derived property
        return cls(**data)

    def render(self) -> str:
        """Human-readable failure card."""
        lines = [
            f"verification failure: {self.failure}",
            f"  mode={self.mode} policy={self.select_policy} "
            f"seed={self.fault_seed}",
            f"  problem: {self.problem}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.violation is not None:
            lines.append(
                f"  first violation: [{self.violation['invariant']}] "
                f"rank {self.violation['rank']} step {self.violation['step']} "
                f"-- {self.violation['detail']}"
            )
        if self.window:
            lines.append(f"  last {len(self.window)} bus events before failure:")
            for ev in self.window[-10:]:
                lines.append(f"    {ev}")
        lines.append(f"  reproduce: {self.command}")
        return "\n".join(lines)
