"""SW26010 / Sunway TaihuLight architectural model.

This package is the hardware substrate the reproduction runs on.  The real
paper ran on Sunway TaihuLight; everything architecture-specific the
scheduler depends on is modelled here explicitly:

* :mod:`~repro.sunway.config` — machine parameters (Table II of the paper):
  core-group topology (1 MPE + 64 CPEs), peak rates, memory, interconnect.
* :mod:`~repro.sunway.ldm` — the 64 KB per-CPE Local Data Memory as a real
  capacity-checked allocator.
* :mod:`~repro.sunway.dma` — DMA transfer cost model (``athread_get`` /
  ``athread_put`` bandwidth and latency).
* :mod:`~repro.sunway.athread` — the offload interface: spawn a kernel on
  the CPE cluster, completion flags updated atomically (the ``faaw``
  instruction), synchronous join or asynchronous polling.
* :mod:`~repro.sunway.corerates` — throughput model for MPE and CPE
  execution of instrumented kernels (splits exponential and stencil work,
  models SIMD speedup and fast-exp vs IEEE-exp cost).
* :mod:`~repro.sunway.simd` — a behavioural emulation of the 256-bit 4-wide
  SIMD intrinsics used in the paper's Algorithm 2.
* :mod:`~repro.sunway.fastmath` — IEEE vs fast (non-conforming) software
  exponentials; the fast one really is less accurate, as on Sunway.
* :mod:`~repro.sunway.perfcounters` — FLOP counters with the SW26010
  convention that division and square root count as one operation.
"""

from repro.sunway.config import (
    SunwayMachine,
    CoreGroupConfig,
    InterconnectConfig,
    SW26010,
)
from repro.sunway.ldm import LDM, LDMAllocationError
from repro.sunway.dma import DMAEngine, DMATransfer
from repro.sunway.athread import AthreadRuntime, CompletionFlag, OffloadHandle
from repro.sunway.perfcounters import FlopCounter, FlopReport
from repro.sunway.corerates import KernelCost, CoreRates

__all__ = [
    "SunwayMachine",
    "CoreGroupConfig",
    "InterconnectConfig",
    "SW26010",
    "LDM",
    "LDMAllocationError",
    "DMAEngine",
    "DMATransfer",
    "AthreadRuntime",
    "CompletionFlag",
    "OffloadHandle",
    "FlopCounter",
    "FlopReport",
    "KernelCost",
    "CoreRates",
]
