"""Analyzer tests: the time-accounting tables must reproduce the tracer."""

import pytest

from repro.telemetry import analyze
from repro.telemetry.analyzer import categorize, render_top_tasks

from tests.telemetry.conftest import CGS


def test_categorize_span_names():
    assert categorize("send") == "pack+send"
    assert categorize("unpack") == "unpack"
    assert categorize("copy") == "copy"
    assert categorize("post-recvs") == "mpi"
    assert categorize("mpi-test") == "mpi"
    assert categorize("task-select") == "select"
    assert categorize("mpe-part:timeAdvance@p3") == "mpe-part"
    assert categorize("mpe-task:uNorm@p1") == "mpe-kernel"
    assert categorize("reduce-local:uNorm") == "reduction"
    assert categorize("reduce-finish:uNorm") == "reduction"
    assert categorize("recover-fallback:timeAdvance@p0") == "recovery"
    assert categorize("something-new") == "other"


def test_lane_totals_match_tracer_busy_time(bundle):
    """The acceptance anchor: category sums == Tracer.busy_time per lane.

    MPE spans are sequential in a fault-free run (one DES process per
    rank charges them back to back), so the sum of span durations equals
    the lane's union busy time to float tolerance.
    """
    analysis = analyze(
        bundle.result, telemetry=bundle.telemetry, ledger=bundle.ledger
    )
    trace = bundle.result.trace
    assert len(analysis.breakdowns) == CGS
    for b in analysis.breakdowns:
        assert b.mpe_total == pytest.approx(trace.busy_time(b.rank, "mpe"), rel=1e-9)
        assert b.cpe_kernel == pytest.approx(trace.busy_time(b.rank, "cpe"), rel=1e-9)
        assert b.overlap == pytest.approx(trace.overlap_time(b.rank), rel=1e-9)


def test_wall_accounting_closes(bundle):
    """Busy + wait + spin must account for (almost) the whole wall clock."""
    analysis = analyze(bundle.result, ledger=bundle.ledger)
    for b in analysis.breakdowns:
        assert b.wall > 0
        # CPE time overlaps MPE categories, so only the MPE side plus
        # waiting partitions the rank's wall; the residue is small slack
        # (event-loop reordering between charge and wait attribution).
        assert abs(b.unaccounted) < 0.05 * b.wall


def test_render_tables(bundle):
    analysis = analyze(bundle.result, telemetry=bundle.telemetry, ledger=bundle.ledger)
    acct = analysis.render_time_accounting()
    assert "Per-rank time accounting" in acct
    assert "CPE kernel" in acct and "Ovl frac" in acct
    ledger_tbl = analysis.render_ledger()
    assert "Run ledger" in ledger_tbl
    crit = analysis.render_critical_path()
    assert "critical path" in crit.lower()
    assert "Slack" in crit


def test_render_critical_path_without_ledger(bundle):
    analysis = analyze(bundle.result)
    assert "unavailable" in analysis.render_critical_path()
    assert analysis.render_ledger() == "(no ledger)"


def test_render_top_tasks(bundle):
    out = render_top_tasks(bundle.result.trace, n=5)
    assert "Top 5 activities" in out
    assert "timeAdvance" in out
    out0 = render_top_tasks(bundle.result.trace, n=3, rank=0)
    assert "rank 0" in out0
