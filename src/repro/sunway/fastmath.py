"""Software exponentials: IEEE-conforming vs fast (non-conforming).

SW26010 has no hardware exponential instruction; ``exp`` is emulated in
software by one of two libraries (paper Sec. VI-C): an IEEE-754-conforming
one that "proved to be slow" and a fast one that "introduces some
inaccuracy [but] does not greatly impact this benchmark".  The reproduction
implements both as real functions with genuinely different accuracy, so the
accuracy claim is testable, and assigns each a flop cost used by the
performance counters and the cost model.

``fast_exp`` uses range reduction (``exp(x) = 2**k * exp(r)`` with
``|r| <= ln(2)/2``) and a degree-4 Taylor polynomial, giving a relative
error below 1e-4 (measured ~6e-5) — visibly worse than IEEE ``exp``
(<= 0.5 ulp) but far below the discretization error of the model problem.
"""

from __future__ import annotations

import numpy as np

#: Flop cost charged per exponential by the performance counters.  The
#: paper measures ~215 flops/cell from 6 exponentials => ~36 flops each
#: for the fast library it benchmarked with.
FAST_EXP_FLOPS = 36
#: The IEEE-conforming library is substantially more expensive (full
#: range reduction, higher-degree polynomial, exactness fix-ups).
IEEE_EXP_FLOPS = 88

#: Relative slowdown of the IEEE library vs the fast one, used by the cost
#: model when a variant opts into conforming math.
IEEE_EXP_SLOWDOWN = IEEE_EXP_FLOPS / FAST_EXP_FLOPS

_LN2 = float(np.log(2.0))
_INV_LN2 = 1.0 / _LN2
# exp() overflow/underflow bounds for float64, used for clamping k.
_MAX_EXP_ARG = 709.0


def ieee_exp(x):
    """IEEE-754-conforming exponential (the slow Sunway library).

    Delegates to the platform libm via NumPy, which is correctly rounded
    to well under 1 ulp — the behavioural stand-in for the conforming
    library.
    """
    return np.exp(x)


def fast_exp(x):
    """Fast, non-IEEE-conforming exponential (the fast Sunway library).

    Accepts scalars or arrays; returns the same shape.  Relative error is
    bounded by 1e-4 on the normal range (tested; ~6e-5 worst case),
    matching the paper's "some inaccuracy" trade-off.  Out-of-range
    arguments saturate to 0 / inf like libm does.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    clipped = np.clip(x_arr, -_MAX_EXP_ARG, _MAX_EXP_ARG)
    k = np.rint(clipped * _INV_LN2)
    r = clipped - k * _LN2
    # Degree-4 Taylor on |r| <= ln(2)/2: max relative error ~ r^5/5! ~ 4e-5.
    p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0))))
    out = np.ldexp(p, k.astype(np.int64))
    # Saturate exactly where libm would.
    out = np.where(x_arr > _MAX_EXP_ARG, np.inf, out)
    out = np.where(x_arr < -_MAX_EXP_ARG, 0.0, out)
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(out)
    return out


def exp_function(fast: bool):
    """Select the exponential implementation for a kernel variant."""
    return fast_exp if fast else ieee_exp


def exp_flops(fast: bool) -> int:
    """Flop cost per exponential for the chosen library."""
    return FAST_EXP_FLOPS if fast else IEEE_EXP_FLOPS
