"""Host-side overhead of the DES scheduler loop, before vs after the
engine refactor.

The layered execution engine (lifecycle events, comm/offload engines,
backend objects) adds indirection to the per-iteration scheduler loop.
This benchmark pins that cost: it runs a fixed model-mode problem
(``16x16x512``, 8 CGs, async) where the DES loop *is* the host cost —
there are no numerics — and compares wall-clock per run against the
committed pre-refactor baseline in
``results/scheduler_overhead_baseline.json``.

The contract: the refactor stays within 5 % of the monolith's loop time.
Wall-clock baselines are only meaningful on the machine that produced
them, so the 5 % assertion is enforced when the stored fingerprint
matches the current interpreter/platform and skipped (with the numbers
still published) otherwise.

Regenerate the baseline (only for an *intended* perf change)::

    PYTHONPATH=src python benchmarks/bench_scheduler_overhead.py --rebaseline
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.harness import calibration
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import render_table, seconds

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "scheduler_overhead_baseline.json"
NSTEPS = 10
REPEATS = 8
TOLERANCE = 0.05


def _fingerprint() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


def _build_controller() -> SimulationController:
    problem = problem_by_name("16x16x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid)
    return SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=8,
        mode="async",
        real=False,
        cost_model=calibration.cost_model(),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    )


def measure(repeats: int = REPEATS) -> dict:
    """Best-of-N wall-clock of the DES loop (model mode: loop cost only)."""
    best = float("inf")
    sim_time = None
    for _ in range(repeats):
        ctl = _build_controller()
        t0 = time.perf_counter()
        res = ctl.run(nsteps=NSTEPS, dt=1e-5)
        best = min(best, time.perf_counter() - t0)
        sim_time = res.total_time
    return {
        "host_seconds": best,
        "nsteps": NSTEPS,
        "simulated_seconds": sim_time,
        "fingerprint": _fingerprint(),
    }


def test_scheduler_loop_overhead_within_baseline(publish, publish_json):
    current = measure()
    rows = [
        ("DES loop host time (best of %d)" % REPEATS, seconds(current["host_seconds"])),
        ("simulated seconds", seconds(current["simulated_seconds"])),
    ]
    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        ratio = current["host_seconds"] / baseline["host_seconds"]
        rows.append(("pre-refactor baseline", seconds(baseline["host_seconds"])))
        rows.append(("ratio vs baseline", f"{ratio:.3f}x"))
    publish(
        "scheduler_overhead",
        render_table("Scheduler loop overhead", ["Metric", "Value"], rows),
    )
    publish_json(
        "scheduler_overhead",
        {
            "current": current,
            "baseline": baseline,
            "ratio": (
                current["host_seconds"] / baseline["host_seconds"] if baseline else None
            ),
            "tolerance": TOLERANCE,
        },
    )
    assert baseline is not None, "no committed baseline; run --rebaseline"
    # identical schedule regardless of host speed: the DES must charge the
    # exact same simulated time the monolith charged
    assert current["simulated_seconds"] == baseline["simulated_seconds"]
    if baseline["fingerprint"] != _fingerprint():
        import pytest

        pytest.skip("baseline from a different machine; wall-clock not comparable")
    assert current["host_seconds"] <= baseline["host_seconds"] * (1 + TOLERANCE), (
        f"scheduler loop {current['host_seconds']:.3f}s exceeds baseline "
        f"{baseline['host_seconds']:.3f}s by more than {TOLERANCE:.0%}"
    )


def _rebaseline() -> None:
    BASELINE_PATH.parent.mkdir(exist_ok=True)
    data = measure()
    BASELINE_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH}: {data['host_seconds']:.3f}s host")


if __name__ == "__main__":
    if "--rebaseline" in sys.argv:
        _rebaseline()
    else:
        print(__doc__)
