"""The Uintah-style asynchronous many-task runtime.

This package rebuilds, in Python and from scratch, the slice of the Uintah
framework the paper's port relies on (paper Sec. II):

* a patch-centric discretization of structured meshes
  (:mod:`~repro.core.grid`, :mod:`~repro.core.patch`);
* grid variables with ghost cells stored per patch
  (:mod:`~repro.core.variables`, :mod:`~repro.core.varlabel`);
* old/new **data warehouses** that carry state between timesteps
  (:mod:`~repro.core.datawarehouse`);
* user-declared coarse **tasks** with ``requires`` / ``computes``
  (:mod:`~repro.core.task`), compiled into a distributed task graph with
  explicit MPI message specifications (:mod:`~repro.core.taskgraph`);
* a **load balancer** assigning patches to ranks
  (:mod:`~repro.core.loadbalancer`);
* LDM-constrained **tiling** of patches for CPE execution
  (:mod:`~repro.core.tiling`), after TiDA;
* pluggable **schedulers** (:mod:`~repro.core.schedulers`): the paper's
  asynchronous Sunway scheduler plus its synchronous and MPE-only modes;
* a timestepping **simulation controller**
  (:mod:`~repro.core.controller`).
"""

from repro.core.grid import Grid
from repro.core.patch import Patch, Region
from repro.core.varlabel import VarLabel
from repro.core.variables import CCVariable
from repro.core.datawarehouse import DataWarehouse
from repro.core.task import Task, TaskKind, DetailedTask
from repro.core.taskgraph import TaskGraph, MessageSpec
from repro.core.loadbalancer import LoadBalancer
from repro.core.tiling import TilePlan, choose_tile_shape

__all__ = [
    "Grid",
    "Patch",
    "Region",
    "VarLabel",
    "CCVariable",
    "DataWarehouse",
    "Task",
    "TaskKind",
    "DetailedTask",
    "TaskGraph",
    "MessageSpec",
    "LoadBalancer",
    "TilePlan",
    "choose_tile_shape",
]
