"""Regression pins for the calibrated headline numbers.

These anchor the reproduction to the paper's quantitative landmarks at
the full 10-step protocol.  If a cost-model or scheduler change moves
any of them outside the stated bands, this file fails before the
benchmark suite does — treat that as a calibration regression, not a
tolerance to widen casually.

Paper anchors:
  * ~974.5 Gflop/s at 128 CGs, largest problem, acc_simd.async (Fig. 9)
  * best FP efficiency ~1.17% of peak (Fig. 10)
  * strong-scaling efficiency 31.7% (small, simd.async) and
    89.9% (large, simd.async) from min CGs to 128 (Table V)
  * best async improvement ~39.3% non-vectorized / ~22.8% vectorized
    (Tables VI/VII)
"""

import pytest

from repro.harness import metrics
from repro.harness.problems import problem_by_name
from repro.harness.runner import run_experiment
from repro.harness.variants import variant_by_name

SMALL = problem_by_name("16x16x512")
LARGE = problem_by_name("128x128x512")
SIMD_ASYNC = variant_by_name("acc_simd.async")


@pytest.fixture(scope="module")
def anchor():
    def go(problem, variant_name, cgs):
        return run_experiment(problem, variant_by_name(variant_name), cgs, nsteps=10)

    return go


def test_anchor_top_gflops(anchor):
    r = anchor(LARGE, "acc_simd.async", 128)
    assert r.gflops == pytest.approx(975, rel=0.25)  # paper 974.5


def test_anchor_best_fp_efficiency(anchor):
    r = anchor(problem_by_name("64x128x512"), "acc_simd.async", 4)
    assert r.fp_efficiency == pytest.approx(0.0117, rel=0.20)  # paper 1.17%


def test_anchor_small_problem_scaling(anchor):
    base = anchor(SMALL, "acc_simd.async", 1)
    top = anchor(SMALL, "acc_simd.async", 128)
    eff = metrics.scaling_efficiency(base, top)
    assert eff == pytest.approx(0.317, abs=0.09)  # paper 31.7%


def test_anchor_large_problem_scaling(anchor):
    base = anchor(LARGE, "acc_simd.async", 8)
    top = anchor(LARGE, "acc_simd.async", 128)
    eff = metrics.scaling_efficiency(base, top)
    assert eff == pytest.approx(0.899, abs=0.13)  # paper 89.9%


def test_anchor_best_async_improvement_novec(anchor):
    best = 0.0
    for cgs in (8, 16):
        s = anchor(SMALL, "acc.sync", cgs)
        a = anchor(SMALL, "acc.async", cgs)
        best = max(best, metrics.async_improvement(s, a))
    assert best == pytest.approx(0.393, abs=0.12)  # paper 39.3%


def test_anchor_best_async_improvement_vec(anchor):
    best = 0.0
    for cgs in (8, 16):
        s = anchor(SMALL, "acc_simd.sync", cgs)
        a = anchor(SMALL, "acc_simd.async", cgs)
        best = max(best, metrics.async_improvement(s, a))
    assert best == pytest.approx(0.228, abs=0.10)  # paper 22.8%


def test_anchor_offload_boost_band(anchor):
    host = anchor(SMALL, "host.sync", 8)
    acc = anchor(SMALL, "acc.async", 8)
    large_host = anchor(LARGE, "host.sync", 8)
    large_acc = anchor(LARGE, "acc.async", 8)
    small_boost = metrics.optimization_boost(host, acc)
    large_boost = metrics.optimization_boost(large_host, large_acc)
    # paper: 2.7 (small) to 6.0 (large)
    assert small_boost == pytest.approx(2.7, abs=1.4)
    assert large_boost == pytest.approx(6.0, abs=1.5)
    assert small_boost < large_boost
