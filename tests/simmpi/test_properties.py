"""Property tests for the simulated MPI fabric."""

from hypothesis import given, settings, strategies as st

from repro.des import Simulator
from repro.simmpi import Comm, Fabric, FabricConfig

from tests.strategies import comm_ops


@settings(deadline=None, max_examples=40)
@given(ops=comm_ops(num_ranks=3, max_tag=2, max_ops=40))
def test_property_matched_pairs_deliver_fifo(ops):
    """Whatever the posting order, matched (src,dst,tag) traffic arrives
    complete and in FIFO order per channel."""
    sim = Simulator()
    fabric = Fabric(sim, 3)
    comms = [Comm(fabric, r) for r in range(3)]
    sent: dict[tuple, list] = {}
    recvs: dict[tuple, list] = {}
    seq = 0
    for op, a, b, tag, nbytes in ops:
        key = (a, b, tag)
        if op == "send":
            comms[a].isend(dest=b, tag=tag, nbytes=nbytes, payload=("m", key, seq))
            sent.setdefault(key, []).append(("m", key, seq))
            seq += 1
        else:
            recvs.setdefault(key, []).append(comms[b].irecv(source=a, tag=tag))
    sim.run()
    for key, reqs in recvs.items():
        expected = sent.get(key, [])
        matched = min(len(reqs), len(expected))
        # the first `matched` receives completed, in order
        for i in range(matched):
            assert reqs[i].complete
            assert reqs[i].value == expected[i]
        for req in reqs[matched:]:
            assert not req.complete


@settings(deadline=None, max_examples=30)
@given(
    send_delay=st.floats(0, 10),
    recv_delay=st.floats(0, 10),
    nbytes=st.integers(0, 10**6),
)
def test_property_completion_time_lower_bound(send_delay, recv_delay, nbytes):
    """A receive never completes before both sides posted plus the wire
    time — the fabric cannot teleport data."""
    cfg = FabricConfig(bandwidth=1e9, latency=1e-6, sw_overhead=5e-6)
    sim = Simulator()
    fabric = Fabric(sim, 2, cfg)
    c0, c1 = Comm(fabric, 0), Comm(fabric, 1)
    done_at = []

    def sender(sim):
        yield sim.timeout(send_delay)
        c0.isend(dest=1, tag=0, nbytes=nbytes)

    def receiver(sim):
        yield sim.timeout(recv_delay)
        req = c1.irecv(source=0, tag=0)
        yield req.event
        done_at.append(sim.now)

    sim.process(sender(sim))
    sim.process(receiver(sim))
    sim.run()
    lower = max(send_delay, recv_delay) + cfg.transfer_time(nbytes)
    assert done_at[0] >= lower - 1e-12


@settings(deadline=None, max_examples=25)
@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=2,
        max_size=8,
    ),
    delays=st.data(),
)
def test_property_allreduce_order_independent(values, delays):
    """The reduced value is independent of rank arrival order (the fabric
    reduces in rank order deterministically)."""
    n = len(values)
    results = []
    for permutation_seed in (0, 1):
        sim = Simulator()
        fabric = Fabric(sim, n)
        comms = [Comm(fabric, r) for r in range(n)]
        reqs = {}

        def poster(sim, rank, delay):
            yield sim.timeout(delay)
            reqs[rank] = comms[rank].iallreduce(values[rank])

        for r in range(n):
            delay = (r if permutation_seed == 0 else n - r) * 0.5
            sim.process(poster(sim, r, delay))
        sim.run()
        results.append(reqs[0].value)
    assert results[0] == results[1]
