"""DMA transfers between main memory and the LDM.

On SW26010 a CPE reaches main memory efficiently only through DMA
(``athread_get`` / ``athread_put``).  The paper's CPE tile scheduler
(Sec. V-D) does *synchronous* get / compute / put per tile and flags the
asynchronous variant as future work; both are modelled here.

Cost model
----------
A transfer of ``n`` bytes costs ``startup + n / bandwidth`` where
``bandwidth`` is the *per-CPE effective* DMA bandwidth when all 64 CPEs
stream concurrently (the memory controller's aggregate bandwidth divided
by the number of concurrently-streaming CPEs, capped by the per-CPE link).
Strided/non-contiguous transfers pay a multiplicative penalty — the reason
the paper suggests "packing the tiles" as future work.
"""

from __future__ import annotations

import dataclasses


class DMAError(RuntimeError):
    """A DMA transfer failed mid-kernel (fault-injection model).

    On real SW26010 hardware a failing ``athread_get``/``athread_put``
    leaves the LDM tile in an undefined state and the kernel cannot
    publish its results.  The simulated fault
    (:class:`~repro.faults.injector.FaultInjector` ``dma_error``) mirrors
    that contract: the offload handle completes *with this error*, its
    data effects are never applied, and the scheduler's resilience policy
    decides between re-offload and MPE fallback.  Without a policy the
    error propagates and aborts the run — a fault-oblivious scheduler
    must not silently continue on corrupt data.
    """

    def __init__(self, kernel: str, frac: float):
        super().__init__(
            f"DMA transfer error in kernel {kernel!r} at {frac:.0%} of its runtime"
        )
        self.kernel = kernel
        self.frac = frac


@dataclasses.dataclass(frozen=True)
class DMATransfer:
    """One DMA operation, for traces and accounting."""

    direction: str  # "get" (mem->LDM) or "put" (LDM->mem)
    nbytes: int
    contiguous_chunks: int = 1

    def __post_init__(self) -> None:
        if self.direction not in ("get", "put"):
            raise ValueError(f"direction must be 'get' or 'put', got {self.direction!r}")
        if self.nbytes < 0:
            raise ValueError(f"negative transfer size {self.nbytes}")
        if self.contiguous_chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.contiguous_chunks}")


@dataclasses.dataclass(frozen=True)
class DMAVolume:
    """Aggregate DMA traffic of one kernel launch, all CPEs, all tiles.

    Derived from the tile plan (not from individual transfers) so it can
    be computed once per ``(task, extent)`` and cached alongside the
    kernel-time cache.  ``descriptors`` counts DMA descriptors issued:
    one per contiguous chunk of every get and put.
    """

    get_bytes: int = 0
    put_bytes: int = 0
    descriptors: int = 0

    @property
    def total_bytes(self) -> int:
        return self.get_bytes + self.put_bytes

    def __add__(self, other: "DMAVolume") -> "DMAVolume":
        return DMAVolume(
            self.get_bytes + other.get_bytes,
            self.put_bytes + other.put_bytes,
            self.descriptors + other.descriptors,
        )


@dataclasses.dataclass(frozen=True)
class DMAEngine:
    """Per-CPE DMA cost model.

    Parameters
    ----------
    bandwidth:
        Effective per-CPE DMA bandwidth in bytes/s with all CPEs
        streaming.  SW26010's aggregate measured DMA bandwidth is about
        28 GB/s per CG; divided over 64 concurrently-active CPEs this is
        ~0.44 GB/s per CPE (the calibrated default lives in
        ``repro.harness.calibration``).
    startup:
        Fixed per-DMA-descriptor latency, seconds.
    chunk_penalty:
        Additional startup charged per extra non-contiguous chunk, as a
        fraction of ``startup``.  A fully-packed transfer has 1 chunk.
    """

    bandwidth: float = 28e9 / 64
    startup: float = 1.2e-6
    chunk_penalty: float = 0.25

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.startup < 0:
            raise ValueError(f"startup must be >= 0, got {self.startup}")

    def transfer_time(self, transfer: DMATransfer) -> float:
        """Seconds to complete ``transfer`` (synchronous)."""
        extra = (transfer.contiguous_chunks - 1) * self.chunk_penalty * self.startup
        return self.startup + extra + transfer.nbytes / self.bandwidth

    def get_time(self, nbytes: int, chunks: int = 1) -> float:
        """Seconds for a mem->LDM read of ``nbytes`` in ``chunks`` pieces."""
        return self.transfer_time(DMATransfer("get", nbytes, chunks))

    def put_time(self, nbytes: int, chunks: int = 1) -> float:
        """Seconds for an LDM->mem write of ``nbytes`` in ``chunks`` pieces."""
        return self.transfer_time(DMATransfer("put", nbytes, chunks))

    def tile_cycle_time(
        self,
        get_bytes: int,
        put_bytes: int,
        compute_time: float,
        get_chunks: int = 1,
        put_chunks: int = 1,
        async_dma: bool = False,
    ) -> float:
        """Seconds for one get/compute/put tile cycle.

        With ``async_dma=False`` (the paper's implementation) the three
        phases are strictly serial.  With ``async_dma=True`` (the paper's
        future-work extension) transfers for tile *i+1* overlap compute of
        tile *i* in a double-buffered pipeline, so the steady-state cycle
        cost is ``max(compute, get + put)`` — the dominated phase hides.
        """
        t_get = self.get_time(get_bytes, get_chunks)
        t_put = self.put_time(put_bytes, put_chunks)
        if async_dma:
            return max(compute_time, t_get + t_put)
        return t_get + compute_time + t_put
