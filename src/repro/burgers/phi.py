"""The 1D Burgers solution phi(x, t) and its stable evaluation.

Paper Sec. III:

.. math::

    \\phi(x,t) = \\frac{0.1 e^a + 0.5 e^b + e^c}{e^a + e^b + e^c}

with ``a = -0.05 (x - 0.5 + 4.95 t) / nu``,
``b = -0.25 (x - 0.5 + 0.75 t) / nu``,
``c = -0.5 (x - 0.375) / nu`` and viscosity ``nu = 0.01``.

The exponents reach magnitudes of thousands for x away from the travelling
fronts, so the textbook form overflows float64.  "Dividing the numerator
and denominator ... by the largest value of e^a, e^b, e^c reduces the
number of exponentials needed by one" — and, crucially, makes every
remaining exponent non-positive, so nothing overflows.  :func:`phi` is
that stable form; :func:`phi_naive` is the textbook form kept for tests.
"""

from __future__ import annotations

import numpy as np

from repro.sunway.fastmath import ieee_exp

#: Default viscosity of the model problem.
NU = 0.01


def _exponents(x, t: float, nu: float):
    x = np.asarray(x, dtype=np.float64)
    a = -0.05 * (x - 0.5 + 4.95 * t) / nu
    b = -0.25 * (x - 0.5 + 0.75 * t) / nu
    c = -0.5 * (x - 0.375) / nu
    return a, b, c


def phi_naive(x, t: float = 0.0, nu: float = NU, exp=ieee_exp):
    """Textbook phi — three exponentials, overflows away from the fronts.

    Only safe close to x ~ 0.4-0.6 at small t; exists so tests can verify
    the stable form agrees wherever this one is finite.
    """
    a, b, c = _exponents(x, t, nu)
    ea, eb, ec = exp(a), exp(b), exp(c)
    return (0.1 * ea + 0.5 * eb + ec) / (ea + eb + ec)


def phi(x, t: float = 0.0, nu: float = NU, exp=ieee_exp):
    """Numerically stable phi — two exponentials per point.

    Subtracts the largest exponent before exponentiating: the largest
    term becomes exactly 1 (no ``exp`` call needed for it on hardware;
    here the counting model charges 2 exponentials per call) and the
    others are ``exp`` of non-positive values.

    ``exp`` selects the exponential library (IEEE or fast), mirroring the
    paper's Sec. VI-C choice.
    """
    a, b, c = _exponents(x, t, nu)
    m = np.maximum(np.maximum(a, b), c)
    ea, eb, ec = exp(a - m), exp(b - m), exp(c - m)
    return (0.1 * ea + 0.5 * eb + ec) / (ea + eb + ec)


def phi_range() -> tuple[float, float]:
    """Bounds of phi: a convex combination of (0.1, 0.5, 1.0)."""
    return 0.1, 1.0
