"""Scheduler- and transport-level resilience under injected faults."""

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.faults import FaultConfig, FaultInjector, ResiliencePolicy
from repro.sunway.dma import DMAError

GRID = Grid(extent=(12, 12, 12), layout=(2, 1, 1))


def run(num_ranks=2, nsteps=4, faults=None, resilience=None, mode="async", **kw):
    problem = BurgersProblem(GRID)
    controller = SimulationController(
        GRID,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=num_ranks,
        mode=mode,
        real=True,
        faults=faults,
        resilience=resilience,
        **kw,
    )
    return controller.run(nsteps=nsteps, dt=problem.stable_dt())


def fields(result):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in result.final_dws
        for v in dw.grid_variables()
    }


RESILIENCE_FIELDS = (
    "kernel_timeouts",
    "kernel_retries",
    "mpe_fallbacks",
    "mpi_retries",
    "stragglers_detected",
    "rank_recoveries",
    "steps_replayed",
)


# ------------------------------------------------------------- fault-free path
def test_attached_but_silent_injector_changes_nothing():
    """Injector with zero probabilities == no injector, bit for bit."""
    plain = run()
    silent = run(faults=FaultInjector(FaultConfig()), resilience=ResiliencePolicy())
    assert plain.total_time == silent.total_time
    a, b = fields(plain), fields(silent)
    assert all(np.array_equal(a[p], b[p]) for p in a)
    for name in RESILIENCE_FIELDS:
        assert getattr(silent.stats, name) == 0, name


def test_fault_free_run_has_zero_resilience_counters():
    result = run()
    for name in RESILIENCE_FIELDS:
        assert getattr(result.stats, name) == 0, name


# ------------------------------------------------------------- kernel faults
def test_dma_error_without_policy_raises():
    inj = FaultInjector(FaultConfig(seed=1, dma_error_prob=1.0))
    with pytest.raises(DMAError):
        run(faults=inj)


def test_dma_errors_recovered_by_reoffload():
    inj = FaultInjector(FaultConfig(seed=1, dma_error_prob=0.3))
    res = run(faults=inj, resilience=ResiliencePolicy())
    ref = run()
    assert res.stats.kernel_retries > 0
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


def test_permanent_dma_errors_fall_back_to_mpe():
    """With every offload failing, the MPE executes every kernel itself."""
    inj = FaultInjector(FaultConfig(seed=1, dma_error_prob=1.0))
    res = run(faults=inj, resilience=ResiliencePolicy(max_offload_retries=1))
    ref = run()
    assert res.stats.mpe_fallbacks > 0
    assert res.stats.kernel_retries > 0
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


def test_stuck_kernels_recovered_by_watchdog():
    inj = FaultInjector(FaultConfig(seed=2, kernel_stuck_prob=0.25))
    res = run(faults=inj, resilience=ResiliencePolicy())
    ref = run()
    assert res.stats.kernel_timeouts > 0
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


def test_sync_mode_recovers_stuck_kernels_too():
    inj = FaultInjector(FaultConfig(seed=2, kernel_stuck_prob=0.25))
    res = run(mode="sync", faults=inj, resilience=ResiliencePolicy())
    ref = run(mode="sync")
    assert res.stats.kernel_timeouts > 0
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


def test_slowdown_detected_as_straggler():
    cfg = FaultConfig(seed=3, kernel_slowdown_prob=0.5, kernel_slowdown_factor=4.0)
    res = run(faults=FaultInjector(cfg), resilience=ResiliencePolicy(
        # timeout above the slowdown factor so slow kernels complete and
        # register as stragglers instead of being aborted
        kernel_timeout_factor=8.0,
        straggler_factor=2.0,
    ))
    assert res.stats.stragglers_detected > 0
    assert res.stats.kernel_timeouts == 0


def test_faulty_run_is_slower_than_fault_free():
    inj = FaultInjector(FaultConfig(seed=4, kernel_stuck_prob=0.2))
    res = run(faults=inj, resilience=ResiliencePolicy())
    assert res.total_time > run().total_time


# ------------------------------------------------------------- network faults
def test_dropped_messages_are_retransmitted():
    inj = FaultInjector(FaultConfig(seed=5, msg_drop_prob=0.3))
    res = run(faults=inj, resilience=ResiliencePolicy())
    ref = run()
    assert res.stats.mpi_retries > 0
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


def test_duplicated_and_delayed_messages_keep_physics():
    inj = FaultInjector(FaultConfig(seed=6, msg_dup_prob=0.2, msg_delay_prob=0.3))
    res = run(faults=inj, resilience=ResiliencePolicy())
    ref = run()
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


def test_brownout_slows_the_run_without_touching_physics():
    ref = run()
    cfg = FaultConfig(
        seed=7, brownout_rank=0, brownout_t0=0.0, brownout_t1=ref.total_time * 10
    )
    res = run(faults=FaultInjector(cfg), resilience=ResiliencePolicy())
    assert res.total_time > ref.total_time
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)


# ------------------------------------------------------------- determinism
def test_faulty_runs_are_reproducible():
    """Same seed, same config: identical timings, physics, fault stream."""

    def go():
        inj = FaultInjector(
            FaultConfig(
                seed=9,
                kernel_stuck_prob=0.1,
                dma_error_prob=0.1,
                msg_drop_prob=0.1,
                msg_delay_prob=0.1,
            )
        )
        return run(faults=inj, resilience=ResiliencePolicy()), inj

    r1, i1 = go()
    r2, i2 = go()
    assert r1.total_time == r2.total_time
    assert i1.injected == i2.injected
    assert r1.stats == r2.stats
    a, b = fields(r1), fields(r2)
    assert all(np.array_equal(a[p], b[p]) for p in a)


# ------------------------------------------------------------- unified host
def test_unified_scheduler_charges_host_fault_overhead():
    from repro.core.schedulers.unified import UnifiedHostScheduler

    import functools

    factory = functools.partial(UnifiedHostScheduler, num_threads=4)
    problem = BurgersProblem(GRID)

    def unified(faults=None, resilience=None):
        return SimulationController(
            GRID,
            problem.tasks(),
            problem.init_tasks(),
            num_ranks=2,
            real=True,
            scheduler_factory=factory,
            faults=faults,
            resilience=resilience,
        ).run(nsteps=3, dt=problem.stable_dt())

    ref = unified()
    inj = FaultInjector(FaultConfig(seed=10, kernel_stuck_prob=0.3))
    res = unified(faults=inj, resilience=ResiliencePolicy())
    assert res.stats.kernel_timeouts > 0
    assert res.total_time > ref.total_time
    a, b = fields(res), fields(ref)
    assert all(np.array_equal(a[p], b[p]) for p in a)
