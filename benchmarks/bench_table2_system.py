"""Table II: Sunway TaihuLight system parameters (architectural facts)."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import table2
from repro.sunway.config import SW26010, SunwayMachine


@pytest.mark.benchmark(group="table2")
def test_table2_system_parameters(benchmark, publish):
    text = run_once(benchmark, table2)
    publish("table2", text)

    machine = SunwayMachine(num_cgs=128)
    assert machine.total_cores == 8320  # the paper's 128-CG experimental queue
    assert SW26010.peak_flops == pytest.approx(765.6e9)
    assert "3.06 Tflop/s" in text
