"""Variable labels: typed names identifying simulation state.

Uintah tasks communicate exclusively through labelled variables in the
data warehouses; a :class:`VarLabel` is the (name, type) key users create
once and pass to ``requires`` / ``computes`` declarations.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class VarLabel:
    """A named variable kind.

    ``vartype`` is ``"cell"`` for cell-centred grid variables (the only
    grid variable type the model problem needs) or ``"reduction"`` for
    scalars combined across patches and ranks (e.g. a stability norm).
    """

    name: str
    vartype: str = "cell"
    #: Bytes per value; grid variables are double precision.
    itemsize: int = 8

    _VALID = ("cell", "reduction")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VarLabel needs a non-empty name")
        if self.vartype not in self._VALID:
            raise ValueError(f"vartype must be one of {self._VALID}, got {self.vartype!r}")

    @property
    def is_reduction(self) -> bool:
        """Whether this is a reduction (scalar) variable."""
        return self.vartype == "reduction"

    def __str__(self) -> str:
        return self.name
