"""Figures 6-8: the optimization ladder (host -> offload -> SIMD).

Paper: offload boosts 2.7-6.0x, vectorization another 1.3-2.2x, total
3.6-13.3x; larger patches gain more from both steps.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.figures import fig678, fig678_data


@pytest.mark.benchmark(group="fig678")
def test_fig678_optimization_boost(benchmark, publish):
    data = run_once(benchmark, fig678_data)
    publish("fig678", fig678())

    def flat(problem_key, variant):
        return list(data[problem_key]["boost"][variant].values())

    offload = (
        flat("fig6_small", "acc.async")
        + flat("fig7_medium", "acc.async")
        + flat("fig8_large", "acc.async")
    )
    total = (
        flat("fig6_small", "acc_simd.async")
        + flat("fig7_medium", "acc_simd.async")
        + flat("fig8_large", "acc_simd.async")
    )

    # paper: offload 2.7-6.0x (we allow a modestly wider band)
    assert 2.0 <= min(offload) and max(offload) <= 7.5
    # paper: total 3.6-13.3x
    assert 2.5 <= min(total) and max(total) <= 15.0

    # SIMD's extra boost within the paper's 1.3-2.2x band everywhere
    for key in ("fig6_small", "fig7_medium", "fig8_large"):
        acc = data[key]["boost"]["acc.async"]
        simd = data[key]["boost"]["acc_simd.async"]
        for cgs in acc:
            extra = simd[cgs] / acc[cgs]
            assert 1.15 <= extra <= 2.4, (key, cgs, extra)

    # larger patches gain more (compare at the shared 8-CG point)
    assert (
        data["fig6_small"]["boost"]["acc.async"][8]
        < data["fig8_large"]["boost"]["acc.async"][8]
    )
    assert (
        data["fig6_small"]["boost"]["acc_simd.async"][8]
        < data["fig8_large"]["boost"]["acc_simd.async"][8]
    )
