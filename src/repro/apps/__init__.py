"""Shipped application components beyond the paper's model problem.

Uintah ships simulation components (ICE, MPM, Arches, ...) next to its
infrastructure; this package plays that role for the reproduction:

* :mod:`repro.apps.heat` — 3-D heat equation with an exact manufactured
  solution (homogeneous Dirichlet box), the simplest non-trivial second
  component, used to demonstrate and test that the runtime is
  application-agnostic.

The Burgers model problem of the paper itself lives in
:mod:`repro.burgers`.
"""

from repro.apps.heat import HeatProblem

__all__ = ["HeatProblem"]
