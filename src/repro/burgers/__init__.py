"""The 3D model Burgers problem (paper Sec. III and VI).

A linear advection-diffusion equation whose coefficients are built from a
1D Burgers solution ``phi(x, t)``, giving the manufactured exact solution
``u(x,y,z,t) = phi(x,t) phi(y,t) phi(z,t)``:

.. math::

    u_t = -\\phi(x,t) u_x - \\phi(y,t) u_y - \\phi(z,t) u_z + \\nu \\Delta u

Discretized with backward differences for advection, second-order central
differences for diffusion, forward Euler in time, on cell centres, with
one ghost layer (Algorithm 1 of the paper).

Modules:

* :mod:`~repro.burgers.phi` — phi and its numerically stable evaluation
  (the divide-by-largest-exponential trick of Sec. III);
* :mod:`~repro.burgers.exact` — the 3-D exact solution, initial and
  boundary conditions, error norms;
* :mod:`~repro.burgers.kernel` — the kernel: a literal per-cell
  transliteration of Algorithm 1 and the production NumPy version;
* :mod:`~repro.burgers.kernel_simd` — the tile-based vectorized kernel
  written against the SIMD intrinsics emulation (Algorithm 2);
* :mod:`~repro.burgers.flops` — the analytic flop model behind Table I;
* :mod:`~repro.burgers.component` — the Uintah-style simulation
  component wiring tasks, labels and the controller together.
"""

from repro.burgers.phi import phi, phi_naive
from repro.burgers.exact import exact_solution, exact_on_region, solution_errors
from repro.burgers.component import BurgersProblem
from repro.burgers.flops import BURGERS_KERNEL_COST, flops_per_interior_cell

__all__ = [
    "phi",
    "phi_naive",
    "exact_solution",
    "exact_on_region",
    "solution_errors",
    "BurgersProblem",
    "BURGERS_KERNEL_COST",
    "flops_per_interior_cell",
]
