"""The Sunway-specific task scheduler (paper Sec. V).

One rank's scheduler drives one timestep of the compiled task graph as a
DES process.  It implements the MPE task scheduler of Sec. V-C:

1. post non-blocking receives for every remote input (step 3a);
2. pack and send old-DW ghost slabs owned locally (data "depending on
   remote data" on the consumer side);
3. loop: when the CPE completion flag is set, post the finished task's
   sends, select the next ready offloadable task, process its MPE part,
   clear the flag and offload (steps 3b i-iv); meanwhile test MPI and
   execute other MPE work — ghost copies, unpacks, reduction tasks
   (steps 3c, 3d).

Modes (Sec. V-C last paragraph):

* ``async``  — offload returns immediately; MPE work overlaps the kernel.
* ``sync``   — after offloading, the MPE spins on the flag; nothing
  overlaps.
* ``mpe_only`` — kernels execute on the MPE itself.

Memory-interference model
-------------------------
MPE and CPEs share one memory controller.  When the asynchronous
scheduler packs/copies ghost slabs *while* a kernel runs, that traffic
competes with the kernel's DMA.  The scheduler accumulates the MPE busy
time actually overlapped with each kernel and, on retiring the kernel,
charges an interference debt of ``interference * overlapped-MPE-busy``
as extra kernel time.  The vectorized kernel, being closer to
memory-bound, carries a much larger factor — this reproduces the paper's
observation that "smaller improvements are seen with the vectorized
kernel than the non-vectorized kernel" (Sec. VII-C).  The synchronous
mode's spinning MPE issues no bulk traffic, so its kernels run clean and
its debt is structurally zero.

Resilience
----------
With a :class:`~repro.faults.policies.ResiliencePolicy` attached the
scheduler stops assuming a fault-free machine:

* a completion-timeout **watchdog** aborts offload slots whose flag was
  never bumped (hung CPE), re-offloads the kernel up to
  ``max_offload_retries`` times and then executes it on the **MPE as a
  fallback**;
* kernels that complete *with an error* (simulated DMA fault) follow the
  same re-offload/fallback path — their data effects were never
  published, so re-execution is safe;
* completed kernels slower than ``straggler_factor`` times their
  cost-model estimate are counted as **stragglers** (and traced);
* at each timestep boundary the attached
  :class:`~repro.faults.injector.FaultInjector` may declare this rank
  **failed**, aborting the run for checkpoint recovery
  (:class:`~repro.faults.recovery.ResilientRunner`).

All recovery work is traced under ``recover-*`` span names, and the
counters land in :class:`~repro.core.schedulers.base.SchedulerStats` —
structurally zero in a fault-free run.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.core.datawarehouse import DataWarehouse
from repro.core.schedulers.base import DeadlockError, ReadinessTracker, SchedulerStats
from repro.core.task import DetailedTask, Task, TaskContext, TaskKind
from repro.core.taskgraph import CopySpec, MessageSpec, TaskGraph
from repro.core.trace import Tracer
from repro.des import Simulator
from repro.des.event import Event
from repro.simmpi.comm import Comm
from repro.sunway.athread import AthreadRuntime, CompletionFlag

MODES = ("async", "sync", "mpe_only")


@dataclasses.dataclass
class _Flight:
    """One offloaded kernel the scheduler is tracking."""

    handle: object  # OffloadHandle
    dt: DetailedTask
    #: Fault-free duration estimate (launch + kernel), for straggler and
    #: timeout thresholds.
    expected: float
    #: Watchdog deadline (inf when no policy / no hang risk).
    deadline: float
    t_launch: float


class SunwayScheduler:
    """Executes one rank's share of a task graph, timestep by timestep."""

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        graph: TaskGraph,
        comm: Comm,
        athread: AthreadRuntime,
        cost_model,
        mode: str = "async",
        real: bool = True,
        trace: Tracer | None = None,
        interference_scalar: float = 0.04,
        interference_simd: float = 0.50,
        scrub: bool = True,
        select_policy: str = "fifo",
        noise=None,
        faults=None,
        resilience=None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.sim = sim
        self.rank = rank
        self.graph = graph
        self.comm = comm
        self.athread = athread
        self.costs = cost_model
        self.mode = mode
        self.real = real
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self.stats = SchedulerStats()
        self.interference = (
            interference_simd if getattr(cost_model, "simd", False) else interference_scalar
        )
        self._local_patches = [
            p for p in graph.grid.patches() if graph.assignment[p.patch_id] == rank
        ]
        #: True while a kernel is offloaded; _mpe() accumulates the MPE
        #: busy time overlapping it (the interference-debt input).
        self._kernel_inflight = False
        self._overlap_busy = 0.0
        #: Cross-step sends still in flight from previous timesteps.
        self._carryover_sends: list = []
        #: Fault injector and resilience policy (both optional; the
        #: fault-free fast path must stay byte-identical to the seed).
        self.faults = faults
        self.policy = resilience
        #: The watchdog only arms when a kernel can actually hang —
        #: timeout events per wait iteration are not free.
        self._watchdog = (
            resilience is not None and faults is not None and faults.can_hang
        )
        #: Scrub old-DW variables once their last consumer has read them.
        self.scrub = scrub
        #: Machine-noise stream (paper Sec. VII-A instabilities); quiet
        #: by default.
        from repro.core.noise import NO_NOISE

        self._noise = (noise if noise is not None else NO_NOISE).for_rank(rank)
        #: Ready-queue ordering for step 3(b)ii "select a ready offloadable
        #: task".  Uintah sorts its queue; supported policies:
        #: ``fifo`` (the paper's implicit order), ``max_dependents``
        #: (unlock the most local downstream work first), ``most_messages``
        #: (feed remote neighbours first — drives the cross-rank pipeline).
        if select_policy not in ("fifo", "max_dependents", "most_messages"):
            raise ValueError(f"unknown select_policy {select_policy!r}")
        self.select_policy = select_policy
        if select_policy == "fifo":
            self._select_key = None
        elif select_policy == "max_dependents":
            scores = {
                dt.dt_id: len(graph.dependents_of(dt))
                for dt in graph.local_tasks(rank)
            }
            self._select_key = lambda dt: scores.get(dt.dt_id, 0)
        else:  # most_messages
            scores = {
                dt.dt_id: sum(m.nbytes for m in graph.sends_after(dt))
                for dt in graph.local_tasks(rank)
            }
            self._select_key = lambda dt: scores.get(dt.dt_id, 0)

    # ------------------------------------------------------------------ helpers
    def _mpe(self, name: str, cost: float):
        """Charge MPE time and trace it.

        While a kernel is in flight (async mode), MPE bulk work competes
        with CPE DMA for the shared memory controller: the busy time is
        accumulated and later charged back as kernel interference debt.
        """
        cost = self._noise.mpe(cost)
        t0 = self.sim.now
        yield self.sim.timeout(cost)
        if self._kernel_inflight:
            self._overlap_busy += cost
        self.trace.record(self.rank, "mpe", name, t0, self.sim.now)

    def _ctx(self, patch, old_dw, new_dw, time, dt, step) -> TaskContext:
        return TaskContext(
            grid=self.graph.grid,
            patch=patch,
            old_dw=old_dw,
            new_dw=new_dw,
            time=time,
            dt=dt,
            step=step,
            params=getattr(self, "params", {}),
        )

    # ------------------------------------------------------------------ timestep
    def execute_timestep(
        self,
        step: int,
        time: float,
        dt_value: float,
        old_dw: DataWarehouse | None,
        new_dw: DataWarehouse,
        bootstrap: bool = False,
    ):
        """DES process: run every local detailed task of one timestep.

        ``bootstrap`` marks the first timestep after initialization: the
        old-DW ghost slabs were produced by the init graph, so their
        cross-step messages are sent at step start instead of having been
        posted by the previous timestep.
        """
        sim, graph, rank = self.sim, self.graph, self.rank
        if self.faults is not None:
            # Whole-rank failure strikes at timestep boundaries; the
            # raised RankFailure propagates through the driver process
            # and aborts Simulator.run for checkpoint recovery.
            self.faults.on_step_begin(rank, step)
        local = graph.local_tasks(rank)
        tracker = ReadinessTracker(local, graph)
        remaining = {d.dt_id for d in local}
        tag_base = step * graph.num_tags
        next_tag_base = (step + 1) * graph.num_tags

        def dw_for(which: str) -> DataWarehouse:
            if which == "old":
                if old_dw is None:
                    raise RuntimeError("graph requires old-DW data but there is no old DW")
                return old_dw
            return new_dw

        # ---- MPE work queue: (kind, payload, cost) --------------------------
        work: collections.deque = collections.deque()
        pending_unpacks: dict[tuple[str, str, int], list] = {}

        def queue_copy(spec: CopySpec) -> None:
            work.append(("copy", spec, self.costs.pack_time(spec.ncells, remote=False)))

        def queue_send(spec: MessageSpec, from_bootstrap: bool = False) -> None:
            # cross-step slabs produced now are consumed next step; at
            # bootstrap they feed the current step from the init data
            cost = self.costs.pack_time(spec.region.num_cells, remote=True)
            cost += self.costs.sched.send_post
            if spec.cross_step and not from_bootstrap:
                work.append(("send", (spec, next_tag_base, "new"), cost))
            else:
                src_dw = "old" if spec.cross_step else spec.dw
                work.append(("send", (spec, tag_base, src_dw), cost))

        def queue_unpack(spec: MessageSpec, payload) -> None:
            cost = self.costs.pack_time(spec.region.num_cells, remote=True)
            work.append(("unpack", (spec, payload), cost))

        # ---- receive posting (step 3a) -------------------------------------
        recv_watch: list[tuple[MessageSpec, object]] = []
        my_recvs = [m for d in local for m in graph.recvs_for(d)]
        if my_recvs:
            yield from self._mpe(
                "post-recvs", self.costs.sched.recv_post * len(my_recvs)
            )
            for spec in my_recvs:
                req = self.comm.irecv(source=spec.from_rank, tag=tag_base + spec.tag)
                recv_watch.append((spec, req))

        # ---- scrubbing: old-DW variables die after their last consumer ----
        scrub_counts: dict[tuple[str, int], int] = (
            dict(graph.old_dw_consumers(rank)) if self.scrub else {}
        )

        def count_old_reader(label_name: str, pid: int) -> None:
            key = (label_name, pid)
            scrub_counts[key] = scrub_counts.get(key, 0) + 1

        def consume_old(label_name: str, pid: int) -> None:
            if not self.scrub:
                return
            key = (label_name, pid)
            left = scrub_counts.get(key)
            if left is None:
                return
            if left <= 1:
                del scrub_counts[key]
                if self.real and old_dw is not None:
                    old_dw.scrub_named(label_name, pid)
                self.stats.scrubbed += 1
            else:
                scrub_counts[key] = left - 1

        # ---- startup sends and copies (old-DW ghost data) --------------------
        for spec in graph.startup_sends(rank):
            queue_send(spec)
            if spec.dw == "old" and self.scrub:
                count_old_reader(spec.label.name, spec.from_patch.patch_id)
        if bootstrap:
            for spec in graph.bootstrap_sends(rank):
                queue_send(spec, from_bootstrap=True)
                if self.scrub:
                    count_old_reader(spec.label.name, spec.from_patch.patch_id)
        for spec in graph.startup_copies(rank):
            queue_copy(spec)

        # prune cross-step sends that completed during earlier steps
        self._carryover_sends = [r for r in self._carryover_sends if not r.complete]

        # ---- runtime state ----------------------------------------------------
        # One offload slot per CPE group; the paper's configuration has a
        # single group (whole-cluster offload).  The CPE-grouping
        # extension (Sec. IX future work) runs several patches at once.
        num_groups = self.athread.num_groups if self.mode == "async" else 1
        inflight: dict[int, _Flight] = {}
        prepared: set[int] = set()  # dt_ids whose MPE part already ran
        pending_reductions: list[tuple[object, DetailedTask, float]] = []
        send_reqs: list = []
        flag = CompletionFlag(sim)
        #: Failed offload attempts per task (resilience bookkeeping).
        offload_failures: dict[int, int] = {}
        #: Tasks whose useful flops were already counted (retries and
        #: fallbacks must not double-count).
        flops_counted: set[int] = set()

        # ---- work item execution ------------------------------------------------
        def apply_copy(spec: CopySpec) -> None:
            self.stats.local_copies += 1
            if self.real:
                dw = dw_for(spec.dw)
                data = dw.get(spec.label, spec.from_patch).get_region(spec.region)
                if dw.exists(spec.label, spec.to_patch):
                    dw.get(spec.label, spec.to_patch).set_region(spec.region, data)
                else:
                    # the destination patch's own producer has not run yet:
                    # stash the slab; flush_stash applies it on completion
                    key = (spec.dw, spec.label.name, spec.to_patch.patch_id)
                    pending_unpacks.setdefault(key, []).append((spec.region, data))
            if spec.dw == "old":
                consume_old(spec.label.name, spec.from_patch.patch_id)

        def apply_send(spec: MessageSpec, tagb: int, src_dw: str) -> None:
            payload = None
            if self.real:
                dw = dw_for(src_dw)
                payload = dw.get(spec.label, spec.from_patch).get_region(spec.region)
            req = self.comm.isend(
                dest=spec.to_rank,
                tag=tagb + spec.tag,
                nbytes=spec.nbytes,
                payload=payload,
            )
            if tagb == next_tag_base:
                # consumed by the next timestep: completion is tracked
                # across the step boundary, never blocking this step
                self._carryover_sends.append(req)
            else:
                send_reqs.append(req)
            self.stats.messages_sent += 1
            self.stats.bytes_sent += spec.nbytes
            if src_dw == "old":
                consume_old(spec.label.name, spec.from_patch.patch_id)

        def apply_unpack(spec: MessageSpec, payload) -> None:
            self.stats.messages_received += 1
            if self.real:
                dw = dw_for(spec.dw)
                if dw.exists(spec.label, spec.to_patch):
                    dw.get(spec.label, spec.to_patch).set_region(spec.region, payload)
                else:
                    # producer for this patch has not run yet: stash the slab
                    key = (spec.dw, spec.label.name, spec.to_patch.patch_id)
                    pending_unpacks.setdefault(key, []).append((spec.region, payload))
            tracker.release(spec.consumer.dt_id)

        def flush_stash(dt: DetailedTask) -> None:
            if not self.real or dt.patch is None:
                return
            for label in dt.task.computes:
                key = ("new", label.name, dt.patch.patch_id)
                for region, payload in pending_unpacks.pop(key, ()):
                    new_dw.get(label, dt.patch).set_region(region, payload)

        def finish_task(dt: DetailedTask) -> None:
            self.stats.tasks_run += 1
            remaining.discard(dt.dt_id)
            flush_stash(dt)
            for spec in graph.sends_after(dt):
                queue_send(spec)
            for spec in graph.copies_after(dt):
                queue_copy(spec)
            for dep in graph.dependents_of(dt):
                tracker.release(dep.dt_id)
            if dt.patch is not None:
                for dep in dt.task.requires:
                    if dep.dw == "old" and not dep.label.is_reduction:
                        consume_old(dep.label.name, dt.patch.patch_id)

        def run_mpe_part(dt: DetailedTask) -> _t.Generator:
            cost = self.costs.mpe_part_time(dt.task, dt.patch, graph.grid)
            if cost > 0:
                if self.real and dt.task.mpe_action is not None:
                    dt.task.mpe_action(
                        self._ctx(dt.patch, old_dw, new_dw, time, dt_value, step)
                    )
                yield from self._mpe(f"mpe-part:{dt.name}", cost)
            prepared.add(dt.dt_id)

        def kernel_action(dt: DetailedTask) -> _t.Callable[[], None] | None:
            if not self.real or dt.task.action is None:
                return None
            ctx = self._ctx(dt.patch, old_dw, new_dw, time, dt_value, step)
            return lambda: dt.task.action(ctx)

        def count_flops(dt: DetailedTask) -> None:
            # useful work is counted once per task, however many times a
            # fault forces it to be re-executed
            if dt.dt_id not in flops_counted:
                flops_counted.add(dt.dt_id)
                self.stats.kernel_flops += self.costs.kernel_flops(dt.task, dt.patch)

        def mpe_fallback(dt: DetailedTask) -> _t.Generator:
            # last-resort execution on the management core: slow, but
            # immune to CPE/DMA faults
            action = kernel_action(dt)
            if action is not None:
                action()
            yield from self._mpe(
                f"recover-fallback:{dt.name}", self.costs.mpe_kernel_time(dt.task, dt.patch)
            )
            self.stats.mpe_fallbacks += 1
            self.stats.kernels_on_mpe += 1
            count_flops(dt)
            finish_task(dt)

        def requeue_or_fallback(dt: DetailedTask) -> _t.Generator:
            failures = offload_failures.get(dt.dt_id, 0) + 1
            offload_failures[dt.dt_id] = failures
            if self.policy is not None and failures <= self.policy.max_offload_retries:
                self.stats.kernel_retries += 1
                tracker.ready.insert(0, dt)  # retry ahead of fresh work
            else:
                yield from mpe_fallback(dt)

        # ---------------------------------------------------------------- loop
        def is_offloadable(d: DetailedTask) -> bool:
            return d.task.kind is TaskKind.CPE_KERNEL

        def is_mpe_kind(d: DetailedTask) -> bool:
            return d.task.kind is TaskKind.MPE

        def is_reduction(d: DetailedTask) -> bool:
            return d.task.kind is TaskKind.REDUCTION

        while remaining or work:
            progressed = False

            # (3c) test MPI: harvest completed receives
            still = []
            harvested = []
            for spec, req in recv_watch:
                if req.complete:
                    harvested.append((spec, req.value))
                else:
                    still.append((spec, req))
            if harvested:
                yield from self._mpe("mpi-test", self.costs.sched.mpi_test)
                for spec, payload in harvested:
                    queue_unpack(spec, payload)
                recv_watch = still
                progressed = True

            # completed allreduces -> finalize reduction tasks
            done_reds = [t for t in pending_reductions if t[0].complete]
            if done_reds:
                for req, dt, _t0 in done_reds:
                    pending_reductions.remove((req, dt, _t0))
                    label = dt.task.computes[0]
                    new_dw.put_reduction(label, req.value)
                    yield from self._mpe(f"reduce-finish:{dt.name}", self.costs.sched.mpi_test)
                    finish_task(dt)
                    self.stats.reductions += 1
                progressed = True

            # (3b) completion flag set: retire finished offloaded tasks
            done_groups = [g for g, fl in inflight.items() if fl.handle.done]
            for g in done_groups:
                fl = inflight.pop(g)
                done_dt = fl.dt
                if not inflight:
                    self._kernel_inflight = False
                if fl.handle.error is not None:
                    # The kernel died mid-flight (simulated DMA fault): its
                    # data effects were never published, so re-execution is
                    # safe.  Fault-oblivious runs propagate the error.
                    self._overlap_busy = 0.0
                    if self.policy is None:
                        raise fl.handle.error
                    yield from requeue_or_fallback(done_dt)
                    progressed = True
                    continue
                # With multiple CPE groups the accumulated overlapped MPE
                # traffic is attributed to whichever kernel retires first
                # (a pooled approximation; exact with one group).
                debt = self.interference * self._overlap_busy
                self._overlap_busy = 0.0
                if debt > 0:
                    # memory interference from overlapped MPE traffic
                    # stretched the kernel (see module docstring)
                    t0 = sim.now
                    yield sim.timeout(debt)
                    self.trace.record(
                        rank, "cpe", f"interference:{done_dt.name}", t0, sim.now
                    )
                if (
                    self.policy is not None
                    and fl.handle.duration > self.policy.straggler_factor * fl.expected
                ):
                    self.stats.stragglers_detected += 1
                    self.trace.record(
                        rank, "cpe", f"straggler:{done_dt.name}", fl.t_launch, sim.now
                    )
                finish_task(done_dt)
                progressed = True

            # watchdog: abort offload slots whose completion flag never came
            # (hung CPE group); armed only when kernels can actually hang
            if self._watchdog and inflight:
                overdue = [
                    g
                    for g, fl in inflight.items()
                    if not fl.handle.done and sim.now >= fl.deadline
                ]
                for g in overdue:
                    fl = inflight.pop(g)
                    self.athread.abort(g)
                    if not inflight:
                        self._kernel_inflight = False
                    self._overlap_busy = 0.0
                    self.stats.kernel_timeouts += 1
                    self.trace.record(
                        rank, "mpe", f"recover-timeout:{fl.dt.name}", fl.t_launch, sim.now
                    )
                    yield from requeue_or_fallback(fl.dt)
                    progressed = True

            # offload ready kernels onto free CPE groups
            if self.mode != "mpe_only":
                for g in range(num_groups):
                    if g in inflight:
                        continue
                    nxt = tracker.pop_ready(is_offloadable, key=self._select_key)
                    if nxt is None:
                        break
                    yield from self._mpe("task-select", self.costs.sched.task_select)
                    if nxt.dt_id not in prepared:
                        yield from run_mpe_part(nxt)
                    duration = self._noise.kernel(
                        self.costs.cpe_kernel_time(nxt.task, nxt.patch)
                    )
                    flag.clear()
                    t_launch = sim.now
                    expected = self.athread.launch_latency + duration
                    handle = self.athread.spawn(
                        duration=duration,
                        payload=nxt,
                        on_complete=kernel_action(nxt),
                        name=nxt.name,
                        flag=flag,
                        group=g,
                    )
                    deadline = (
                        t_launch + self.policy.kernel_timeout(expected)
                        if self._watchdog
                        else float("inf")
                    )
                    inflight[g] = _Flight(handle, nxt, expected, deadline, t_launch)
                    self._kernel_inflight = True
                    self.stats.kernels_offloaded += 1
                    count_flops(nxt)
                    self.trace.record(
                        rank, "cpe", nxt.name, t_launch, t_launch + handle.duration
                    )
                    progressed = True
                    if self.mode == "sync":
                        # spin on the completion flag: no overlap (Sec. V-C)
                        t0 = sim.now
                        fl = inflight.pop(g)
                        while True:
                            if self._watchdog:
                                yield sim.any_of(
                                    [
                                        fl.handle.event,
                                        sim.timeout(max(0.0, fl.deadline - sim.now)),
                                    ]
                                )
                            else:
                                yield fl.handle.event
                            if fl.handle.done and fl.handle.error is None:
                                break  # completed cleanly
                            if not fl.handle.done:
                                # flag never came: watchdog fired
                                self.athread.abort(g)
                                self.stats.kernel_timeouts += 1
                            elif self.policy is None:
                                raise fl.handle.error
                            failures = offload_failures.get(nxt.dt_id, 0) + 1
                            offload_failures[nxt.dt_id] = failures
                            if (
                                self.policy is not None
                                and failures <= self.policy.max_offload_retries
                            ):
                                self.stats.kernel_retries += 1
                                h2 = self.athread.spawn(
                                    duration=duration,
                                    payload=nxt,
                                    on_complete=kernel_action(nxt),
                                    name=nxt.name,
                                    flag=flag,
                                    group=g,
                                )
                                fl = _Flight(
                                    h2,
                                    nxt,
                                    expected,
                                    (
                                        sim.now + self.policy.kernel_timeout(expected)
                                        if self._watchdog
                                        else float("inf")
                                    ),
                                    sim.now,
                                )
                                continue
                            # retries exhausted: execute on the MPE instead
                            self._kernel_inflight = False
                            self._overlap_busy = 0.0
                            self.stats.spin_wait += sim.now - t0
                            self.trace.record(rank, "spin", nxt.name, t0, sim.now)
                            yield from mpe_fallback(nxt)
                            fl = None
                            break
                        if fl is not None:
                            self._kernel_inflight = False
                            self._overlap_busy = 0.0
                            self.stats.spin_wait += sim.now - t0
                            self.trace.record(rank, "spin", nxt.name, t0, sim.now)
                            finish_task(nxt)
                        break

            # MPE-only mode: run kernels on the management core
            if self.mode == "mpe_only":
                nxt = tracker.pop_ready(is_offloadable, key=self._select_key)
                if nxt is not None:
                    yield from self._mpe("task-select", self.costs.sched.task_select)
                    if nxt.dt_id not in prepared:
                        yield from run_mpe_part(nxt)
                    action = kernel_action(nxt)
                    if action is not None:
                        action()
                    yield from self._mpe(
                        f"mpe-kernel:{nxt.name}",
                        self.costs.mpe_kernel_time(nxt.task, nxt.patch),
                    )
                    self.stats.kernels_on_mpe += 1
                    self.stats.kernel_flops += self.costs.kernel_flops(nxt.task, nxt.patch)
                    finish_task(nxt)
                    progressed = True

            # (3d) other MPE tasks: small kernels and reductions
            nxt = tracker.pop_ready(is_mpe_kind)
            if nxt is not None:
                yield from self._mpe("task-select", self.costs.sched.task_select)
                if nxt.dt_id not in prepared:
                    yield from run_mpe_part(nxt)
                action = kernel_action(nxt)
                if action is not None:
                    action()
                yield from self._mpe(
                    f"mpe-task:{nxt.name}", self.costs.mpe_task_time(nxt.task, nxt.patch)
                )
                finish_task(nxt)
                progressed = True

            nxt = tracker.pop_ready(is_reduction)
            if nxt is not None:
                partial = 0.0
                if self.real and nxt.task.action is not None:
                    values = [
                        nxt.task.action(
                            self._ctx(p, old_dw, new_dw, time, dt_value, step)
                        )
                        for p in self._local_patches
                    ]
                    partial = values[0] if values else 0.0
                    for v in values[1:]:
                        partial = nxt.task.reduction_op(partial, v)
                yield from self._mpe(
                    f"reduce-local:{nxt.name}",
                    self.costs.reduction_local_time(len(self._local_patches)),
                )
                req = self.comm.iallreduce(partial, op=nxt.task.reduction_op)
                pending_reductions.append((req, nxt, sim.now))
                progressed = True

            # one queued MPE work item (copies, packs, unpacks)
            if work:
                kind, payload, cost = work.popleft()
                yield from self._mpe(kind, cost)
                if kind == "copy":
                    apply_copy(payload)
                    tracker.release(payload.consumer.dt_id)
                elif kind == "send":
                    apply_send(*payload)
                elif kind == "unpack":
                    apply_unpack(*payload)
                progressed = True
            elif self.mode == "async" and inflight and tracker.any_ready:
                # idle MPE during a kernel: pre-process the MPE part of the
                # next ready kernel so it launches instantly (step 3d
                # "small kernels").
                cand = next(
                    (
                        d
                        for d in tracker.ready
                        if is_offloadable(d) and d.dt_id not in prepared
                    ),
                    None,
                )
                if cand is not None:
                    yield from run_mpe_part(cand)
                    progressed = True

            if progressed:
                continue

            # nothing runnable: wait for the next interesting event
            events: list[Event] = [fl.handle.event for fl in inflight.values()]
            events.extend(req.event for _s, req in recv_watch if not req.complete)
            events.extend(req.event for req, _d, _t0 in pending_reductions)
            if self._watchdog and inflight:
                # a stuck kernel's event never fires — wake at the nearest
                # watchdog deadline instead of sleeping forever
                next_deadline = min(fl.deadline for fl in inflight.values())
                if next_deadline < float("inf"):
                    events.append(sim.timeout(max(0.0, next_deadline - sim.now)))
            if not events:
                raise DeadlockError(
                    f"rank {rank} step {step}: {len(remaining)} tasks stuck, "
                    f"no events to wait on (task-graph bug?)"
                )
            t0 = sim.now
            yield sim.any_of(events)
            self.stats.idle_wait += sim.now - t0

        # drain outgoing sends before declaring the timestep done
        unfinished = [r for r in send_reqs if not r.complete]
        if unfinished:
            t0 = sim.now
            yield sim.all_of([r.event for r in unfinished])
            self.stats.idle_wait += sim.now - t0
