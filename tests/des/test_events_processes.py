"""Unit tests for events, conditions, process lifecycle and interrupts."""

import pytest

from repro.des import Simulator, Interrupt
from repro.des.event import all_of, any_of


# -- plain events ----------------------------------------------------------

def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()

    def proc(sim, ev):
        got = yield ev
        return got

    p = sim.process(proc(sim, ev))
    ev.succeed("payload")
    sim.run()
    assert p.value == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def proc(sim, ev):
        with pytest.raises(KeyError):
            yield ev
        return "handled"

    p = sim.process(proc(sim, ev))
    ev.fail(KeyError("boom"))
    sim.run()
    assert p.value == "handled"


def test_unwaited_failed_event_raises_at_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError, match="nobody caught me"):
        sim.run()


def test_value_before_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_waiting_on_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()
    assert ev.processed

    def proc(sim, ev):
        got = yield ev
        return (got, sim.now)

    p = sim.process(proc(sim, ev))
    sim.run()
    assert p.value == ("early", 0.0)


# -- processes --------------------------------------------------------------

def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return {"answer": 42}

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {"answer": 42}


def test_process_is_alive_transitions():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_waits_on_other_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2)
        return "child-done"

    def parent(sim):
        got = yield sim.process(child(sim))
        return (got, sim.now)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ("child-done", 2.0)


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("kernel fault")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except RuntimeError as exc:
            return f"caught:{exc}"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "caught:kernel fault"


def test_yielding_non_event_is_error():
    sim = Simulator()

    def proc(sim):
        yield 123  # type: ignore[misc]

    sim.process(proc(sim))
    with pytest.raises(TypeError, match="must yield Event"):
        sim.run()


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            return ("interrupted", exc.cause, sim.now)

    p = sim.process(sleeper(sim))

    def interrupter(sim, victim):
        yield sim.timeout(3)
        victim.interrupt("stop now")

    sim.process(interrupter(sim, p))
    sim.run()
    assert p.value == ("interrupted", "stop now", 3.0)


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)

    p = sim.process(proc(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


# -- conditions ---------------------------------------------------------------

def test_all_of_waits_for_every_event():
    sim = Simulator()
    t1, t2, t3 = sim.timeout(1, "a"), sim.timeout(3, "b"), sim.timeout(2, "c")

    def proc(sim):
        got = yield all_of(sim, [t1, t2, t3])
        return (sorted(got.values()), sim.now)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (["a", "b", "c"], 3.0)


def test_any_of_fires_on_first():
    sim = Simulator()
    t1, t2 = sim.timeout(5, "slow"), sim.timeout(1, "fast")

    def proc(sim):
        got = yield any_of(sim, [t1, t2])
        return (list(got.values()), sim.now)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (["fast"], 1.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        got = yield all_of(sim, [])
        return (got, sim.now)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == ({}, 0.0)


def test_condition_fails_if_child_fails():
    sim = Simulator()
    ok = sim.timeout(2, "fine")
    bad = sim.event()

    def proc(sim):
        with pytest.raises(OSError):
            yield all_of(sim, [ok, bad])
        return "survived"

    p = sim.process(proc(sim))
    bad.fail(OSError("dma error"))
    sim.run()
    assert p.value == "survived"


def test_condition_with_already_processed_children():
    sim = Simulator()
    t1 = sim.timeout(1, "x")
    sim.run()
    t2 = sim.timeout(1, "y")

    def proc(sim):
        got = yield all_of(sim, [t1, t2])
        return sorted(got.values())

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == ["x", "y"]


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(ValueError):
        all_of(sim1, [sim2.timeout(1)])
