"""Tests for data-warehouse scrubbing (memory reclamation)."""

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.loadbalancer import LoadBalancer
from repro.core.taskgraph import TaskGraph


def run(num_ranks=2, scrub=True, nsteps=3, mode="async"):
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(),
        num_ranks=num_ranks, mode=mode, real=True,
        scheduler_kwargs={"scrub": scrub},
    )
    res = ctl.run(nsteps=nsteps, dt=prob.stable_dt())
    return grid, prob, ctl, res


def test_consumer_counts_compiled():
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    assignment = LoadBalancer("sfc").assign(grid, 1)
    graph = TaskGraph(grid, prob.tasks(), assignment, 1)
    counts = graph.old_dw_consumers(0)
    # on one rank: every patch's u is read by its own timeAdvance (1)
    # plus by each of its 3 interior-face neighbour copies
    assert set(counts) == {("u", pid) for pid in range(8)}
    assert all(v == 1 + 3 for v in counts.values())


def test_old_dws_fully_scrubbed_after_run():
    """With scrubbing on, intermediate warehouses end up empty: the
    intermediate steps' controllers drop all grid variables."""
    grid, prob, ctl, res = run(scrub=True)
    # the scheduler scrubbed every old-DW u exactly once per patch per step
    assert res.stats.scrubbed == 3 * 8  # 3 steps x 8 patches


def test_scrubbing_preserves_results():
    _, _, _, with_scrub = run(scrub=True)
    _, _, _, without = run(scrub=False)
    a = {
        v.patch.patch_id: v.interior.copy()
        for dw in with_scrub.final_dws
        for v in dw.grid_variables()
    }
    b = {
        v.patch.patch_id: v.interior.copy()
        for dw in without.final_dws
        for v in dw.grid_variables()
    }
    for pid in b:
        assert np.array_equal(a[pid], b[pid])
    assert without.stats.scrubbed == 0


def test_final_dw_never_scrubbed():
    """Only *old* warehouses are scrubbed; the final state survives."""
    grid, prob, ctl, res = run(scrub=True)
    total_vars = sum(
        sum(1 for _ in dw.grid_variables()) for dw in res.final_dws
    )
    assert total_vars == grid.num_patches


@pytest.mark.parametrize("mode", ["async", "sync", "mpe_only"])
def test_scrub_counts_all_modes(mode):
    _, _, _, res = run(scrub=True, mode=mode, nsteps=2)
    assert res.stats.scrubbed == 2 * 8


def test_scrub_delegates_to_scrub_named():
    """Both scrub entry points share one removal path; scrubbing twice is
    a runtime bug and raises with a precise diagnosis."""
    from repro.core.datawarehouse import DataWarehouse
    from repro.core.varlabel import VarLabel

    grid = Grid(extent=(8, 8, 8), layout=(1, 1, 1))
    patch = next(iter(grid.patches()))
    label = VarLabel("u")
    dw = DataWarehouse(step=0)
    dw.allocate_and_put(label, patch)

    assert dw.scrub(label, patch) is True  # removed
    assert not dw.exists(label, patch)
    assert dw.was_scrubbed("u", patch.patch_id)
    with pytest.raises(KeyError, match="double-scrub"):
        dw.scrub(label, patch)
    with pytest.raises(KeyError, match="double-scrub"):
        dw.scrub_named("u", patch.patch_id)
    # a key that was never present is not a double-scrub: plain False
    assert dw.scrub_named("v", patch.patch_id) is False


def test_scrub_counts_multirank():
    """Cross-rank: remote faces are served by messages packed from the
    *producing* step's new DW, so per-step old-DW consumers are the
    self-read plus local copies only — every patch still scrubs."""
    _, _, _, res = run(num_ranks=4, scrub=True, nsteps=2)
    assert res.stats.scrubbed == 2 * 8
