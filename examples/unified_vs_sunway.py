#!/usr/bin/env python
"""Why Sunway needed a new scheduler (paper Sec. II, quantified).

Uintah's production "Unified Scheduler" uses one MPI process per node
with many worker threads, one per CPU core.  SW26010 gives a core-group
exactly one host core (the MPE) — the Unified Scheduler collapses to a
single thread and cannot touch the 64 CPEs.  This example measures that
story on the simulated machine:

1. Unified with 16 threads on a hypothetical 16-MPE-core host: thrives.
2. Unified with the 1 thread Sunway affords: no overlap, no CPEs.
3. The paper's asynchronous MPE+CPE scheduler: offload + overlap.

Usage::

    python examples/unified_vs_sunway.py
"""

import functools

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.schedulers.unified import UnifiedHostScheduler
from repro.harness import calibration
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import render_table, seconds


def run(label, scheduler_factory=None, mode="async", simd=False, cgs=8, nsteps=3):
    problem = problem_by_name("32x32x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid)
    controller = SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=cgs,
        mode=mode,
        real=False,
        cost_model=calibration.cost_model(simd=simd),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs() if scheduler_factory is None else {},
        scheduler_factory=scheduler_factory,
    )
    res = controller.run(nsteps=nsteps, dt=1e-5)
    return label, res.time_per_step, res.gflops


def main() -> None:
    cases = [
        run(
            "Unified, 16 host threads (hypothetical machine)",
            functools.partial(UnifiedHostScheduler, num_threads=16),
        ),
        run(
            "Unified, 1 thread (what the MPE affords)",
            functools.partial(UnifiedHostScheduler, num_threads=1),
        ),
        run("Sunway sync MPE+CPE (acc.sync)", mode="sync"),
        run("Sunway async MPE+CPE (acc.async, the paper)", mode="async"),
        run("  + vectorized kernel (acc_simd.async)", mode="async", simd=True),
    ]
    base = cases[1][1]  # unified single-thread = the naive Sunway port
    rows = [
        (label, seconds(t), f"{g:.1f}", f"{base / t:.2f}x")
        for label, t, g in cases
    ]
    print(
        render_table(
            "Schedulers on 8 simulated CGs, problem 32x32x512 "
            "(speedup vs single-thread Unified)",
            ["Scheduler", "Time/step", "Gflop/s", "Speedup"],
            rows,
        )
    )
    print()
    print("The single-thread Unified row IS the challenge of paper Sec. II:")
    print("without the offload-based redesign, Sunway's one MPE per CG runs")
    print("the whole kernel itself and overlaps nothing.")


if __name__ == "__main__":
    main()
