"""Unit tests for Resource and Store primitives."""

import pytest

from repro.des import Simulator, Resource, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def proc(sim, res, tag):
        req = res.request()
        yield req
        grants.append((tag, sim.now))
        yield sim.timeout(1)
        req.release()

    for tag in ("a", "b", "c"):
        sim.process(proc(sim, res, tag))
    sim.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_fifo_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def proc(sim, res, tag, hold):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(hold)
        req.release()

    for tag in range(5):
        sim.process(proc(sim, res, tag, hold=1))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.count == 1 and res.queue_length == 1
    sim.run()
    r1.release()
    assert res.count == 1 and res.queue_length == 0
    r2.release()
    assert res.count == 0


def test_release_without_hold_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    stranger = res.request()  # queued, not granted
    with pytest.raises(RuntimeError):
        res.release(stranger)


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("msg1")
    store.put("msg2")

    def proc(sim, store):
        a = yield store.get()
        b = yield store.get()
        return [a, b]

    p = sim.process(proc(sim, store))
    sim.run()
    assert p.value == ["msg1", "msg2"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def getter(sim, store):
        item = yield store.get()
        return (item, sim.now)

    def putter(sim, store):
        yield sim.timeout(4)
        store.put("late")

    p = sim.process(getter(sim, store))
    sim.process(putter(sim, store))
    sim.run()
    assert p.value == ("late", 4.0)


def test_store_try_get_nonblocking():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(7)
    assert len(store) == 1
    assert store.try_get() == 7
    assert store.try_get() is None


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    results = []

    def getter(sim, store, tag):
        item = yield store.get()
        results.append((tag, item))

    for tag in ("g1", "g2"):
        sim.process(getter(sim, store, tag))

    def putter(sim, store):
        yield sim.timeout(1)
        store.put("first")
        yield sim.timeout(1)
        store.put("second")

    sim.process(putter(sim, store))
    sim.run()
    assert results == [("g1", "first"), ("g2", "second")]
