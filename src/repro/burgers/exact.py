"""The 3-D exact solution, initial/boundary conditions, and error norms.

``u(x, y, z, t) = phi(x,t) phi(y,t) phi(z,t)`` (paper Sec. III).  The
product structure lets us evaluate whole regions with three 1-D phi
vectors and an outer product — what initialization and boundary
conditions use.
"""

from __future__ import annotations

import numpy as np

from repro.burgers.phi import phi, NU
from repro.core.grid import Grid
from repro.core.patch import Region
from repro.sunway.fastmath import ieee_exp


def exact_solution(x, y, z, t: float = 0.0, nu: float = NU, exp=ieee_exp):
    """Pointwise exact solution at coordinates (broadcastable arrays)."""
    return phi(x, t, nu, exp) * phi(y, t, nu, exp) * phi(z, t, nu, exp)


def _axis_centers(grid: Grid, axis: int, lo: int, hi: int) -> np.ndarray:
    """Cell-centre coordinates of index range [lo, hi) along ``axis``."""
    d = grid.spacing[axis]
    base = grid.domain_low[axis]
    return base + (np.arange(lo, hi, dtype=np.float64) + 0.5) * d


def exact_on_region(
    grid: Grid, region: Region, t: float = 0.0, nu: float = NU, exp=ieee_exp
) -> np.ndarray:
    """Exact solution sampled on every cell centre of ``region``.

    Returns an array of shape ``region.extent`` (x, y, z axes), built as
    an outer product of the three 1-D phi factors.  Regions may extend
    outside the physical domain (ghost cells): phi is globally defined,
    which is exactly how the boundary conditions are imposed.
    """
    fx = phi(_axis_centers(grid, 0, region.low[0], region.high[0]), t, nu, exp)
    fy = phi(_axis_centers(grid, 1, region.low[1], region.high[1]), t, nu, exp)
    fz = phi(_axis_centers(grid, 2, region.low[2], region.high[2]), t, nu, exp)
    out = (
        np.asarray(fx)[:, None, None]
        * np.asarray(fy)[None, :, None]
        * np.asarray(fz)[None, None, :]
    )
    return np.asfortranarray(out)


def solution_errors(
    grid: Grid,
    final_dws,
    label,
    t: float,
    nu: float = NU,
) -> dict[str, float]:
    """Global error norms of a finished run against the exact solution.

    ``final_dws`` are the per-rank final data warehouses from a
    :class:`~repro.core.controller.RunResult`; every patch is compared on
    its interior.  Returns ``{"linf": ..., "l2": ...}`` where l2 is the
    cell-volume-weighted RMS error.
    """
    linf = 0.0
    sq_sum = 0.0
    cells = 0
    for dw in final_dws:
        for var in dw.grid_variables():
            if var.label.name != label.name:
                continue
            expect = exact_on_region(grid, var.patch.region, t, nu)
            err = np.abs(var.interior - expect)
            linf = max(linf, float(err.max()))
            sq_sum += float((err**2).sum())
            cells += var.patch.num_cells
    if cells == 0:
        raise ValueError(f"no patches carrying {label.name!r} found in the final DWs")
    return {"linf": linf, "l2": float(np.sqrt(sq_sum / cells))}
