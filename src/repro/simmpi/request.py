"""Non-blocking request objects returned by the simulated MPI calls."""

from __future__ import annotations

import typing as _t

from repro.des import Simulator
from repro.des.event import Event


class Request:
    """Base class: a pending non-blocking MPI operation.

    A request owns a DES :attr:`event` that fires at the operation's
    completion time.  ``test()`` is the *host-side* observation: it
    returns True only if the completion time has been reached — calling
    it is how a rank "progresses" MPI in the sense of the paper.
    """

    def __init__(self, sim: Simulator, kind: str, tag: int):
        self.sim = sim
        self.kind = kind
        self.tag = tag
        self.event: Event = sim.event(name=f"{kind}(tag={tag})")
        self.posted_at = sim.now

    @property
    def complete(self) -> bool:
        """Whether the operation has finished (event fired)."""
        return self.event.triggered

    def test(self) -> bool:
        """Non-blocking completion probe, like ``MPI_Test``."""
        return self.complete

    @property
    def value(self) -> object:
        """The operation's result (payload for receives, reduced value
        for collectives); only valid once complete."""
        if not self.complete:
            raise RuntimeError(f"{self!r} is not complete")
        return self.event.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self.complete else "pending"
        return f"<{self.__class__.__name__} {self.kind} tag={self.tag} {state}>"


class SendRequest(Request):
    """A pending ``isend``."""

    def __init__(self, sim: Simulator, dest: int, tag: int, nbytes: int, source: int = 0):
        super().__init__(sim, "isend", tag)
        self.source = source
        self.dest = dest
        self.nbytes = nbytes


class RecvRequest(Request):
    """A pending ``irecv``; its value is the sent payload."""

    def __init__(self, sim: Simulator, source: int, tag: int):
        super().__init__(sim, "irecv", tag)
        self.source = source


class CollectiveRequest(Request):
    """A pending non-blocking collective (allreduce / barrier)."""

    def __init__(self, sim: Simulator, kind: str, epoch: int):
        super().__init__(sim, kind, tag=epoch)
        self.epoch = epoch


def all_complete(requests: _t.Iterable[Request]) -> bool:
    """True if every request in ``requests`` is complete (``MPI_Testall``)."""
    return all(r.complete for r in requests)


def completed_subset(requests: _t.Iterable[Request]) -> list[Request]:
    """The completed subset of ``requests`` (``MPI_Testsome``)."""
    return [r for r in requests if r.complete]
