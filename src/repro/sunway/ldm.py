"""The per-CPE Local Data Memory (LDM) as a capacity-checked allocator.

SW26010 CPEs have no data cache; they own a 64 KB scratchpad the kernel
must manage explicitly.  The paper's tile-size choice (Sec. VI-A: 16x16x8
tiles, 41.3 KB working set for the two Burgers fields) exists precisely
because of this capacity limit, so the reproduction enforces it: any tile
whose working set does not fit raises :class:`LDMAllocationError`, and the
tiling module (``repro.core.tiling``) sizes tiles against this allocator.

The allocator is a simple bump/free-list model — real LDM allocation on
Sunway is also a linear carve-up done by the kernel author — with exact
byte accounting and high-water-mark tracking for reporting.
"""

from __future__ import annotations

import dataclasses


#: SW26010 scratchpad size: the budget every tile plan is checked
#: against (also the default :class:`LDM` capacity, and the ceiling the
#: schedule validator enforces on offloaded kernels).
DEFAULT_LDM_BYTES = 64 * 1024


class LDMAllocationError(MemoryError):
    """Raised when a requested allocation exceeds the remaining LDM."""


@dataclasses.dataclass
class LDMBlock:
    """A live allocation inside an :class:`LDM`."""

    name: str
    nbytes: int
    offset: int


class LDM:
    """A single CPE's scratchpad memory.

    Parameters
    ----------
    capacity:
        Usable bytes (64 KB on SW26010; a few hundred bytes are consumed
        by the athread runtime on real hardware — callers can model that
        by passing a reduced capacity).
    """

    def __init__(self, capacity: int = DEFAULT_LDM_BYTES):
        if capacity <= 0:
            raise ValueError(f"LDM capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._blocks: dict[str, LDMBlock] = {}
        self._used = 0
        self._high_water = 0

    # -- accounting ----------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes currently available."""
        return self.capacity - self._used

    @property
    def high_water(self) -> int:
        """Largest total allocation ever held (for working-set reports)."""
        return self._high_water

    def blocks(self) -> list[LDMBlock]:
        """Live allocations, in allocation order."""
        return sorted(self._blocks.values(), key=lambda b: b.offset)

    # -- allocation ------------------------------------------------------------
    def alloc(self, name: str, nbytes: int) -> LDMBlock:
        """Allocate ``nbytes`` under ``name``.

        Raises
        ------
        LDMAllocationError
            If the allocation would exceed capacity.
        ValueError
            If ``name`` is already allocated or ``nbytes`` is not positive.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        if name in self._blocks:
            raise ValueError(f"LDM block {name!r} already allocated")
        if self._used + nbytes > self.capacity:
            raise LDMAllocationError(
                f"LDM overflow allocating {name!r}: need {nbytes} B, "
                f"free {self.free} B of {self.capacity} B"
            )
        block = LDMBlock(name=name, nbytes=nbytes, offset=self._used)
        self._blocks[name] = block
        self._used += nbytes
        self._high_water = max(self._high_water, self._used)
        return block

    def alloc_array(self, name: str, shape: tuple[int, ...], itemsize: int = 8) -> LDMBlock:
        """Allocate space for a dense array of ``shape`` (default f64)."""
        n = itemsize
        for dim in shape:
            if dim <= 0:
                raise ValueError(f"array shape must be positive, got {shape}")
            n *= dim
        return self.alloc(name, n)

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more would fit right now."""
        return self._used + int(nbytes) <= self.capacity

    def release(self, name: str) -> None:
        """Free the block called ``name``."""
        try:
            block = self._blocks.pop(name)
        except KeyError:
            raise KeyError(f"no LDM block named {name!r}") from None
        self._used -= block.nbytes

    def reset(self) -> None:
        """Free everything (kernel epilogue); keeps the high-water mark."""
        self._blocks.clear()
        self._used = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LDM {self._used}/{self.capacity} B in {len(self._blocks)} blocks>"
