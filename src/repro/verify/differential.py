"""Differential verification harness: one problem, every configuration.

Runs the same Burgers problem across execution modes (``mpe_only`` /
``sync`` / ``async``), every ready-task selection policy, and a set of
seeded fault plans, with the online
:class:`~repro.verify.validator.ScheduleValidator` attached, and asserts
two properties the whole reproduction rests on:

1. **Bitwise-identical physics** — every configuration produces exactly
   the same final field arrays as the fault-free reference (the paper's
   modes differ in *schedule*, never in *answers*).
2. **Zero invariant violations** — the validator's catalog holds in
   every configuration.

It also proves the validator itself is **non-perturbing**: for each mode
the problem runs with and without the validator and the schedules
(timings, per-rank counters) must match exactly.

On failure the harness minimizes the case to the fewest timesteps that
still fail and emits a :class:`~repro.verify.bundle.ReproBundle`.
"""

from __future__ import annotations

import dataclasses
import pathlib
import typing as _t

import numpy as np

from repro.verify.bundle import ReproBundle
from repro.verify.validator import ScheduleValidator

#: Fault-plan template; the seed selects the deterministic stream.
_FAULT_PROBS = dict(
    kernel_slowdown_prob=0.10,
    kernel_stuck_prob=0.05,
    dma_error_prob=0.05,
    msg_drop_prob=0.15,
    msg_dup_prob=0.10,
    msg_delay_prob=0.15,
)

#: Default differential matrix coordinates.
DEFAULT_MODES = ("mpe_only", "sync", "async")
DEFAULT_SEEDS = (None, 7, 23, 101)  # None = fault-free


def default_policies() -> tuple[str, ...]:
    from repro.core.schedulers.selection import POLICIES

    return tuple(sorted(POLICIES))


def fault_config_for(seed: int):
    """The differential harness's standard fault plan under ``seed``."""
    from repro.faults import FaultConfig

    return FaultConfig(seed=seed, **_FAULT_PROBS)


@dataclasses.dataclass
class CaseResult:
    """One cell of the differential matrix."""

    mode: str
    policy: str
    seed: int | None
    fields: dict[str, np.ndarray]
    report: dict
    result: object  # RunResult
    #: Bus events around the first violation (empty when clean).
    window: list = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report["ok"]


def _build_controller(
    mode: str,
    policy: str,
    seed: int | None,
    extent: tuple[int, int, int],
    layout: tuple[int, int, int],
    num_ranks: int,
    validator: ScheduleValidator | None,
    case_hook: _t.Callable | None = None,
):
    from repro.burgers import BurgersProblem
    from repro.core.controller import SimulationController
    from repro.core.grid import Grid
    from repro.faults import FaultInjector, ResiliencePolicy

    grid = Grid(extent=extent, layout=layout)
    prob = BurgersProblem(grid)
    faults = resilience = None
    if seed is not None:
        faults = FaultInjector(fault_config_for(seed))
        resilience = ResiliencePolicy()
    ctl = SimulationController(
        grid,
        prob.tasks(),
        prob.init_tasks(),
        num_ranks=num_ranks,
        mode=mode,
        real=True,
        scheduler_kwargs={"select_policy": policy},
        faults=faults,
        resilience=resilience,
        validator=validator,
    )
    if case_hook is not None:
        case_hook(ctl)
    return ctl, prob


def fields_of(result) -> dict[str, np.ndarray]:
    """Final field arrays keyed ``label@patch`` (the physics fingerprint)."""
    out: dict[str, np.ndarray] = {}
    for dw in result.final_dws:
        for var in dw.grid_variables():
            out[f"{var.label.name}@p{var.patch.patch_id}"] = var.interior.copy()
    return out


def fields_identical(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    """Bitwise equality of two physics fingerprints."""
    if set(a) != set(b):
        return False
    return all(np.array_equal(a[k], b[k]) for k in a)


def run_case(
    mode: str,
    policy: str,
    seed: int | None,
    nsteps: int,
    extent: tuple[int, int, int],
    layout: tuple[int, int, int],
    num_ranks: int,
    case_hook: _t.Callable | None = None,
) -> CaseResult:
    """Run one matrix cell with the validator attached."""
    validator = ScheduleValidator()
    ctl, prob = _build_controller(
        mode, policy, seed, extent, layout, num_ranks, validator, case_hook
    )
    res = ctl.run(nsteps=nsteps, dt=prob.stable_dt())
    return CaseResult(
        mode=mode,
        policy=policy,
        seed=seed,
        fields=fields_of(res),
        report=validator.report(),
        result=res,
        window=list(validator.first_window or ()),
    )


# ---------------------------------------------------------------- gates
def _stats_dicts(result) -> list[dict]:
    return [dataclasses.asdict(s) for s in result.rank_stats]


def check_nonperturbation(
    mode: str,
    nsteps: int,
    extent: tuple[int, int, int],
    layout: tuple[int, int, int],
    num_ranks: int,
) -> dict:
    """Golden gate: a validated run is bit-identical to an unvalidated one."""
    runs = []
    for validator in (None, ScheduleValidator()):
        ctl, prob = _build_controller(
            mode, "fifo", None, extent, layout, num_ranks, validator
        )
        runs.append(ctl.run(nsteps=nsteps, dt=prob.stable_dt()))
    bare, checked = runs
    identical = (
        bare.time_per_step == checked.time_per_step
        and bare.step_times == checked.step_times
        and _stats_dicts(bare) == _stats_dicts(checked)
        and fields_identical(fields_of(bare), fields_of(checked))
    )
    return {"mode": mode, "identical": identical}


def minimize_case(
    mode: str,
    policy: str,
    seed: int | None,
    nsteps: int,
    extent: tuple[int, int, int],
    layout: tuple[int, int, int],
    num_ranks: int,
    reference_for: _t.Callable[[int], dict[str, np.ndarray]],
    case_hook: _t.Callable | None = None,
) -> tuple[int, CaseResult]:
    """Smallest step count at which the case still fails (and that run)."""
    for n in range(1, nsteps + 1):
        case = run_case(
            mode, policy, seed, n, extent, layout, num_ranks, case_hook
        )
        if not case.ok or not fields_identical(case.fields, reference_for(n)):
            return n, case
    # failure did not reproduce during minimization: keep the full case
    return nsteps, run_case(
        mode, policy, seed, nsteps, extent, layout, num_ranks, case_hook
    )


# ---------------------------------------------------------------- harness
def run_differential(
    modes: _t.Sequence[str] = DEFAULT_MODES,
    policies: _t.Sequence[str] | None = None,
    seeds: _t.Sequence[int | None] = DEFAULT_SEEDS,
    nsteps: int = 3,
    extent: tuple[int, int, int] = (8, 8, 8),
    layout: tuple[int, int, int] = (2, 2, 1),
    num_ranks: int = 2,
    out: str | pathlib.Path | None = None,
    case_hook: _t.Callable | None = None,
    check_perturbation: bool = True,
    log: _t.Callable[[str], None] | None = None,
) -> dict:
    """Run the full differential matrix; return the verification report.

    ``case_hook(controller)`` is applied to every matrix controller (the
    self-tests use it to sabotage runs); the reference run stays clean.
    """
    say = log if log is not None else (lambda msg: None)
    problem = {
        "extent": list(extent),
        "layout": list(layout),
        "num_ranks": num_ranks,
        "nsteps": nsteps,
    }
    if policies is None:
        policies = default_policies()

    # fault-free reference (first mode, fifo), cached per step count for
    # the minimizer
    _ref_cache: dict[int, dict[str, np.ndarray]] = {}

    def reference_for(n: int) -> dict[str, np.ndarray]:
        if n not in _ref_cache:
            _ref_cache[n] = run_case(
                modes[0], "fifo", None, n, extent, layout, num_ranks
            ).fields
        return _ref_cache[n]

    reference = reference_for(nsteps)
    say(f"reference: mode={modes[0]} policy=fifo fault-free ({len(reference)} fields)")

    cases = []
    bundles: list[ReproBundle] = []
    for mode in modes:
        for policy in policies:
            for seed in seeds:
                case = run_case(
                    mode, policy, seed, nsteps, extent, layout, num_ranks, case_hook
                )
                identical = fields_identical(case.fields, reference)
                entry = {
                    "mode": mode,
                    "policy": policy,
                    "seed": seed,
                    "violations": case.report["num_violations"],
                    "identical_physics": identical,
                    "ok": case.ok and identical,
                }
                cases.append(entry)
                if not entry["ok"]:
                    say(
                        f"FAIL mode={mode} policy={policy} seed={seed}: "
                        f"{case.report['num_violations']} violation(s), "
                        f"identical={identical} -- minimizing"
                    )
                    min_n, min_case = minimize_case(
                        mode, policy, seed, nsteps, extent, layout,
                        num_ranks, reference_for, case_hook,
                    )
                    first = (min_case.report["violations"] or [None])[0]
                    failure = (
                        first["invariant"] if first is not None else "physics-divergence"
                    )
                    bundles.append(
                        ReproBundle(
                            failure=failure,
                            mode=mode,
                            select_policy=policy,
                            fault_seed=seed,
                            problem={**problem, "nsteps": min_n},
                            violation=first,
                            window=min_case.window,
                            detail=(
                                f"{min_case.report['num_violations']} violation(s); "
                                f"physics identical: "
                                f"{fields_identical(min_case.fields, reference_for(min_n))}"
                            ),
                        )
                    )

    perturbation = []
    if check_perturbation:
        for mode in modes:
            gate = check_nonperturbation(mode, nsteps, extent, layout, num_ranks)
            perturbation.append(gate)
            if not gate["identical"]:
                bundles.append(
                    ReproBundle(
                        failure="schedule-perturbation",
                        mode=mode,
                        select_policy="fifo",
                        fault_seed=None,
                        problem=problem,
                        violation=None,
                        window=[],
                        detail="validated run differs from unvalidated run",
                    )
                )

    passed = all(c["ok"] for c in cases) and all(p["identical"] for p in perturbation)
    report = {
        "problem": problem,
        "modes": list(modes),
        "policies": list(policies),
        "seeds": [s for s in seeds],
        "cases": cases,
        "nonperturbation": perturbation,
        "num_cases": len(cases),
        "passed": passed,
        "bundles": [b.to_dict() for b in bundles],
    }
    if out is not None:
        import json

        outdir = pathlib.Path(out)
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "report.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        for i, b in enumerate(bundles):
            b.write(outdir / f"bundle-{i:02d}-{b.failure}.json")
    return report
