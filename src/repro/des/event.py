"""Events: the synchronisation primitive of the DES kernel.

An :class:`Event` is a one-shot occurrence on the virtual timeline.
Processes ``yield`` events to suspend until the event *fires*.  Events can
succeed with a value or fail with an exception; a failed event re-raises
inside every waiting process, which lets failure injection propagate
through schedulers exactly like a hardware fault would.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.des.simulator import Simulator


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel for "event has not yet been given a value".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    States:

    * *pending* — created but not yet triggered.
    * *triggered* — scheduled to fire; its callbacks will run when the
      simulator reaches its scheduled time.
    * *processed* — callbacks have run; waiting processes were resumed.

    Parameters
    ----------
    sim:
        The owning simulator.  Events are bound to exactly one simulator
        and may only be waited on by processes of that simulator.
    name:
        Optional label used in ``repr`` and traces.
    """

    __slots__ = ("sim", "name", "_value", "_ok", "_callbacks", "_processed", "_defused")

    def __init__(self, sim: "Simulator", name: str | None = None):
        self.sim = sim
        self.name = name
        self._value: object = _PENDING
        self._ok: bool | None = None
        self._callbacks: list | None = []
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run and waiters were resumed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception).  Only valid once triggered."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: object = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``.

        Every process waiting on the event will see ``exception`` raised
        at its ``yield``.  If nothing ever waits on a failed event the
        simulator raises the exception at ``run()`` time so failures are
        never silently dropped (mirroring SimPy's defused semantics).
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    # -- callback plumbing --------------------------------------------------
    def _add_callback(self, callback) -> None:
        if self._processed:
            # Late subscription to an already-processed event: run on the
            # next simulator tick at the current time so semantics do not
            # depend on subscription order.
            self.sim._schedule(_CallbackShim(self, callback), 0.0)
        else:
            assert self._callbacks is not None
            self._callbacks.append(callback)

    def _process(self) -> None:
        """Run callbacks.  Called by the simulator at fire time."""
        callbacks, self._callbacks = self._callbacks, None
        self._processed = True
        if not self._ok and not callbacks and not self._defused:
            raise self._value  # type: ignore[misc]  # unhandled failure
        for cb in callbacks or ():
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class _CallbackShim:
    """Internal: delivers a late-subscribed callback for a processed event."""

    __slots__ = ("event", "callback")

    def __init__(self, event: Event, callback):
        self.event = event
        self.callback = callback

    def _process(self) -> None:
        self.callback(self.event)


class Timeout(Event):
    """An event that fires after a fixed virtual delay.

    Created via :meth:`Simulator.timeout`.  ``delay`` must be >= 0; zero
    delays are legal and fire in FIFO order with other same-time events.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim, name=f"Timeout({delay:g})")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Condition(Event):
    """Fires when a predicate over child events is satisfied.

    Use the :func:`all_of` / :func:`any_of` helpers.  The condition value
    is the dict ``{event: value}`` of all child events that had fired by
    the time the condition triggered.  A failing child fails the whole
    condition immediately.
    """

    __slots__ = ("_events", "_count", "_needed")

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event], needed: int):
        super().__init__(sim, name=f"Condition({needed}/{len(events)})")
        events = list(events)
        for ev in events:
            if ev.sim is not sim:
                raise ValueError("condition mixes events from different simulators")
        self._events = events
        self._count = 0
        self._needed = min(needed, len(events))
        if self._needed == 0:
            self.succeed(self._collect())
            return
        for ev in events:
            if ev._processed:
                self._on_child(ev)
            else:
                ev._add_callback(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self._events if ev._processed and ev._ok}

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev._defused = True
            self.fail(_t.cast(BaseException, ev._value))
            return
        self._count += 1
        if self._count >= self._needed:
            self.succeed(self._collect())


def all_of(sim: "Simulator", events: _t.Sequence[Event]) -> Condition:
    """Event that fires when *all* of ``events`` have fired."""
    return Condition(sim, events, needed=len(list(events)))


def any_of(sim: "Simulator", events: _t.Sequence[Event]) -> Condition:
    """Event that fires when *any one* of ``events`` has fired."""
    return Condition(sim, events, needed=1)
