"""Tests for the Table III problem suite and Table IV variants."""

import pytest

from repro.harness.problems import (
    CG_COUNTS,
    PATCH_LAYOUT,
    PROBLEMS,
    problem_by_name,
    small_medium_large,
)
from repro.harness.variants import ACCELERATED, VARIANTS, variant_by_name


# -- problems (Table III) -----------------------------------------------------------

def test_seven_problems_in_paper_order():
    names = [p.name for p in PROBLEMS]
    assert names == [
        "16x16x512", "16x32x512", "32x32x512", "32x64x512",
        "64x64x512", "64x128x512", "128x128x512",
    ]


def test_grid_sizes_match_table3():
    assert problem_by_name("16x16x512").grid_extent == (128, 128, 1024)
    assert problem_by_name("32x64x512").grid_extent == (256, 512, 1024)
    assert problem_by_name("128x128x512").grid_extent == (1024, 1024, 1024)


def test_memory_column_matches_table3():
    expect = {
        "16x16x512": 256 * 1024**2,
        "16x32x512": 512 * 1024**2,
        "32x32x512": 1024**3,
        "32x64x512": 2 * 1024**3,
        "64x64x512": 4 * 1024**3,
        "64x128x512": 8 * 1024**3,
        "128x128x512": 16 * 1024**3,
    }
    for p in PROBLEMS:
        assert p.memory_bytes == expect[p.name], p.name


def test_min_cgs_column_matches_table3():
    """Including the paper's crash-driven 2-CG minimum for 64x64x512."""
    expect = {
        "16x16x512": 1, "16x32x512": 1, "32x32x512": 1, "32x64x512": 1,
        "64x64x512": 2, "64x128x512": 4, "128x128x512": 8,
    }
    for p in PROBLEMS:
        assert p.min_cgs == expect[p.name], p.name


def test_cg_counts_sweep():
    assert problem_by_name("16x16x512").cg_counts() == list(CG_COUNTS)
    assert problem_by_name("128x128x512").cg_counts() == [8, 16, 32, 64, 128]


def test_patch_layout_is_8x8x2():
    assert PATCH_LAYOUT == (8, 8, 2)
    assert all(p.grid().num_patches == 128 for p in PROBLEMS)


def test_grids_divide_evenly():
    for p in PROBLEMS:
        assert p.grid().patch_extent == p.patch_extent


def test_problem_lookup_errors():
    with pytest.raises(KeyError):
        problem_by_name("7x7x7")


def test_small_medium_large_selection():
    s, m, l = small_medium_large()
    assert (s.name, m.name, l.name) == ("16x16x512", "32x64x512", "128x128x512")


# -- variants (Table IV) ---------------------------------------------------------------

def test_five_variants():
    assert set(VARIANTS) == {
        "host.sync", "acc.sync", "acc_simd.sync", "acc.async", "acc_simd.async",
    }


def test_variant_axes_match_table4():
    v = variant_by_name("host.sync")
    assert (v.mode, v.tiling, v.simd) == ("mpe_only", False, False)
    v = variant_by_name("acc_simd.async")
    assert (v.mode, v.tiling, v.simd) == ("async", True, True)
    assert variant_by_name("acc.sync").scheduler_label == "synchronous MPE+CPE"
    assert variant_by_name("acc.async").scheduler_label == "asynchronous MPE+CPE"
    assert variant_by_name("host.sync").scheduler_label == "MPE-only"


def test_accelerated_subset():
    assert set(ACCELERATED) == set(VARIANTS) - {"host.sync"}


def test_variant_cost_models_reflect_flags():
    assert variant_by_name("acc_simd.sync").cost_model().simd is True
    assert variant_by_name("acc.sync").cost_model().simd is False


def test_variant_lookup_errors():
    with pytest.raises(KeyError):
        variant_by_name("gpu.async")
