"""Differential-harness tests: clean matrices pass, sabotage is caught."""

import json

import numpy as np

from repro.verify import (
    ScheduleValidator,
    fault_config_for,
    fields_identical,
    run_case,
    run_differential,
)


def test_fault_config_is_seed_deterministic():
    a, b = fault_config_for(23), fault_config_for(23)
    assert a == b
    assert fault_config_for(7) != a


def test_fields_identical_discriminates():
    a = {"u@p0": np.arange(4.0)}
    assert fields_identical(a, {"u@p0": np.arange(4.0)})
    assert not fields_identical(a, {"u@p0": np.arange(4.0) + 1e-16})
    assert not fields_identical(a, {"u@p1": np.arange(4.0)})


def test_single_case_runs_clean_with_faults():
    case = run_case(
        "async", "fifo", seed=7, nsteps=2,
        extent=(8, 8, 8), layout=(2, 2, 1), num_ranks=2,
    )
    assert case.ok
    assert case.report["num_violations"] == 0
    assert case.fields and case.window == []


def test_small_matrix_passes_and_writes_report(tmp_path):
    report = run_differential(
        modes=("mpe_only", "async"),
        policies=("fifo",),
        seeds=(None, 7),
        nsteps=2,
        check_perturbation=False,
        out=tmp_path,
    )
    assert report["passed"] is True
    assert report["num_cases"] == 4
    assert all(c["ok"] for c in report["cases"])
    assert report["bundles"] == []
    on_disk = json.loads((tmp_path / "report.json").read_text())
    assert on_disk["passed"] is True


def test_sabotaged_case_yields_minimized_bundle(tmp_path):
    # shrink the validated budget so every offloaded kernel "overflows"
    def sabotage(ctl):
        if ctl.validator is not None:
            ctl.validator.ldm_bytes = 128

    report = run_differential(
        modes=("async",),
        policies=("fifo",),
        seeds=(None,),
        nsteps=2,
        check_perturbation=False,
        case_hook=sabotage,
        out=tmp_path,
    )
    assert report["passed"] is False
    assert report["cases"][0]["violations"] > 0
    (bundle,) = report["bundles"]
    assert bundle["failure"] == "ldm-overflow"
    # minimized to a single step and reproducible from the command line
    assert bundle["problem"]["nsteps"] == 1
    assert "repro verify" in bundle["command"]
    assert "--modes async" in bundle["command"]
    assert bundle["violation"]["invariant"] == "ldm-overflow"
    files = sorted(p.name for p in tmp_path.iterdir())
    assert "bundle-00-ldm-overflow.json" in files


def test_validator_strict_flag_defaults_off():
    v = ScheduleValidator()
    assert v.strict is False and v.ok
