"""Tests for the three Burgers kernel implementations.

The NumPy kernel is the production path; the cell loop is the literal
Algorithm 1 specification; the SIMD kernel is the tiled Algorithm 2.
All three must agree bitwise (on SW26010 too, vectorization changes
speed, not results), and the scheme must converge to the exact solution.
"""

import numpy as np
import pytest

from repro.burgers.exact import exact_on_region
from repro.burgers.kernel import apply_kernel, apply_kernel_cell_loop
from repro.burgers.kernel_simd import apply_kernel_simd
from repro.burgers.phi import NU
from repro.core.grid import Grid
from repro.core.variables import CCVariable
from repro.core.varlabel import VarLabel
from repro.sunway.ldm import LDMAllocationError

U = VarLabel("u")


def prepared_patch(extent=(8, 8, 8), layout=(1, 1, 1), t=0.0):
    """A patch with u = exact solution everywhere including ghosts."""
    grid = Grid(extent=extent, layout=layout)
    patch = grid.patch((0, 0, 0))
    u_old = CCVariable(U, patch, ghosts=1)
    u_old.data[...] = exact_on_region(grid, patch.region.grown(1), t=t)
    u_new = CCVariable(U, patch, ghosts=1)
    return grid, patch, u_old, u_new


def test_numpy_matches_cell_loop_bitwise():
    grid, patch, u_old, a = prepared_patch()
    b = CCVariable(U, patch, ghosts=1)
    apply_kernel(u_old, a, grid, t=0.0, dt=1e-4)
    apply_kernel_cell_loop(u_old, b, grid, t=0.0, dt=1e-4)
    assert np.array_equal(a.interior, b.interior)


def test_simd_matches_numpy_bitwise():
    grid, patch, u_old, a = prepared_patch(extent=(16, 16, 16))
    b = CCVariable(U, patch, ghosts=1)
    apply_kernel(u_old, a, grid, t=0.0, dt=1e-4)
    apply_kernel_simd(u_old, b, grid, t=0.0, dt=1e-4, tile_shape=(16, 16, 8))
    assert np.array_equal(a.interior, b.interior)


def test_simd_matches_numpy_with_edge_tiles():
    """Tile shapes that don't divide the patch exercise the scalar
    epilogue and clipped tiles."""
    grid, patch, u_old, a = prepared_patch(extent=(10, 6, 6))
    b = CCVariable(U, patch, ghosts=1)
    apply_kernel(u_old, a, grid, t=0.0, dt=1e-4)
    apply_kernel_simd(u_old, b, grid, t=0.0, dt=1e-4, tile_shape=(4, 4, 4))
    assert np.array_equal(a.interior, b.interior)


def test_simd_kernel_enforces_ldm_capacity():
    grid, patch, u_old, u_new = prepared_patch(extent=(32, 32, 32))
    with pytest.raises(LDMAllocationError):
        apply_kernel_simd(
            u_old, u_new, grid, t=0.0, dt=1e-4, tile_shape=(32, 32, 32)
        )


def test_kernel_needs_ghosts():
    grid = Grid(extent=(8, 8, 8))
    patch = grid.patch((0, 0, 0))
    bare = CCVariable(U, patch, ghosts=0)
    out = CCVariable(U, patch, ghosts=0)
    for fn in (apply_kernel, apply_kernel_cell_loop):
        with pytest.raises(ValueError, match="ghost"):
            fn(bare, out, grid, t=0.0, dt=1e-4)
    with pytest.raises(ValueError, match="ghost"):
        apply_kernel_simd(bare, out, grid, t=0.0, dt=1e-4)


def test_kernel_preserves_constant_state():
    """A constant field has zero derivatives: advection and diffusion
    terms vanish, u stays exactly constant."""
    grid, patch, u_old, u_new = prepared_patch()
    u_old.data[...] = 0.7
    apply_kernel(u_old, u_new, grid, t=0.0, dt=1e-3)
    assert np.array_equal(u_new.interior, np.full_like(u_new.interior, 0.7))


def test_single_euler_step_is_first_order_accurate():
    """One step's local truncation error shrinks ~O(dx) (upwind)."""
    errors = {}
    for n in (16, 32):
        grid, patch, u_old, u_new = prepared_patch(extent=(n, n, n))
        dt = 1e-6  # tiny dt isolates the spatial error
        apply_kernel(u_old, u_new, grid, t=0.0, dt=dt)
        exact_next = exact_on_region(grid, patch.region, t=dt)
        errors[n] = np.abs(u_new.interior - exact_next).max() / dt
    ratio = errors[16] / errors[32]
    assert ratio > 1.5  # first order: ~2x per refinement


def test_timestepped_convergence_to_exact_solution():
    """Integrate to a fixed time at two resolutions: error must drop."""
    final_t = 2e-3
    errs = {}
    for n in (12, 24):
        grid = Grid(extent=(n, n, n))
        patch = grid.patch((0, 0, 0))
        u = CCVariable(U, patch, ghosts=1)
        u.data[...] = exact_on_region(grid, patch.region.grown(1), t=0.0)
        dx = grid.spacing[0]
        dt = 0.2 * dx * dx / (6 * NU)
        steps = max(int(round(final_t / dt)), 1)
        dt = final_t / steps
        t = 0.0
        for _ in range(steps):
            nxt = CCVariable(U, patch, ghosts=1)
            # refresh all ghosts from the exact solution (single patch)
            u.data[...] = np.where(
                np.isnan(u.data), u.data, u.data
            )
            full = exact_on_region(grid, patch.region.grown(1), t=t)
            # keep interior from the integration, ghosts from BCs
            interior = u.interior.copy()
            u.data[...] = full
            u.interior[...] = interior
            apply_kernel(u, nxt, grid, t=t, dt=dt)
            u = nxt
            t += dt
        exact_final = exact_on_region(grid, patch.region, t=final_t)
        errs[n] = float(np.abs(u.interior - exact_final).max())
    assert errs[24] < errs[12]


def test_kernel_stability_under_stable_dt():
    """Repeated steps at the stable dt stay bounded by phi's range^3."""
    grid, patch, u, _ = prepared_patch(extent=(12, 12, 12))
    dx = grid.spacing[0]
    dt = 0.4 / (2 * NU * 3 / dx**2 + 3 / dx)
    t = 0.0
    for _ in range(20):
        nxt = CCVariable(U, patch, ghosts=1)
        full = exact_on_region(grid, patch.region.grown(1), t=t)
        interior = u.interior.copy()
        u.data[...] = full
        u.interior[...] = interior
        apply_kernel(u, nxt, grid, t=t, dt=dt)
        u = nxt
        t += dt
    assert np.isfinite(u.interior).all()
    assert u.interior.max() <= 1.0 + 1e-6
    assert u.interior.min() >= 0.1**3 - 1e-6
