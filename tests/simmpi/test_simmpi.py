"""Tests for the simulated MPI fabric and communicators."""

import operator

import pytest

from repro.des import Simulator
from repro.simmpi import Fabric, FabricConfig, Comm
from repro.simmpi.request import all_complete, completed_subset


def make_world(num_ranks, **cfg):
    sim = Simulator()
    fabric = Fabric(sim, num_ranks, FabricConfig(**cfg) if cfg else None)
    comms = [Comm(fabric, r) for r in range(num_ranks)]
    return sim, fabric, comms


# -- config ------------------------------------------------------------------

def test_transfer_time_formula():
    cfg = FabricConfig(bandwidth=1e9, latency=1e-6, sw_overhead=5e-6)
    assert cfg.transfer_time(1000) == pytest.approx(6e-6 + 1e-6)


def test_allreduce_time_scales_log2():
    cfg = FabricConfig()
    assert cfg.allreduce_time(1) == 0.0
    t2, t128 = cfg.allreduce_time(2), cfg.allreduce_time(128)
    assert t128 == pytest.approx(7 * t2)


# -- point-to-point -----------------------------------------------------------

def test_send_recv_delivers_payload():
    sim, fabric, (c0, c1) = make_world(2)
    c0.isend(dest=1, tag=7, nbytes=800, payload={"ghost": [1, 2, 3]})
    r = c1.irecv(source=0, tag=7)
    sim.run()
    assert r.complete
    assert r.value == {"ghost": [1, 2, 3]}


def test_message_time_includes_bandwidth_term():
    sim, fabric, (c0, c1) = make_world(2, bandwidth=1e6, latency=0.0, sw_overhead=0.0)
    c0.isend(dest=1, tag=0, nbytes=1_000_000)
    r = c1.irecv(source=0, tag=0)
    sim.run(until=r.event)
    assert sim.now == pytest.approx(1.0)


def test_transfer_starts_only_when_both_posted():
    sim, fabric, (c0, c1) = make_world(2, bandwidth=1e9, latency=1e-6, sw_overhead=0.0)

    def receiver(sim, c1, out):
        yield sim.timeout(5.0)  # late recv post
        r = c1.irecv(source=0, tag=0)
        yield r.event
        out.append(sim.now)

    out = []
    c0.isend(dest=1, tag=0, nbytes=1000)
    sim.process(receiver(sim, c1, out))
    sim.run()
    assert out[0] == pytest.approx(5.0 + 1e-6 + 1000 / 1e9)


def test_eager_send_completes_before_recv_posted():
    sim, fabric, (c0, c1) = make_world(2)
    s = c0.isend(dest=1, tag=0, nbytes=100)  # below eager threshold
    sim.run()
    assert s.complete


def test_rendezvous_send_waits_for_receiver():
    sim, fabric, (c0, c1) = make_world(2)
    s = c0.isend(dest=1, tag=0, nbytes=10_000_000)  # above threshold
    sim.run()
    assert not s.complete
    c1.irecv(source=0, tag=0)
    sim.run()
    assert s.complete


def test_fifo_matching_per_channel():
    sim, fabric, (c0, c1) = make_world(2)
    c0.isend(dest=1, tag=3, nbytes=8, payload="first")
    c0.isend(dest=1, tag=3, nbytes=8, payload="second")
    r1 = c1.irecv(source=0, tag=3)
    r2 = c1.irecv(source=0, tag=3)
    sim.run()
    assert (r1.value, r2.value) == ("first", "second")


def test_tags_demultiplex():
    sim, fabric, (c0, c1) = make_world(2)
    c0.isend(dest=1, tag=1, nbytes=8, payload="one")
    c0.isend(dest=1, tag=2, nbytes=8, payload="two")
    r2 = c1.irecv(source=0, tag=2)
    r1 = c1.irecv(source=0, tag=1)
    sim.run()
    assert r1.value == "one" and r2.value == "two"


def test_self_message_roundtrip():
    sim, fabric, (c0,) = make_world(1)
    c0.isend(dest=0, tag=0, nbytes=64, payload="loop")
    r = c0.irecv(source=0, tag=0)
    sim.run()
    assert r.value == "loop"


def test_self_message_recv_first():
    sim, fabric, (c0,) = make_world(1)
    r = c0.irecv(source=0, tag=0)
    c0.isend(dest=0, tag=0, nbytes=64, payload="loop")
    sim.run()
    assert r.value == "loop"


def test_rank_validation():
    sim, fabric, comms = make_world(2)
    with pytest.raises(ValueError):
        comms[0].isend(dest=5, tag=0, nbytes=1)
    with pytest.raises(ValueError):
        fabric.post_recv(source=-1, dest=0, tag=0)
    with pytest.raises(ValueError):
        comms[0].isend(dest=1, tag=0, nbytes=-1)
    with pytest.raises(ValueError):
        Comm(fabric, 9)
    with pytest.raises(ValueError):
        Fabric(sim, 0)


def test_fabric_accounting():
    sim, fabric, (c0, c1) = make_world(2)
    c0.isend(dest=1, tag=0, nbytes=100)
    c0.isend(dest=1, tag=1, nbytes=200)
    assert fabric.messages_sent == 2
    assert fabric.bytes_sent == 300


def test_request_value_before_completion_is_error():
    sim, fabric, (c0, c1) = make_world(2)
    r = c1.irecv(source=0, tag=0)
    with pytest.raises(RuntimeError):
        _ = r.value


# -- collectives ------------------------------------------------------------------

def test_allreduce_sums_across_ranks():
    sim, fabric, comms = make_world(4)
    reqs = [c.iallreduce(float(c.rank + 1)) for c in comms]
    sim.run()
    assert all(r.value == 10.0 for r in reqs)


def test_allreduce_min_op():
    sim, fabric, comms = make_world(3)
    reqs = [c.iallreduce(float(10 - c.rank), op=min) for c in comms]
    sim.run()
    assert all(r.value == 8.0 for r in reqs)


def test_allreduce_completes_after_last_poster():
    sim, fabric, comms = make_world(2, latency=1e-6, sw_overhead=0.0, bandwidth=1e9)

    def late(sim, comm, out):
        yield sim.timeout(2.0)
        r = comm.iallreduce(1.0)
        yield r.event
        out.append(sim.now)

    out = []
    r0 = comms[0].iallreduce(1.0)
    sim.process(late(sim, comms[1], out))
    sim.run()
    assert r0.complete
    assert out[0] > 2.0


def test_allreduce_single_rank_is_immediate_and_identity():
    sim, fabric, (c0,) = make_world(1)
    r = c0.iallreduce(3.25, op=operator.add)
    sim.run()
    assert r.value == 3.25


def test_allreduce_epochs_keep_rounds_separate():
    sim, fabric, comms = make_world(2)
    first = [c.iallreduce(1.0) for c in comms]
    second = [c.iallreduce(10.0) for c in comms]
    sim.run()
    assert all(r.value == 2.0 for r in first)
    assert all(r.value == 20.0 for r in second)


def test_allreduce_overposting_rejected():
    sim, fabric, comms = make_world(2)
    fabric.post_allreduce(0, epoch=0, value=1.0, op=operator.add)
    fabric.post_allreduce(1, epoch=0, value=1.0, op=operator.add)
    with pytest.raises(RuntimeError):
        fabric.post_allreduce(0, epoch=0, value=1.0, op=operator.add)


def test_barrier_releases_all_at_once():
    sim, fabric, comms = make_world(3)
    times = []

    def proc(sim, comm, delay):
        yield sim.timeout(delay)
        yield comm.ibarrier().event
        times.append(sim.now)

    for comm, delay in zip(comms, (0.0, 1.0, 2.0)):
        sim.process(proc(sim, comm, delay))
    sim.run()
    assert len(set(times)) == 1
    assert times[0] >= 2.0


# -- request helpers ------------------------------------------------------------------

def test_testall_and_testsome():
    sim, fabric, (c0, c1) = make_world(2)
    c0.isend(dest=1, tag=0, nbytes=8, payload="x")
    r_done = c1.irecv(source=0, tag=0)
    r_pending = c1.irecv(source=0, tag=99)
    sim.run()
    assert not all_complete([r_done, r_pending])
    assert completed_subset([r_done, r_pending]) == [r_done]
    assert Comm.testall([r_done])


# -- NIC serialization (link contention model) ---------------------------------------

def test_nic_serialization_serializes_same_source():
    """Two large concurrent transfers from one rank share its NIC."""
    big = 1_000_000
    times = {}
    for serialize in (False, True):
        sim, fabric, comms = make_world(
            3, bandwidth=1e9, latency=0.0, sw_overhead=0.0, serialize_nic=serialize
        )
        comms[0].isend(dest=1, tag=0, nbytes=big)
        comms[0].isend(dest=2, tag=0, nbytes=big)
        r1 = comms[1].irecv(source=0, tag=0)
        r2 = comms[2].irecv(source=0, tag=0)
        sim.run()
        assert r1.complete and r2.complete
        times[serialize] = sim.now
    assert times[False] == pytest.approx(1e-3)       # parallel links
    assert times[True] == pytest.approx(2e-3)        # serialized NIC


def test_nic_serialization_disjoint_pairs_stay_parallel():
    sim, fabric, comms = make_world(
        4, bandwidth=1e9, latency=0.0, sw_overhead=0.0, serialize_nic=True
    )
    comms[0].isend(dest=1, tag=0, nbytes=1_000_000)
    comms[2].isend(dest=3, tag=0, nbytes=1_000_000)
    comms[1].irecv(source=0, tag=0)
    comms[3].irecv(source=2, tag=0)
    sim.run()
    assert sim.now == pytest.approx(1e-3)


def test_nic_serialization_receiver_side_too():
    """Two senders into one receiver serialize through its NIC."""
    sim, fabric, comms = make_world(
        3, bandwidth=1e9, latency=0.0, sw_overhead=0.0, serialize_nic=True
    )
    comms[0].isend(dest=2, tag=0, nbytes=1_000_000)
    comms[1].isend(dest=2, tag=0, nbytes=1_000_000)
    comms[2].irecv(source=0, tag=0)
    comms[2].irecv(source=1, tag=0)
    sim.run()
    assert sim.now == pytest.approx(2e-3)
