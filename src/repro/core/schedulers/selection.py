"""Ready-queue selection strategies.

Which ready CPE-kernel task should the MPE dispatch next?  The paper's
runtime pops in FIFO order; Uintah's Unified scheduler and the Task
Bench AMT comparisons motivate alternatives.  Each strategy is a small
object built once per (graph, rank): it pre-scores the rank's tasks and
hands :meth:`~repro.core.schedulers.base.ReadinessTracker.pop_ready` a
``key`` function (``None`` means plain queue order).  Scoring is
max-wins with FIFO tie-breaking, so FIFO remains the degenerate policy.

Register new policies in :data:`POLICIES`; schedulers resolve names
through :func:`make_policy` and never compare policy strings themselves.
"""

from __future__ import annotations


class SelectionPolicy:
    """Base strategy: pre-scored max-wins selection over ready tasks.

    Subclasses override :meth:`scores` to map each local task to a
    numeric priority, or leave it returning ``None`` for FIFO order.
    ``key_fn`` is what the scheduler passes to ``pop_ready``.
    """

    name = "base"

    def __init__(self, graph, rank: int):
        self._scores = self.scores(graph, rank)
        self.key_fn = None if self._scores is None else self._key

    def scores(self, graph, rank: int) -> dict[int, float] | None:
        """Priority per ``dt_id``; ``None`` selects plain FIFO order."""
        return None

    def _key(self, dt) -> float:
        return self._scores.get(dt.dt_id, 0)


class FifoPolicy(SelectionPolicy):
    """Dispatch in readiness order — the paper's baseline behavior."""

    name = "fifo"


class MaxDependentsPolicy(SelectionPolicy):
    """Prefer the task that unblocks the most same-rank dependents."""

    name = "max_dependents"

    def scores(self, graph, rank):
        return {
            dt.dt_id: len(graph.dependents_of(dt))
            for dt in graph.local_tasks(rank)
        }


class MostMessagesPolicy(SelectionPolicy):
    """Prefer the task whose completion releases the most send bytes."""

    name = "most_messages"

    def scores(self, graph, rank):
        return {
            dt.dt_id: sum(m.nbytes for m in graph.sends_after(dt))
            for dt in graph.local_tasks(rank)
        }


class CriticalPathPolicy(SelectionPolicy):
    """Prefer the task heading the longest same-rank dependency chain.

    The score of a task is the number of tasks on the longest downstream
    path it sits at the head of (itself included), computed by memoized
    DFS over :meth:`~repro.core.taskgraph.TaskGraph.dependents_of`.
    Dispatching chain heads first shortens the step's critical path when
    kernels overlap with MPE work.
    """

    name = "critical_path"

    def scores(self, graph, rank):
        memo: dict[int, int] = {}

        def depth(dt) -> int:
            got = memo.get(dt.dt_id)
            if got is None:
                memo[dt.dt_id] = got = 1 + max(
                    (depth(d) for d in graph.dependents_of(dt)), default=0
                )
            return got

        return {dt.dt_id: depth(dt) for dt in graph.local_tasks(rank)}


POLICIES: dict[str, type[SelectionPolicy]] = {
    cls.name: cls
    for cls in (FifoPolicy, MaxDependentsPolicy, MostMessagesPolicy, CriticalPathPolicy)
}


def make_policy(name: str, graph, rank: int) -> SelectionPolicy:
    """Resolve a policy name to a constructed strategy for one rank."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown select_policy {name!r} (choose from {sorted(POLICIES)})") from None
    return cls(graph, rank)
