"""Machine-noise model: the instabilities the paper measured around.

Sec. VII-A: "To mitigate the instabilities in the machine, each case is
repeated multiple times and the best result is selected."  The DES is
deterministic, so by default there is nothing to mitigate; this module
makes the paper's protocol meaningful on demand by perturbing charged
durations with seeded, reproducible multiplicative noise (lognormal-ish
via a clipped normal), letting the harness run genuine best-of-N repeats.

Noise is OFF (all coefficients zero) in the calibrated evaluation.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class NoiseModel:
    """Multiplicative duration noise, per component.

    ``*_cv`` are coefficients of variation (std/mean); factors are
    clipped to [1, 1 + 5*cv] — machine interference only ever *slows*
    work down, which is also why best-of-N converges to the quiet-machine
    time the calibration models.
    """

    seed: int = 0
    kernel_cv: float = 0.0
    mpe_cv: float = 0.0

    def for_rank(self, rank: int) -> "RankNoise":
        """A per-rank stream (distinct but reproducible per rank)."""
        return RankNoise(self, rank)


class RankNoise:
    """One rank's noise stream."""

    def __init__(self, model: NoiseModel, rank: int):
        self.model = model
        self._rng = np.random.default_rng((model.seed, rank))

    def _factor(self, cv: float) -> float:
        if cv <= 0:
            return 1.0
        draw = abs(self._rng.normal(0.0, cv))
        return 1.0 + min(draw, 5.0 * cv)

    def kernel(self, duration: float) -> float:
        """Perturb a CPE kernel duration."""
        return duration * self._factor(self.model.kernel_cv)

    def mpe(self, duration: float) -> float:
        """Perturb an MPE work duration."""
        return duration * self._factor(self.model.mpe_cv)


#: The quiet machine: what the calibrated evaluation uses.
NO_NOISE = NoiseModel()
