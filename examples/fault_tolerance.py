#!/usr/bin/env python
"""Survive injected hardware faults — including losing a whole core-group.

The fault injector (:mod:`repro.faults`) deals deterministic, seeded
faults to the simulated machine: kernels hang or die with DMA errors on
the CPE cluster, messages are dropped, duplicated or delayed on the
interconnect, and one rank is killed outright mid-run.  The resilience
machinery recovers all of it — watchdog + re-offload + MPE fallback for
kernels, retransmission with exponential backoff for messages, and
checkpoint/restart on the surviving layout for the dead rank — and the
final physics still matches a fault-free run to the last bit.

Usage::

    python examples/fault_tolerance.py [seed]
"""

import sys

import numpy as np

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.faults import FaultConfig, ResiliencePolicy
from repro.faults.recovery import ResilientRunner


def collect(dws):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in dws
        for v in dw.grid_variables()
    }


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 1))
    problem = BurgersProblem(grid)
    dt = problem.stable_dt()
    nsteps, cgs = 12, 4

    # fault-free reference
    reference = SimulationController(
        grid, problem.tasks(), problem.init_tasks(), num_ranks=cgs, real=True
    ).run(nsteps=nsteps, dt=dt)

    # the same 12 steps under heavy weather: CPE faults, lossy network,
    # and rank 2 dies at the start of timestep 8
    config = FaultConfig(
        seed=seed,
        kernel_slowdown_prob=0.10,
        kernel_stuck_prob=0.05,
        dma_error_prob=0.05,
        msg_drop_prob=0.05,
        msg_dup_prob=0.03,
        msg_delay_prob=0.05,
        fail_rank=2,
        fail_at_step=8,
    )
    runner = ResilientRunner(
        BurgersProblem,
        grid,
        nsteps=nsteps,
        dt=dt,
        num_ranks=cgs,
        config=config,
        policy=ResiliencePolicy(checkpoint_every=5),
    )
    report = runner.run()
    report.fault_free_time = reference.total_time
    print(report.render())

    ref, got = collect(reference.final_dws), collect(runner.final_dws)
    identical = all(np.array_equal(got[p], ref[p]) for p in ref)
    print(
        f"recovered on {report.num_ranks_end} of {cgs} CGs; physics "
        f"{'bit-identical' if identical else 'MISMATCH'} vs fault-free run"
    )
    assert identical
    assert report.rank_failures == 1 and report.recoveries == 1


if __name__ == "__main__":
    main()
