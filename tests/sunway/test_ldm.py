"""Tests for the 64 KB LDM allocator, including hypothesis invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.sunway.ldm import LDM, LDMAllocationError


def test_capacity_defaults_to_64k():
    assert LDM().capacity == 65536


def test_alloc_and_free_accounting():
    ldm = LDM(1000)
    ldm.alloc("a", 400)
    assert ldm.used == 400 and ldm.free == 600
    ldm.alloc("b", 600)
    assert ldm.used == 1000 and ldm.free == 0
    ldm.release("a")
    assert ldm.used == 600


def test_overflow_raises():
    ldm = LDM(100)
    ldm.alloc("a", 60)
    with pytest.raises(LDMAllocationError, match="overflow"):
        ldm.alloc("b", 41)
    # exact fit is fine
    ldm.alloc("b", 40)


def test_duplicate_name_rejected():
    ldm = LDM(100)
    ldm.alloc("buf", 10)
    with pytest.raises(ValueError):
        ldm.alloc("buf", 10)


def test_nonpositive_sizes_rejected():
    ldm = LDM(100)
    with pytest.raises(ValueError):
        ldm.alloc("z", 0)
    with pytest.raises(ValueError):
        ldm.alloc("z", -5)
    with pytest.raises(ValueError):
        LDM(0)


def test_release_unknown_name():
    ldm = LDM(100)
    with pytest.raises(KeyError):
        ldm.release("ghost")


def test_alloc_array_f64():
    ldm = LDM(64 * 1024)
    blk = ldm.alloc_array("tile", (16, 16, 8))
    assert blk.nbytes == 16 * 16 * 8 * 8
    with pytest.raises(ValueError):
        ldm.alloc_array("bad", (4, 0, 2))


def test_burgers_tile_working_set_fits_as_in_paper():
    """Sec. VI-A: a 16x16x8 tile with u (ghosted) and u_new is ~41.3 KB."""
    ldm = LDM()
    ldm.alloc_array("u", (18, 18, 10))  # one ghost layer
    ldm.alloc_array("u_new", (16, 16, 8))
    assert ldm.used == (18 * 18 * 10 + 16 * 16 * 8) * 8
    assert ldm.used / 1024 == pytest.approx(41.3, abs=0.2)
    assert ldm.free > 0


def test_high_water_mark_persists_through_reset():
    ldm = LDM(1000)
    ldm.alloc("a", 700)
    ldm.reset()
    assert ldm.used == 0
    assert ldm.high_water == 700


def test_fits_probe():
    ldm = LDM(100)
    ldm.alloc("a", 90)
    assert ldm.fits(10)
    assert not ldm.fits(11)


def test_blocks_listing_ordered_by_offset():
    ldm = LDM(1000)
    ldm.alloc("x", 100)
    ldm.alloc("y", 200)
    names = [b.name for b in ldm.blocks()]
    assert names == ["x", "y"]
    assert ldm.blocks()[1].offset == 100


@given(st.lists(st.integers(min_value=1, max_value=8000), max_size=30))
def test_property_never_overcommits(sizes):
    """Invariant: used <= capacity always; overflow raises, never corrupts."""
    ldm = LDM(64 * 1024)
    for i, size in enumerate(sizes):
        try:
            ldm.alloc(f"b{i}", size)
        except LDMAllocationError:
            assert ldm.used + size > ldm.capacity
        assert 0 <= ldm.used <= ldm.capacity
        assert ldm.used + ldm.free == ldm.capacity


@given(
    st.lists(
        st.tuples(st.sampled_from(["alloc", "release"]), st.integers(0, 9), st.integers(1, 9000)),
        max_size=60,
    )
)
def test_property_alloc_release_conservation(ops):
    """Interleaved alloc/release keeps exact byte accounting."""
    ldm = LDM(64 * 1024)
    live: dict[str, int] = {}
    for op, slot, size in ops:
        name = f"s{slot}"
        if op == "alloc" and name not in live:
            try:
                ldm.alloc(name, size)
                live[name] = size
            except LDMAllocationError:
                pass
        elif op == "release" and name in live:
            ldm.release(name)
            del live[name]
        assert ldm.used == sum(live.values())
