"""Tests for the DMA cost model and the fast/IEEE exponential libraries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sunway.dma import DMAEngine, DMATransfer
from repro.sunway import fastmath


# -- DMA ---------------------------------------------------------------------

def test_transfer_time_is_latency_plus_bandwidth():
    eng = DMAEngine(bandwidth=1e9, startup=1e-6, chunk_penalty=0.0)
    assert eng.get_time(1000) == pytest.approx(1e-6 + 1000 / 1e9)
    assert eng.put_time(0) == pytest.approx(1e-6)


def test_chunked_transfer_pays_per_chunk_penalty():
    eng = DMAEngine(bandwidth=1e9, startup=1e-6, chunk_penalty=0.5)
    packed = eng.get_time(10_000, chunks=1)
    strided = eng.get_time(10_000, chunks=101)
    assert strided == pytest.approx(packed + 100 * 0.5e-6)
    assert strided > packed


def test_transfer_validation():
    with pytest.raises(ValueError):
        DMATransfer("sideways", 10)
    with pytest.raises(ValueError):
        DMATransfer("get", -1)
    with pytest.raises(ValueError):
        DMATransfer("get", 10, contiguous_chunks=0)
    with pytest.raises(ValueError):
        DMAEngine(bandwidth=0)
    with pytest.raises(ValueError):
        DMAEngine(startup=-1e-9)


def test_sync_tile_cycle_is_serial():
    eng = DMAEngine(bandwidth=1e9, startup=0.0, chunk_penalty=0.0)
    t = eng.tile_cycle_time(get_bytes=1000, put_bytes=500, compute_time=3e-6)
    assert t == pytest.approx(1e-6 + 3e-6 + 0.5e-6)


def test_async_dma_tile_cycle_hides_dominated_phase():
    """The paper's future-work double buffering: cycle = max(compute, dma)."""
    eng = DMAEngine(bandwidth=1e9, startup=0.0, chunk_penalty=0.0)
    compute_bound = eng.tile_cycle_time(1000, 500, compute_time=5e-6, async_dma=True)
    assert compute_bound == pytest.approx(5e-6)
    dma_bound = eng.tile_cycle_time(10_000, 5_000, compute_time=5e-6, async_dma=True)
    assert dma_bound == pytest.approx(15e-6)
    # async never slower than sync
    assert compute_bound <= eng.tile_cycle_time(1000, 500, compute_time=5e-6)


@given(
    st.integers(0, 10**7),
    st.integers(0, 10**7),
    st.floats(0, 1e-2, allow_nan=False),
)
def test_property_async_dma_never_slower(get_b, put_b, compute):
    eng = DMAEngine()
    sync = eng.tile_cycle_time(get_b, put_b, compute)
    asyn = eng.tile_cycle_time(get_b, put_b, compute, async_dma=True)
    assert asyn <= sync + 1e-15


# -- fastmath -------------------------------------------------------------------

def test_ieee_exp_is_libm():
    x = np.linspace(-5, 5, 100)
    assert np.array_equal(fastmath.ieee_exp(x), np.exp(x))


def test_fast_exp_accuracy_bounded():
    """Fast library: inaccurate but bounded — 'does not greatly impact'."""
    x = np.linspace(-50, 50, 20001)
    rel = np.abs(fastmath.fast_exp(x) - np.exp(x)) / np.exp(x)
    assert rel.max() < 1e-4
    assert rel.max() > 1e-9  # genuinely non-conforming


def test_fast_exp_scalar_roundtrip():
    y = fastmath.fast_exp(1.0)
    assert isinstance(y, float)
    assert y == pytest.approx(np.e, rel=1e-4)


def test_fast_exp_saturates_like_libm():
    assert fastmath.fast_exp(1e4) == np.inf
    assert fastmath.fast_exp(-1e4) == 0.0


def test_fast_exp_zero_is_near_one():
    assert fastmath.fast_exp(0.0) == pytest.approx(1.0, rel=1e-12)


@given(st.floats(min_value=-600, max_value=600, allow_nan=False))
def test_property_fast_exp_relative_error(x):
    exact = np.exp(x)
    if exact == 0 or np.isinf(exact):
        return
    rel = abs(fastmath.fast_exp(x) - exact) / exact
    assert rel < 1e-4


@given(st.floats(-300, 300), st.floats(-300, 300))
def test_property_fast_exp_monotone(a, b):
    """Monotonicity survives the approximation (needed for stable phi)."""
    lo, hi = sorted((a, b))
    assert fastmath.fast_exp(lo) <= fastmath.fast_exp(hi) * (1 + 1e-12)


def test_exp_function_selector():
    assert fastmath.exp_function(True) is fastmath.fast_exp
    assert fastmath.exp_function(False) is fastmath.ieee_exp
    assert fastmath.exp_flops(True) == fastmath.FAST_EXP_FLOPS
    assert fastmath.exp_flops(False) == fastmath.IEEE_EXP_FLOPS


def test_exp_flop_costs_match_paper_share():
    """~215 of ~311 flops/cell come from 6 exponentials => ~36 each."""
    assert 6 * fastmath.FAST_EXP_FLOPS == 216
    assert fastmath.IEEE_EXP_FLOPS > fastmath.FAST_EXP_FLOPS
