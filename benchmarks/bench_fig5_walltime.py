"""Figure 5: wall time per step, strong-scaling all problems x variants.

Paper shape: every curve falls with CG count (good strong scalability on
all problem sizes, both schedulers), vectorized variants roughly halve
the compute, async at or below sync.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.figures import fig5, fig5_data
from repro.harness.problems import PROBLEMS
from repro.harness.variants import ACCELERATED


@pytest.mark.benchmark(group="fig5")
def test_fig5_strong_scaling_walltime(benchmark, publish):
    data = run_once(benchmark, fig5_data)
    publish("fig5", fig5())

    for p in PROBLEMS:
        for vname in ACCELERATED:
            series = data[p.name][vname]
            cgs = sorted(series)
            times = [series[c] for c in cgs]
            # monotone decrease: more CGs never slower
            assert all(t1 > t2 for t1, t2 in zip(times, times[1:])), (p.name, vname)
        # async never slower than sync at any point
        for c in sorted(data[p.name]["acc.sync"]):
            assert data[p.name]["acc.async"][c] <= data[p.name]["acc.sync"][c] * 1.001
            assert (
                data[p.name]["acc_simd.async"][c]
                <= data[p.name]["acc_simd.sync"][c] * 1.001
            )
        # vectorization helps everywhere
        for c in sorted(data[p.name]["acc.async"]):
            assert data[p.name]["acc_simd.async"][c] < data[p.name]["acc.async"][c]
