"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "Table III" in out and "Table IV" in out


def test_table_1(capsys):
    assert main(["table", "1"]) == 0
    assert "FLOP per cell" in capsys.readouterr().out


def test_table_unknown(capsys):
    assert main(["table", "42"]) == 2
    assert "no table" in capsys.readouterr().err


def test_fig_unknown(capsys):
    assert main(["fig", "11"]) == 2
    assert "no figure" in capsys.readouterr().err


def test_run_case(capsys):
    code = main(
        ["run", "--problem", "16x16x512", "--variant", "acc.async",
         "--cgs", "4", "--nsteps", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "time/step" in out and "Gflop/s" in out


def test_run_with_select_policy(capsys):
    code = main(
        ["run", "--problem", "16x16x512", "--variant", "acc.async",
         "--cgs", "4", "--nsteps", "2", "--select-policy", "critical_path"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "critical_path" in out and "time/step" in out


def test_run_rejects_unknown_select_policy():
    with pytest.raises(SystemExit):
        main(["run", "--problem", "16x16x512", "--select-policy", "fastest_first"])


def test_run_rejects_unknown_problem():
    with pytest.raises(SystemExit):
        main(["run", "--problem", "9x9x9"])


def test_sweep(capsys):
    assert main(["sweep", "--problem", "16x16x512", "--variant", "acc.async",
                 "--nsteps", "1"]) == 0
    out = capsys.readouterr().out
    assert "Strong scaling" in out
    assert "128" in out


def test_resilience(capsys):
    code = main(
        ["--seed", "7", "resilience", "--nsteps", "6", "--extent", "12",
         "--cgs", "2", "--fail-rank", "1", "--fail-step", "4",
         "--checkpoint-every", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Resilience report" in out
    assert "recoveries from checkpoint" in out
    assert "bit-identical" in out


def test_resilience_without_rank_failure(capsys):
    code = main(
        ["resilience", "--nsteps", "4", "--extent", "12", "--cgs", "2",
         "--fail-rank", "-1", "--stuck", "0.2", "--drop", "0.2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out


def test_missing_command():
    with pytest.raises(SystemExit):
        main([])


def test_report_to_file(tmp_path, capsys):
    out = tmp_path / "report.txt"
    assert main(["report", "--nsteps", "1", "--output", str(out)]) == 0
    text = out.read_text()
    for title in ("Table I", "Table V", "Fig. 9", "Fig. 10"):
        assert title in text
    err = capsys.readouterr().err
    assert "generating" in err


def test_profile(capsys):
    code = main(
        ["profile", "--problem", "16x16x512", "--variant", "acc.async",
         "--cgs", "2", "--nsteps", "2", "--top", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Per-rank time accounting" in out
    assert "Run ledger" in out
    assert "critical path" in out.lower()
    assert "Top 3 activities" in out


def test_trace_writes_perfetto_json(tmp_path, capsys):
    import json

    target = tmp_path / "trace.json"
    code = main(
        ["trace", "--problem", "16x16x512", "--cgs", "2", "--nsteps", "2",
         "--output", str(target)]
    )
    assert code == 0
    events = json.loads(target.read_text())["traceEvents"]
    assert any(e.get("name") == "process_name" for e in events)
    out = capsys.readouterr().out
    assert "ui.perfetto.dev" in out


def test_run_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        main(["run", "--problem", "16x16x512", "--variant", "gpu.turbo"])


def test_run_rejects_blocked_telemetry_out(tmp_path, capsys):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied\n")
    code = main(
        ["run", "--problem", "16x16x512", "--cgs", "2", "--nsteps", "1",
         "--telemetry-out", str(blocker / "telemetry")]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "not-a-dir" in err and "not a directory" in err


def test_profile_rejects_blocked_telemetry_out(tmp_path, capsys):
    blocker = tmp_path / "file.txt"
    blocker.write_text("occupied\n")
    code = main(
        ["profile", "--problem", "16x16x512", "--cgs", "2", "--nsteps", "1",
         "--telemetry-out", str(blocker)]
    )
    assert code == 2
    assert "file.txt" in capsys.readouterr().err


def test_verify_rejects_unknown_mode():
    with pytest.raises(SystemExit):
        main(["verify", "--modes", "warp_drive"])


def test_verify_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["verify", "--policies", "fastest_first"])


def test_verify_rejects_conflicting_depth_flags(capsys):
    assert main(["verify", "--quick", "--full"]) == 2
    err = capsys.readouterr().err
    assert "--quick" in err and "--full" in err


def test_verify_rejects_malformed_extent(capsys):
    assert main(["verify", "--quick", "--extent", "8x8"]) == 2
    assert "8x8" in capsys.readouterr().err


def test_verify_rejects_blocked_out_dir(tmp_path, capsys):
    blocker = tmp_path / "report"
    blocker.write_text("occupied\n")
    assert main(["verify", "--quick", "--out", str(blocker)]) == 2
    assert "report" in capsys.readouterr().err


def test_run_telemetry_out(tmp_path, capsys):
    outdir = tmp_path / "telemetry"
    code = main(
        ["run", "--problem", "16x16x512", "--variant", "acc.async",
         "--cgs", "2", "--nsteps", "2", "--telemetry-out", str(outdir)]
    )
    assert code == 0
    for name in ("ledger.jsonl", "metrics.json", "trace.json"):
        assert (outdir / name).exists(), name
    out = capsys.readouterr().out
    assert "GFLOP/step (counted)" in out and "exp flop share" in out
