"""Shared fixtures for the verification-subsystem tests.

The mutation self-tests all start from the same clean recorded run: a
2-rank async Burgers problem with an :class:`EventRecorder` on rank 0's
lifecycle bus.  Recording once per session keeps the suite fast; every
test mutates its own copy of the stream.
"""

import dataclasses

import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.verify import EventRecorder


@dataclasses.dataclass
class RecordedRun:
    """A clean rank-0 event stream plus what replay needs to check it."""

    events: list
    graph: object
    costs: object

    def copy_events(self):
        return list(self.events)


@pytest.fixture(scope="session")
def recorded_run() -> RecordedRun:
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 1))
    problem = BurgersProblem(grid)
    ctl = SimulationController(
        grid,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=2,
        mode="async",
        real=True,
    )
    recorder = EventRecorder()
    sched = ctl.schedulers[0]
    sched.lifecycle.subscribe(recorder)
    ctl.run(nsteps=2, dt=problem.stable_dt())
    assert recorder.events, "recorder saw no events"
    return RecordedRun(events=recorder.events, graph=sched.graph, costs=sched.costs)
