"""Contended-capacity primitives built on the event kernel.

Two primitives cover everything the Sunway model needs:

* :class:`Resource` — N interchangeable slots (e.g. the CPE cluster viewed
  as one offload engine, or a DMA channel).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (e.g. a rank's incoming-message queue in the simulated MPI fabric).
"""

from __future__ import annotations

import collections
import typing as _t

from repro.des.event import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator


class Request(Event):
    """Event representing a pending slot acquisition on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource

    def release(self) -> None:
        """Give the slot back (only valid once the request has fired)."""
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots, granted in FIFO order.

    Usage from a process::

        req = resource.request()
        yield req
        ...  # hold the slot
        req.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._holders: set[Request] = set()
        self._waiting: collections.deque[Request] = collections.deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously-granted slot."""
        if req not in self._holders:
            raise RuntimeError(f"{req!r} does not hold a slot on {self.name!r}")
        self._holders.remove(req)
        if self._waiting:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed(nxt)


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the
    oldest item, immediately if one is available.
    """

    def __init__(self, sim: "Simulator", name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event firing with the oldest item (possibly already available)."""
        ev = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> object | None:
        """Non-blocking get: the oldest item or ``None`` if empty."""
        return self._items.popleft() if self._items else None
