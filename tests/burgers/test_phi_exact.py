"""Tests for phi (stable evaluation) and the exact solution."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.burgers.phi import phi, phi_naive, phi_range
from repro.burgers.exact import exact_solution, exact_on_region, solution_errors
from repro.core.grid import Grid
from repro.core.patch import Region
from repro.sunway.fastmath import fast_exp


# -- phi -----------------------------------------------------------------------

def test_phi_matches_naive_where_naive_is_finite():
    """Near the fronts the textbook form is finite; they must agree."""
    x = np.linspace(0.3, 0.7, 401)
    stable = phi(x, t=0.01)
    naive = phi_naive(x, t=0.01)
    assert np.allclose(stable, naive, rtol=1e-12)


def test_phi_stable_where_naive_overflows():
    """Far from the fronts the naive form overflows; stable must not."""
    with np.errstate(over="ignore", invalid="ignore"):
        naive = phi_naive(np.array([-20.0, -50.0]), t=0.0)
    assert not np.all(np.isfinite(naive))
    stable = phi(np.array([-20.0, -50.0]), t=0.0)
    assert np.all(np.isfinite(stable))


def test_phi_bounds():
    """phi is a convex combination of 0.1, 0.5 and 1.0."""
    lo, hi = phi_range()
    x = np.linspace(-10, 10, 5001)
    for t in (0.0, 0.05, 0.5):
        vals = phi(x, t)
        assert vals.min() >= lo - 1e-12
        assert vals.max() <= hi + 1e-12


def test_phi_limits():
    """x -> -inf selects e^a (value 0.1 coefficient... the largest exponent
    depends on slope); check the asymptotic plateaus are members of
    {0.1, 0.5, 1.0}."""
    left = float(phi(-100.0, 0.0))
    right = float(phi(100.0, 0.0))
    assert min(abs(left - v) for v in (0.1, 0.5, 1.0)) < 1e-9
    assert min(abs(right - v) for v in (0.1, 0.5, 1.0)) < 1e-9
    assert left != right  # a travelling front exists


def test_phi_scalar_and_array_agree():
    xs = np.array([0.2, 0.5, 0.8])
    vec = phi(xs, 0.01)
    for i, x in enumerate(xs):
        assert float(phi(float(x), 0.01)) == vec[i]


def test_phi_with_fast_exp_close_to_ieee():
    """Sec. VI-C: fast library's inaccuracy 'does not greatly impact'."""
    x = np.linspace(-2, 2, 1001)
    a = phi(x, 0.01)
    b = phi(x, 0.01, exp=fast_exp)
    assert np.allclose(a, b, rtol=2e-4)
    assert not np.array_equal(a, b)  # genuinely different library


@given(st.floats(-50, 50), st.floats(0, 1))
def test_property_phi_bounded(x, t):
    v = float(phi(x, t))
    assert 0.1 - 1e-12 <= v <= 1.0 + 1e-12


def test_phi_monotone_decreasing_in_x():
    """All three exponents have negative x-slope ordering that makes phi a
    travelling wave decreasing from 1.0 to 0.1."""
    x = np.linspace(-3, 3, 2001)
    vals = phi(x, 0.0)
    assert np.all(np.diff(vals) <= 1e-12)


# -- exact solution -----------------------------------------------------------------

def test_exact_is_product_of_phis():
    assert float(exact_solution(0.3, 0.4, 0.5, 0.1)) == pytest.approx(
        float(phi(0.3, 0.1)) * float(phi(0.4, 0.1)) * float(phi(0.5, 0.1))
    )


def test_exact_on_region_matches_pointwise():
    grid = Grid(extent=(8, 8, 8))
    region = Region((1, 2, 3), (4, 6, 7))
    block = exact_on_region(grid, region, t=0.02)
    assert block.shape == region.extent
    for cell in region.cells():
        x, y, z = grid.cell_center(cell)
        i = tuple(c - l for c, l in zip(cell, region.low))
        assert block[i] == pytest.approx(float(exact_solution(x, y, z, 0.02)), rel=1e-14)


def test_exact_on_region_accepts_ghost_regions():
    grid = Grid(extent=(8, 8, 8))
    region = Region((-1, -1, -1), (0, 0, 0))  # entirely outside the domain
    block = exact_on_region(grid, region)
    assert block.shape == (1, 1, 1)
    assert np.isfinite(block).all()


def test_exact_on_region_fortran_order():
    grid = Grid(extent=(8, 8, 8))
    block = exact_on_region(grid, Region((0, 0, 0), (4, 4, 4)))
    assert block.flags.f_contiguous


# -- solution_errors ------------------------------------------------------------------

def test_solution_errors_zero_for_exact_field():
    from repro.core.datawarehouse import DataWarehouse
    from repro.core.varlabel import VarLabel

    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    u = VarLabel("u")
    dw = DataWarehouse(0)
    for p in grid.patches():
        var = dw.allocate_and_put(u, p, ghosts=1)
        var.interior[...] = exact_on_region(grid, p.region, t=0.3)
    errs = solution_errors(grid, [dw], u, t=0.3)
    assert errs["linf"] == 0.0 and errs["l2"] == 0.0


def test_solution_errors_requires_matching_label():
    from repro.core.datawarehouse import DataWarehouse
    from repro.core.varlabel import VarLabel

    grid = Grid(extent=(8, 8, 8))
    with pytest.raises(ValueError, match="no patches"):
        solution_errors(grid, [DataWarehouse(0)], VarLabel("u"), t=0.0)
