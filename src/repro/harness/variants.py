"""The experimental variants (paper Table IV).

=================  =====================  ======  =============
Variant            Scheduler Mode         Tiling  Vectorization
=================  =====================  ======  =============
host.sync          MPE-only               No      No
acc.sync           synchronous MPE+CPE    Yes     No
acc_simd.sync      synchronous MPE+CPE    Yes     Yes
acc.async          asynchronous MPE+CPE   Yes     No
acc_simd.async     asynchronous MPE+CPE   Yes     Yes
=================  =====================  ======  =============
"""

from __future__ import annotations

import dataclasses

from repro.core.costs import SunwayCostModel
from repro.harness import calibration


@dataclasses.dataclass(frozen=True)
class Variant:
    """One experimental configuration."""

    name: str
    mode: str  # scheduler mode: "mpe_only" | "sync" | "async"
    tiling: bool
    simd: bool
    #: Future-work extensions (paper Sec. IX), off in the paper's runs.
    async_dma: bool = False
    cpe_groups: int = 1
    #: Ready-queue ordering (see :mod:`repro.core.schedulers.selection`);
    #: the paper's runs use plain queue order.
    select_policy: str = "fifo"

    @property
    def scheduler_label(self) -> str:
        """Table IV's "Scheduler Mode" column text."""
        return {
            "mpe_only": "MPE-only",
            "sync": "synchronous MPE+CPE",
            "async": "asynchronous MPE+CPE",
        }[self.mode]

    def cost_model(self) -> SunwayCostModel:
        """The calibrated cost model for this variant."""
        return calibration.cost_model(
            simd=self.simd,
            async_dma=self.async_dma,
            cpe_groups=self.cpe_groups,
        )


#: Table IV, by name.
VARIANTS: dict[str, Variant] = {
    v.name: v
    for v in (
        Variant("host.sync", mode="mpe_only", tiling=False, simd=False),
        Variant("acc.sync", mode="sync", tiling=True, simd=False),
        Variant("acc_simd.sync", mode="sync", tiling=True, simd=True),
        Variant("acc.async", mode="async", tiling=True, simd=False),
        Variant("acc_simd.async", mode="async", tiling=True, simd=True),
    )
}

#: The four accelerated variants of the strong-scaling study (Fig. 5).
ACCELERATED = ("acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async")


def variant_by_name(name: str) -> Variant:
    """Look up a Table IV variant."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown variant {name!r}; have {sorted(VARIANTS)}") from None
