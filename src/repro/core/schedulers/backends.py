"""Executor backends: where and how a rank's compute kernels run.

The scheduler loop is backend-agnostic; everything Sunway-mode-specific
lives behind :class:`ExecutorBackend`:

* :class:`CPEBackend` — offload kernels to CPE groups through the
  :class:`~repro.core.schedulers.offload.OffloadEngine`; non-blocking
  (the paper's ``async`` mode, MPE work overlaps the kernel) or blocking
  (``sync`` mode, the MPE spins on the completion flag);
* :class:`MPEBackend` — run kernels on the management core itself
  (``mpe_only`` mode);
* :class:`HostThreadPoolBackend` — a pool of simulated host worker
  threads draining one shared run queue, modelling Uintah's Unified
  Scheduler for :class:`~repro.core.schedulers.unified.
  UnifiedHostScheduler`.

No ``mode`` string crosses this boundary: schedulers resolve the mode to
a backend object once, at construction.
"""

from __future__ import annotations

import typing as _t

from repro.core.schedulers.lifecycle import TaskState
from repro.des.resources import Store


class ExecutorBackend(_t.Protocol):
    """What the scheduler loop needs from a kernel execution strategy."""

    #: Whether offloaded kernels overlap further MPE work (enables the
    #: idle-MPE prefetch of the next kernel's MPE part).
    overlaps: bool

    def num_groups(self, athread) -> int:
        """Concurrent offload slots this backend drives."""
        ...

    def run_kernels(self, sched, st, comm, offload) -> _t.Generator:
        """Dispatch ready kernels; yields sim events, returns progress."""
        ...


class CPEBackend:
    """Offload kernels to the CPE cluster (paper modes async / sync)."""

    def __init__(self, blocking: bool = False):
        self.blocking = blocking
        self.overlaps = not blocking

    def num_groups(self, athread) -> int:
        # One offload slot per CPE group; the paper's configuration has a
        # single group (whole-cluster offload).  The CPE-grouping
        # extension (Sec. IX future work) runs several patches at once.
        # Spinning leaves no concurrency to exploit: one slot.
        return 1 if self.blocking else athread.num_groups

    def run_kernels(self, sched, st, comm, offload) -> _t.Generator:
        """Offload ready kernels onto free CPE groups (steps 3b i-iv)."""
        progressed = False
        for g in range(offload.num_groups):
            if g in offload.inflight:
                continue
            nxt = st.tracker.pop_ready(offload.is_offloadable, key=sched.select.key_fn)
            if nxt is None:
                break
            sched.lifecycle.transition(nxt, TaskState.DISPATCHED, backend="cpe")
            yield from sched._mpe("task-select", sched.costs.sched.task_select)
            if nxt.dt_id not in st.prepared:
                yield from sched.run_mpe_part(st, nxt)
            offload.launch(nxt, g)
            progressed = True
            if self.blocking:
                yield from offload.spin_to_completion(g)
                break
        return progressed


class MPEBackend:
    """Run kernels on the management core itself (paper mode mpe_only)."""

    overlaps = False

    def num_groups(self, athread) -> int:
        return 1

    def run_kernels(self, sched, st, comm, offload) -> _t.Generator:
        nxt = st.tracker.pop_ready(offload.is_offloadable, key=sched.select.key_fn)
        if nxt is None:
            return False
        sched.lifecycle.transition(nxt, TaskState.DISPATCHED, backend="mpe")
        yield from sched._mpe("task-select", sched.costs.sched.task_select)
        if nxt.dt_id not in st.prepared:
            yield from sched.run_mpe_part(st, nxt)
        sched.lifecycle.transition(nxt, TaskState.RUNNING, backend="mpe")
        action = sched.kernel_action(st, nxt)
        if action is not None:
            action()
        yield from sched._mpe(
            f"mpe-kernel:{nxt.name}", sched.costs.mpe_kernel_time(nxt.task, nxt.patch)
        )
        # mpe_only counts flops per execution (no offload retry dedup)
        sched.lifecycle.emit("flops", nxt, n=sched.costs.kernel_flops(nxt.task, nxt.patch))
        sched.finish_task(st, comm, nxt)
        return True


class HostThreadPoolBackend:
    """Uintah-Unified-style pool of host worker threads (no offload).

    ``num_threads`` host cores drain one shared run queue of tasks *and*
    communication units.  On SW26010 that is 1 (the MPE); Uintah's
    production machines give it 16-64.  The per-step machinery lives in
    :class:`WorkerPool`, built fresh by :meth:`start_step`.
    """

    overlaps = False

    def __init__(self, num_threads: int = 1):
        if num_threads < 1:
            raise ValueError(f"need >= 1 worker thread, got {num_threads}")
        self.num_threads = num_threads

    def num_groups(self, athread) -> int:
        return self.num_threads

    def start_step(self, sim, rank: int) -> "WorkerPool":
        return WorkerPool(sim, rank, self.num_threads)


class WorkerPool:
    """One timestep's run queue, worker processes, and completion event."""

    def __init__(self, sim, rank: int, num_threads: int):
        self.sim = sim
        self.rank = rank
        self.num_threads = num_threads
        self.runq: Store = Store(sim, name=f"unified-runq-r{rank}")
        self.outstanding = 0
        self.done_event = sim.event(name=f"unified-step-done-r{rank}")
        self.failure: list[BaseException] = []
        self.workers: list = []

    def push(self, unit) -> None:
        self.outstanding += 1
        self.runq.put(unit)

    def maybe_finish(self, drained: bool) -> None:
        """Trigger step completion once nothing remains anywhere."""
        if drained and self.outstanding == 0 and not self.done_event.triggered:
            self.done_event.succeed()

    def spawn_workers(self, handle_unit, is_drained) -> None:
        """Start the worker processes; each drains units until sentinel.

        ``handle_unit(tid, unit)`` is the scheduler-provided generator
        executing one unit; ``is_drained()`` reports whether all tasks
        retired (completion is declared when it holds with zero
        outstanding units).
        """

        def worker(tid: int):
            while True:
                unit = yield self.runq.get()
                if unit is None:  # shutdown sentinel
                    return
                try:
                    yield from handle_unit(tid, unit)
                except BaseException as exc:  # surface through the coordinator
                    self.failure.append(exc)
                    if not self.done_event.triggered:
                        self.done_event.succeed()
                    return
                self.outstanding -= 1
                self.maybe_finish(is_drained())

        self.workers = [
            self.sim.process(worker(t), name=f"unified-w{t}-r{self.rank}")
            for t in range(self.num_threads)
        ]

    def shutdown(self) -> None:
        for _ in self.workers:
            self.runq.put(None)
