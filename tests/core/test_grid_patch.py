"""Tests for grid, patches, regions and neighbour topology."""

import pytest
from hypothesis import given, strategies as st

from repro.core.grid import Grid
from repro.core.patch import Region, FACES


# -- Region -------------------------------------------------------------------

def test_region_extent_and_cells():
    r = Region((0, 0, 0), (4, 5, 6))
    assert r.extent == (4, 5, 6)
    assert r.num_cells == 120
    assert not r.empty


def test_region_inverted_rejected():
    with pytest.raises(ValueError):
        Region((0, 0, 5), (1, 1, 4))


def test_region_intersect():
    a = Region((0, 0, 0), (4, 4, 4))
    b = Region((2, 2, 2), (8, 8, 8))
    c = a.intersect(b)
    assert c.low == (2, 2, 2) and c.high == (4, 4, 4)
    # disjoint -> empty
    d = a.intersect(Region((10, 10, 10), (12, 12, 12)))
    assert d.empty and d.num_cells == 0


def test_region_grown():
    r = Region((2, 2, 2), (4, 4, 4)).grown(1)
    assert r.low == (1, 1, 1) and r.high == (5, 5, 5)
    with pytest.raises(ValueError):
        Region((0, 0, 0), (1, 1, 1)).grown(-1)


def test_region_contains_and_cells_iter():
    r = Region((0, 0, 0), (2, 2, 1))
    assert r.contains((1, 1, 0))
    assert not r.contains((2, 0, 0))
    assert len(list(r.cells())) == 4


# -- Grid geometry ----------------------------------------------------------------

def test_grid_spacing_and_centers():
    g = Grid(extent=(10, 10, 10))
    assert g.spacing == (0.1, 0.1, 0.1)
    assert g.cell_center((0, 0, 0)) == pytest.approx((0.05, 0.05, 0.05))
    assert g.cell_center((9, 9, 9)) == pytest.approx((0.95, 0.95, 0.95))


def test_grid_layout_must_divide():
    with pytest.raises(ValueError):
        Grid(extent=(10, 10, 10), layout=(3, 1, 1))
    with pytest.raises(ValueError):
        Grid(extent=(0, 4, 4))
    with pytest.raises(ValueError):
        Grid(extent=(4, 4, 4), domain_high=(0.0, 1.0, 1.0))


def test_paper_grid_dimensions():
    """Table III largest problem: 1024^3 grid, 8x8x2 layout, 128 patches."""
    g = Grid(extent=(1024, 1024, 1024), layout=(8, 8, 2))
    assert g.num_patches == 128
    assert g.patch_extent == (128, 128, 512)
    assert g.num_cells == 1024**3


def test_patch_ids_cover_all_uniquely():
    g = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    ids = [p.patch_id for p in g.patches()]
    assert ids == list(range(8))


def test_patch_regions_partition_grid():
    g = Grid(extent=(8, 12, 4), layout=(2, 3, 1))
    total = sum(p.num_cells for p in g.patches())
    assert total == g.num_cells
    # disjointness: pairwise empty intersections
    ps = g.patches()
    for i, a in enumerate(ps):
        for b in ps[i + 1:]:
            assert a.region.intersect(b.region).empty


def test_neighbors_and_boundaries():
    g = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    corner = g.patch((0, 0, 0))
    assert g.neighbor(corner, 0, -1) is None
    nb = g.neighbor(corner, 0, +1)
    assert nb is not None and nb.index == (1, 0, 0)
    assert len(g.face_neighbors(corner)) == 3
    assert len(g.boundary_faces(corner)) == 3


def test_face_and_ghost_regions_are_adjacent():
    g = Grid(extent=(8, 8, 8), layout=(2, 1, 1))
    left, right = g.patch((0, 0, 0)), g.patch((1, 0, 0))
    # right patch's low-x ghost region == left patch's high-x face region
    assert right.ghost_region(0, -1) == left.face_region(0, +1)
    assert left.ghost_region(0, +1) == right.face_region(0, -1)


def test_surface_cells():
    g = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    p = g.patch((0, 0, 0))  # 4x4x4 patch
    assert p.surface_cells == 4**3 - 2**3


def test_memory_bytes_matches_table3():
    """Table III Mem column: 2 fields x grid cells x 8 B, binary units."""
    g = Grid(extent=(128, 128, 1024), layout=(8, 8, 2))
    assert g.memory_bytes(fields=2, ghosts=0) == 256 * 1024**2
    g = Grid(extent=(1024, 1024, 1024), layout=(8, 8, 2))
    assert g.memory_bytes(fields=2, ghosts=0) == 16 * 1024**3


@given(
    st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)),
    st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
)
def test_property_patch_neighbor_symmetry(mult, layout):
    """If q is p's (+axis) neighbour then p is q's (-axis) neighbour."""
    extent = tuple(m * l * 2 for m, l in zip(mult, layout))
    g = Grid(extent=extent, layout=layout)
    for p in g.patches():
        for axis, side in FACES:
            q = g.neighbor(p, axis, side)
            if q is not None:
                assert g.neighbor(q, axis, -side).patch_id == p.patch_id


@given(
    low=st.tuples(st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20)),
    size=st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)),
    other_low=st.tuples(st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20)),
    other_size=st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)),
)
def test_property_region_intersection_laws(low, size, other_low, other_size):
    """Intersection is commutative, contained in both, and idempotent."""
    a = Region(low, tuple(l + s for l, s in zip(low, size)))
    b = Region(other_low, tuple(l + s for l, s in zip(other_low, other_size)))
    ab, ba = a.intersect(b), b.intersect(a)
    assert ab.num_cells == ba.num_cells
    if not ab.empty:
        assert ab.low == ba.low and ab.high == ba.high
        for axis in range(3):
            assert a.low[axis] <= ab.low[axis] and ab.high[axis] <= a.high[axis]
            assert b.low[axis] <= ab.low[axis] and ab.high[axis] <= b.high[axis]
        again = ab.intersect(a)
        assert again.low == ab.low and again.high == ab.high


@given(
    ghosts=st.integers(0, 3),
    size=st.tuples(st.integers(1, 10), st.integers(1, 10), st.integers(1, 10)),
)
def test_property_grown_region_cell_count(ghosts, size):
    r = Region((0, 0, 0), size)
    g = r.grown(ghosts)
    expect = 1
    for s in size:
        expect *= s + 2 * ghosts
    assert g.num_cells == expect
