"""The simulation controller: timestepping over the task graph.

Mirrors Uintah's SimulationController: compile the task graph once, then
per timestep execute it through the scheduler and swap data warehouses
("the new datawarehouse becomes the old datawarehouse for the next
timestep", paper Sec. II).  All ranks of the simulated job live in one
:class:`~repro.des.Simulator`; each runs its own driver process, so ranks
genuinely proceed independently (no lock-step) with per-step MPI tag
namespacing keeping messages matched.

Timing protocol: initialization executes first (untimed), a barrier
aligns the ranks, then ``nsteps`` timesteps run and the wall time per
step is ``(last rank finish - barrier release) / nsteps`` — matching the
paper's "wall time per time step" indicator.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.costs import SunwayCostModel
from repro.core.datawarehouse import DataWarehouse
from repro.core.grid import Grid
from repro.core.loadbalancer import LoadBalancer
from repro.core.schedulers.base import SchedulerStats
from repro.core.schedulers.scheduler import SunwayScheduler
from repro.core.task import Task
from repro.core.taskgraph import TaskGraph
from repro.core.trace import Tracer
from repro.des import Simulator
from repro.simmpi.comm import Comm
from repro.simmpi.network import Fabric, FabricConfig
from repro.sunway.athread import AthreadRuntime


@dataclasses.dataclass
class RunResult:
    """Everything a run produced: timings, counters, state, trace."""

    num_ranks: int
    nsteps: int
    #: Simulated seconds from the post-init barrier to the last rank's finish.
    total_time: float
    #: ``total_time / nsteps`` — the paper's performance indicator.
    time_per_step: float
    #: Per-step global durations (max over ranks).
    step_times: list[float]
    #: Merged scheduler counters over all ranks (timestep phase only).
    stats: SchedulerStats
    #: Per-rank counters.
    rank_stats: list[SchedulerStats]
    #: Counted kernel flops per timestep (all ranks).
    flops_per_step: float
    #: Total MPI messages / bytes on the fabric (including init, if any).
    messages_sent: int
    bytes_sent: int
    #: Final old data warehouses per rank (the last step's results).
    final_dws: list[DataWarehouse]
    trace: Tracer
    #: Simulation time value reached (t0 + nsteps*dt).
    sim_time: float
    #: Per-rank step-boundary clocks: ``rank_step_ends[r][s]`` is rank
    #: ``r``'s simulated time at the end of step ``s`` (index 0 = barrier
    #: release).  The telemetry ledger clips trace spans to these windows.
    rank_step_ends: list[list[float]] | None = None

    @property
    def gflops(self) -> float:
        """Achieved Gflop/s, the paper's Sec. VII-E metric."""
        if self.time_per_step <= 0:
            return 0.0
        return self.flops_per_step / self.time_per_step / 1e9


class SimulationController:
    """Builds the simulated job and runs timesteps.

    Parameters
    ----------
    grid:
        The mesh with its patch layout.
    tasks:
        The per-timestep coarse tasks, in declaration order.
    init_tasks:
        Tasks producing the initial state (must not need ghost cells —
        initial conditions are evaluated pointwise).
    num_ranks:
        Core-groups (= MPI ranks, paper Sec. IV-A).
    mode:
        Scheduler mode: ``async`` / ``sync`` / ``mpe_only``.
    cost_model:
        A :class:`~repro.core.costs.SunwayCostModel`; default models the
        paper's non-vectorized accelerated variant.
    real:
        ``True`` executes real numerics on NumPy arrays; ``False`` runs
        the identical schedule charging costs only (paper-scale grids).
    """

    def __init__(
        self,
        grid: Grid,
        tasks: _t.Sequence[Task],
        init_tasks: _t.Sequence[Task],
        num_ranks: int = 1,
        mode: str = "async",
        cost_model: SunwayCostModel | None = None,
        real: bool = True,
        balancer: str = "sfc",
        fabric_config: FabricConfig | None = None,
        trace_enabled: bool = False,
        params: dict | None = None,
        scheduler_kwargs: dict | None = None,
        scheduler_factory: _t.Callable[..., SunwayScheduler] | None = None,
        memory_limit_bytes: int | None = None,
        faults=None,
        resilience=None,
        telemetry=None,
        validator=None,
    ):
        self.grid = grid
        self.num_ranks = num_ranks
        self.mode = mode
        self.real = real
        self.params = dict(params or {})
        self.costs = cost_model if cost_model is not None else SunwayCostModel()

        #: Optional fault injector + resilience policy, threaded through
        #: the fabric, the athread runtimes, and the timestep schedulers.
        #: ``None`` keeps every fault-free code path byte-identical.
        self.faults = faults
        self.resilience = resilience
        #: Optional :class:`~repro.telemetry.collect.RunTelemetry`; like
        #: faults, it reaches the fabric and the *timestep* schedulers
        #: only — the init graph runs before the measured window and must
        #: not shift step attribution (step counting starts at the first
        #: instrumented ``step-begin``).
        self.telemetry = telemetry
        #: Optional :class:`~repro.verify.ScheduleValidator`.  Same reach
        #: as telemetry — timestep schedulers only — plus the per-rank
        #: data warehouses, which it audits through their observer hook.
        self.validator = validator
        self.sim = Simulator()
        self.fabric = Fabric(
            self.sim,
            num_ranks,
            fabric_config,
            faults=faults,
            policy=resilience,
            telemetry=telemetry,
        )
        self.trace = Tracer(enabled=trace_enabled)
        self.assignment = LoadBalancer(balancer).assign(grid, num_ranks)
        self.graph = TaskGraph(grid, tasks, self.assignment, num_ranks)
        self.init_graph = TaskGraph(grid, init_tasks, self.assignment, num_ranks)
        if self.init_graph.messages:
            raise ValueError(
                "initialization tasks must not require ghost cells "
                "(they would collide with timestep message tags)"
            )

        if memory_limit_bytes is not None:
            self._check_memory(memory_limit_bytes)

        # Static fields: labels the timestep graph requires from the old
        # DW but never recomputes (e.g. coefficient fields produced at
        # initialization).  Uintah forwards such data across the DW swap;
        # the driver re-registers them in each new warehouse.
        computed = {lb.name for t in self.graph.tasks for lb in t.computes}
        self._static_labels = sorted(
            {
                dep.label.name
                for t in self.graph.tasks
                for dep in t.requires
                if dep.dw == "old"
                and not dep.label.is_reduction
                and dep.label.name not in computed
            }
        )

        sched_kwargs = dict(scheduler_kwargs or {})
        factory = scheduler_factory if scheduler_factory is not None else SunwayScheduler
        self.comms = [Comm(self.fabric, r) for r in range(num_ranks)]
        self.athreads = [
            AthreadRuntime(
                self.sim,
                self.costs.core_group,
                launch_latency=self.costs.launch_latency,
                num_groups=self.costs.cpe_groups,
            )
            for _ in range(num_ranks)
        ]
        for r, at in enumerate(self.athreads):
            at.faults = faults
            at.rank = r
        # Faults/resilience reach only the timestep schedulers (the init
        # graph builds the pre-failure state and stays clean); kwargs are
        # withheld entirely when unset so third-party factories without
        # these parameters keep working.
        if faults is not None or resilience is not None:
            sched_kwargs["faults"] = faults
            sched_kwargs["resilience"] = resilience
        if telemetry is not None:
            sched_kwargs["telemetry"] = telemetry
        if validator is not None:
            sched_kwargs["validator"] = validator
        self.schedulers = [
            factory(
                self.sim,
                r,
                self.graph,
                self.comms[r],
                self.athreads[r],
                self.costs,
                mode=mode,
                real=real,
                trace=self.trace,
                **sched_kwargs,
            )
            for r in range(num_ranks)
        ]
        sched_kwargs.pop("faults", None)
        sched_kwargs.pop("resilience", None)
        sched_kwargs.pop("telemetry", None)
        sched_kwargs.pop("validator", None)
        self._folded_retries = [0] * num_ranks
        self.init_schedulers = [
            factory(
                self.sim,
                r,
                self.init_graph,
                self.comms[r],
                self.athreads[r],
                self.costs,
                mode=mode,
                real=real,
                trace=Tracer(enabled=False),
                **sched_kwargs,
            )
            for r in range(num_ranks)
        ]
        for sched in self.schedulers + self.init_schedulers:
            sched.params = self.params

    def _check_memory(self, limit_bytes: int) -> None:
        """Refuse configurations whose per-rank state exceeds the CG memory.

        Reproduces the paper's Table III footnote mechanism: "the problem
        size 64x64x512 crashes with memory allocation errors when using
        1 CG".  Demand = each rank's patches x ghosted patch cells x 8 B
        x (cell labels) x 2 warehouse generations.
        """
        labels = {
            lb.name
            for t in self.graph.tasks
            for lb in t.computes
            if not lb.is_reduction
        }
        nfields = max(len(labels), 1) * 2  # old + new generations
        per_patch = 1
        for e in self.grid.patch_extent:
            per_patch *= e + 2  # one ghost layer
        per_patch_bytes = per_patch * 8 * nfields
        counts = LoadBalancer.load_counts(self.assignment, self.num_ranks)
        worst_rank = max(range(self.num_ranks), key=lambda r: counts[r])
        demand = counts[worst_rank] * per_patch_bytes
        if demand > limit_bytes:
            raise MemoryError(
                f"rank {worst_rank} needs {demand / 1024**3:.2f} GiB for "
                f"{counts[worst_rank]} patches ({len(labels)} field(s), 2 "
                f"warehouses) but a CG offers {limit_bytes / 1024**3:.2f} GiB "
                "of usable field memory -- the paper's 'crashes with memory "
                "allocation errors' case; use more CGs"
            )

    def _forward_static(self, old_dw: DataWarehouse, new_dw: DataWarehouse) -> None:
        """Carry never-recomputed fields across the warehouse swap."""
        wanted = set(self._static_labels)
        for var in old_dw.grid_variables():
            if var.label.name in wanted:
                new_dw.put(var)

    # ------------------------------------------------------------------ run
    def run(
        self, nsteps: int, dt: float, t0: float = 0.0, start_step: int = 0
    ) -> RunResult:
        """Initialize, then advance ``nsteps`` timesteps of size ``dt``.

        ``start_step`` offsets the step counter for restarted runs: the
        simulation time of step ``s`` is ``t0 + (start_step + s - 1)*dt``,
        computed with a single multiply so a restart from a checkpoint at
        ``start_step`` reproduces an uninterrupted run bit-exactly.
        """
        if nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {nsteps}")
        sim = self.sim
        R = self.num_ranks
        start_time = [0.0] * R
        end_time = [0.0] * R
        step_end: list[list[float]] = [[0.0] * (nsteps + 1) for _ in range(R)]
        final_dws: list[DataWarehouse | None] = [None] * R

        def driver(rank: int):
            # Kernel faults strike timesteps only: the init schedulers
            # have no watchdog, so a stuck init kernel could never be
            # recovered.  (Network faults stay on throughout — dropped
            # messages are retransmitted at the fabric level regardless.)
            at = self.athreads[rank]
            at.faults = None
            dw0 = DataWarehouse(0, rank)
            if self.validator is not None:
                self.validator.watch_dw(dw0)
            yield from self.init_schedulers[rank].execute_timestep(
                step=0, time=t0 + start_step * dt, dt_value=dt, old_dw=None, new_dw=dw0
            )
            yield self.comms[rank].ibarrier().event
            at.faults = self.faults
            start_time[rank] = sim.now
            step_end[rank][0] = sim.now
            old = dw0
            for s in range(1, nsteps + 1):
                new = DataWarehouse(s, rank)
                if self.validator is not None:
                    self.validator.watch_dw(new)
                if self._static_labels and self.real:
                    self._forward_static(old, new)
                yield from self.schedulers[rank].execute_timestep(
                    step=s,
                    time=t0 + (start_step + s - 1) * dt,
                    dt_value=dt,
                    old_dw=old,
                    new_dw=new,
                    bootstrap=(s == 1),
                )
                step_end[rank][s] = sim.now
                old = new
            end_time[rank] = sim.now
            final_dws[rank] = old

        procs = [sim.process(driver(r), name=f"rank{r}") for r in range(R)]
        sim.run(until=sim.all_of(procs))

        t_start = max(start_time)
        t_end = max(end_time)
        total = t_end - t_start
        steps = []
        prev = [max(step_end[r][0] for r in range(R))]
        for s in range(1, nsteps + 1):
            cur = max(step_end[r][s] for r in range(R))
            steps.append(cur - prev[0])
            prev[0] = cur

        # MPI retransmissions are counted by the fabric per sender rank;
        # fold them into that rank's scheduler counters (delta-guarded so
        # repeated run() calls never double-count).
        for r in range(R):
            delta = self.fabric.retries_by_rank[r] - self._folded_retries[r]
            if delta:
                self.schedulers[r].stats.mpi_retries += delta
                self._folded_retries[r] = self.fabric.retries_by_rank[r]

        merged = SchedulerStats()
        for sched in self.schedulers:
            merged.merge(sched.stats)

        return RunResult(
            num_ranks=R,
            nsteps=nsteps,
            total_time=total,
            time_per_step=total / nsteps,
            step_times=steps,
            stats=merged,
            rank_stats=[s.stats for s in self.schedulers],
            flops_per_step=merged.kernel_flops / nsteps,
            messages_sent=self.fabric.messages_sent,
            bytes_sent=self.fabric.bytes_sent,
            final_dws=_t.cast(list, final_dws),
            trace=self.trace,
            sim_time=t0 + (start_step + nsteps) * dt,
            rank_step_ends=step_end,
        )
