"""Per-rank communicator, shaped after mpi4py's lowercase API."""

from __future__ import annotations

import operator
import typing as _t

from repro.simmpi.network import Fabric
from repro.simmpi.request import SendRequest, RecvRequest, CollectiveRequest, all_complete


class Comm:
    """One rank's handle on the fabric (``MPI_COMM_WORLD`` analogue).

    Creation: build one :class:`~repro.simmpi.network.Fabric`, then one
    ``Comm(fabric, rank)`` per simulated rank.  Methods mirror mpi4py's
    pickled-object spelling (``isend`` / ``irecv`` / ``iallreduce``) since
    payloads here are arbitrary Python objects with an explicit modelled
    byte size.
    """

    def __init__(self, fabric: Fabric, rank: int):
        if not 0 <= rank < fabric.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {fabric.num_ranks})")
        self.fabric = fabric
        self.rank = rank
        self._allreduce_epoch = 0
        self._barrier_epoch = 0

    @property
    def size(self) -> int:
        """Number of ranks on the fabric."""
        return self.fabric.num_ranks

    # -- point to point ------------------------------------------------------
    def isend(self, dest: int, tag: int, nbytes: int, payload: object = None) -> SendRequest:
        """Non-blocking send of ``nbytes`` (payload optional, real mode)."""
        return self.fabric.post_send(self.rank, dest, tag, nbytes, payload)

    def irecv(self, source: int, tag: int) -> RecvRequest:
        """Non-blocking receive matching ``(source, tag)``."""
        return self.fabric.post_recv(source, self.rank, tag)

    # -- collectives ------------------------------------------------------------
    def iallreduce(
        self, value: float, op: _t.Callable[[float, float], float] = operator.add
    ) -> CollectiveRequest:
        """Non-blocking allreduce.  Epochs are counted per rank, so every
        rank must issue the same sequence of collectives (MPI ordering
        rules)."""
        epoch = self._allreduce_epoch
        self._allreduce_epoch += 1
        return self.fabric.post_allreduce(self.rank, epoch, value, op)

    def ibarrier(self) -> CollectiveRequest:
        """Non-blocking barrier."""
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        return self.fabric.post_barrier(self.rank, epoch)

    # -- conveniences ---------------------------------------------------------------
    @staticmethod
    def testall(requests: _t.Iterable) -> bool:
        """True when every request is complete."""
        return all_complete(requests)
