"""Task-graph analysis and export utilities.

Uintah can dump its task graph for inspection; this module provides the
same affordances for the reproduction:

* :func:`to_dot` — GraphViz export of a compiled
  :class:`~repro.core.taskgraph.TaskGraph` (internal edges solid, MPI
  messages dashed, one cluster per rank);
* :func:`critical_path` — the longest weighted chain of internal
  dependencies, the lower bound on a timestep regardless of resources;
* :func:`graph_stats` — counts the scheduler's workload per rank.

When ``networkx`` is installed, :func:`to_networkx` exposes the graph to
its algorithms (used by the test suite for an independent cycle check).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.task import DetailedTask
from repro.core.taskgraph import TaskGraph


def to_dot(graph: TaskGraph, max_tasks: int | None = None) -> str:
    """Render the compiled graph in GraphViz DOT format.

    ``max_tasks`` truncates huge graphs for readability (None = all).
    """
    lines = [
        "digraph taskgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    shown = set()
    tasks = graph.detailed_tasks if max_tasks is None else graph.detailed_tasks[:max_tasks]
    for rank in range(graph.num_ranks):
        members = [dt for dt in tasks if dt.rank == rank]
        if not members:
            continue
        lines.append(f"  subgraph cluster_rank{rank} {{")
        lines.append(f'    label="rank {rank}";')
        for dt in members:
            shown.add(dt.dt_id)
            shape = "box" if dt.task.offloadable else "ellipse"
            lines.append(f'    dt{dt.dt_id} [label="{dt.name}", shape={shape}];')
        lines.append("  }")
    for dt in tasks:
        for dep in sorted(graph.internal_deps[dt.dt_id]):
            if dep in shown:
                lines.append(f"  dt{dep} -> dt{dt.dt_id};")
    for msg in graph.messages:
        if msg.producer is not None and msg.producer.dt_id in shown and msg.consumer.dt_id in shown:
            style = "dashed" if not msg.cross_step else "dotted"
            lines.append(
                f"  dt{msg.producer.dt_id} -> dt{msg.consumer.dt_id} "
                f'[style={style}, label="tag {msg.tag}"];'
            )
    lines.append("}")
    return "\n".join(lines)


@dataclasses.dataclass
class CriticalPath:
    """The longest internal-dependency chain of one timestep."""

    tasks: list[DetailedTask]
    #: Sum of node weights along the chain.
    length: float


def critical_path(
    graph: TaskGraph,
    weight: _t.Callable[[DetailedTask], float] = lambda dt: 1.0,
) -> CriticalPath:
    """Longest weighted path through the internal dependencies.

    ``weight(dt)`` defaults to 1 (hop count); pass e.g. the cost model's
    kernel time for a seconds-valued bound.
    """
    dist: dict[int, float] = {}
    pred: dict[int, int | None] = {}
    by_id = {dt.dt_id: dt for dt in graph.detailed_tasks}

    def longest_to(node: int) -> float:
        if node in dist:
            return dist[node]
        best = 0.0
        best_pred: int | None = None
        for dep in graph.internal_deps[node]:
            cand = longest_to(dep)
            if cand > best:
                best, best_pred = cand, dep
        dist[node] = best + weight(by_id[node])
        pred[node] = best_pred
        return dist[node]

    if not graph.detailed_tasks:
        return CriticalPath([], 0.0)
    end = max(graph.detailed_tasks, key=lambda dt: longest_to(dt.dt_id))
    chain = []
    cursor: int | None = end.dt_id
    while cursor is not None:
        chain.append(by_id[cursor])
        cursor = pred[cursor]
    chain.reverse()
    return CriticalPath(chain, dist[end.dt_id])


def graph_stats(graph: TaskGraph) -> dict:
    """Per-graph workload counts (used by reports and tests)."""
    per_rank_tasks = [len(graph.local_tasks(r)) for r in range(graph.num_ranks)]
    per_rank_recv = [0] * graph.num_ranks
    per_rank_send = [0] * graph.num_ranks
    for msg in graph.messages:
        per_rank_recv[msg.to_rank] += 1
        per_rank_send[msg.from_rank] += 1
    return {
        "detailed_tasks": len(graph.detailed_tasks),
        "internal_edges": sum(len(d) for d in graph.internal_deps.values()),
        "messages": len(graph.messages),
        "message_bytes": sum(m.nbytes for m in graph.messages),
        "local_copies": len(graph.copies),
        "per_rank_tasks": per_rank_tasks,
        "per_rank_recvs": per_rank_recv,
        "per_rank_sends": per_rank_send,
    }


def to_networkx(graph: TaskGraph):
    """The internal-dependency DAG as a ``networkx.DiGraph`` (optional)."""
    import networkx as nx

    g = nx.DiGraph()
    for dt in graph.detailed_tasks:
        g.add_node(dt.dt_id, name=dt.name, rank=dt.rank)
    for dt in graph.detailed_tasks:
        for dep in graph.internal_deps[dt.dt_id]:
            g.add_edge(dep, dt.dt_id)
    return g
