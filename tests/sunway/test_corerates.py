"""Tests for the MPE/CPE throughput model."""

import pytest

from repro.sunway.corerates import CoreRates, KernelCost, TileWork
from repro.sunway.dma import DMAEngine


BURGERS = KernelCost(stencil_flops=95, exp_calls=6, bytes_read=8, bytes_written=8)


def test_flops_per_cell_matches_paper():
    """~311 flops/cell, ~215 of which from exponentials (Table I text)."""
    assert BURGERS.flops_per_cell(fast_exp=True) == 95 + 216
    assert BURGERS.flops_per_cell(fast_exp=True) == pytest.approx(311, abs=2)


def test_arithmetic_intensity_matches_paper():
    """Sec. III-A: ~19.4 flop/byte at 16 bytes/cell."""
    assert BURGERS.arithmetic_intensity() == pytest.approx(19.4, abs=0.1)


def test_ieee_exp_costs_more():
    assert BURGERS.flops_per_cell(fast_exp=False) > BURGERS.flops_per_cell(fast_exp=True)


def test_simd_speeds_up_compute():
    rates = CoreRates()
    scalar = rates.cpe_cell_compute_time(BURGERS, simd=False)
    vec = rates.cpe_cell_compute_time(BURGERS, simd=True)
    assert vec < scalar
    # overall compute-only SIMD speedup between the exp-bound floor (2x)
    # and the stencil ceiling (3.6x); observed totals land in 1.3-2.2x
    # once DMA/overheads are added.
    assert 2.0 < scalar / vec < 3.6


def test_tile_time_includes_dma_and_compute():
    rates = CoreRates(cpe_scalar_flops=1e9)
    dma = DMAEngine(bandwidth=1e9, startup=0.0, chunk_penalty=0.0)
    work = TileWork(cells=100, get_bytes=1000, get_chunks=1, put_bytes=500, put_chunks=1)
    t = rates.tile_time(work, BURGERS, dma, simd=False)
    expect = 1.5e-6 + 100 * 311 / 1e9
    assert t == pytest.approx(expect)


def test_cluster_time_is_worst_cpe():
    rates = CoreRates(cpe_scalar_flops=1e9)
    dma = DMAEngine(bandwidth=1e9, startup=0.0, chunk_penalty=0.0)
    small = TileWork(cells=10, get_bytes=0, get_chunks=1, put_bytes=0, put_chunks=1)
    big = TileWork(cells=1000, get_bytes=0, get_chunks=1, put_bytes=0, put_chunks=1)
    t = rates.cluster_kernel_time([[small], [big], [small, small]], BURGERS, dma, simd=False)
    assert t == pytest.approx(1000 * 311 / 1e9)


def test_cluster_time_empty():
    assert CoreRates().cluster_kernel_time([], BURGERS, DMAEngine(), simd=False) == 0.0


def test_mpe_cache_model_small_patch_is_faster():
    """Offload boost grows with patch size because the MPE baseline slows
    down once three xy-planes fall out of L2 (Sec. VII-D mechanism)."""
    rates = CoreRates()
    small_plane = 16 * 16 * 8          # 2 KB: fully cached
    large_plane = 128 * 128 * 8        # 131 KB: 3 planes ~ 393 KB > L2
    assert rates.mpe_streaming_fraction(small_plane) == 0.0
    assert rates.mpe_streaming_fraction(large_plane) == 1.0
    assert rates.mpe_effective_flops(small_plane) > rates.mpe_effective_flops(large_plane)


def test_mpe_streaming_fraction_ramps_monotonically():
    rates = CoreRates()
    fracs = [rates.mpe_streaming_fraction(b) for b in range(0, 800_000, 10_000)]
    assert fracs == sorted(fracs)
    assert fracs[0] == 0.0 and fracs[-1] == 1.0


def test_mpe_kernel_time_scales_with_cells():
    rates = CoreRates()
    t1 = rates.mpe_kernel_time(1000, plane_bytes=2048, cost=BURGERS)
    t2 = rates.mpe_kernel_time(2000, plane_bytes=2048, cost=BURGERS)
    assert t2 == pytest.approx(2 * t1)


def test_pack_remote_costs_more_than_local():
    rates = CoreRates()
    assert rates.pack_time(1000, remote=True) > rates.pack_time(1000, remote=False)


def test_async_dma_tile_never_slower():
    rates = CoreRates()
    dma = DMAEngine()
    work = TileWork(cells=2048, get_bytes=25920, get_chunks=180, put_bytes=16384, put_chunks=128)
    sync = rates.tile_time(work, BURGERS, dma, simd=True)
    asyn = rates.tile_time(work, BURGERS, dma, simd=True, async_dma=True)
    assert asyn <= sync
