"""Checkpoint/restart recovery from whole-rank failures.

:class:`ResilientRunner` drives a simulation the way a production Uintah
job survives node loss: it advances in **segments** of
``policy.checkpoint_every`` timesteps, archiving a UDA checkpoint
(:mod:`repro.io.uda`) after each.  When the
:class:`~repro.faults.injector.FaultInjector` kills a rank
(:class:`~repro.faults.injector.RankFailure` propagating out of
``Simulator.run``), the runner discards the poisoned segment, reloads the
last checkpoint, rebuilds the job on the **surviving layout** (one rank
fewer — the load balancer redistributes the patches) and replays from the
archived step.  Restart is bit-exact (see ``examples/checkpoint_restart``),
so the recovered run's physics matches an uninterrupted one to the last
bit; only the wall-clock accounting shows the failure.

The runner is application-agnostic: it takes a ``problem_factory`` that
builds the component for a grid, and reconstructs the restart graph from
whatever grid variables the checkpoint holds.
"""

from __future__ import annotations

import tempfile
import typing as _t

from repro.core.controller import RunResult, SimulationController
from repro.core.grid import Grid
from repro.core.schedulers.base import SchedulerStats
from repro.core.varlabel import VarLabel
from repro.faults.injector import FaultConfig, FaultInjector, RankFailure
from repro.faults.policies import ResiliencePolicy
from repro.faults.report import ResilienceReport
from repro.io.uda import UdaArchive, restart_tasks


class ResilientRunner:
    """Runs ``nsteps`` timesteps, surviving injected whole-rank failures.

    Parameters
    ----------
    problem_factory:
        ``Grid -> problem``; the problem must expose ``tasks()`` and
        ``init_tasks()`` (the repo's component convention).
    grid:
        Mesh for the initial (pre-failure) layout.
    nsteps, dt:
        Global timestep count and size.
    num_ranks:
        Core-groups at job start; each recovery drops one.
    config:
        Fault configuration (``None`` injects nothing — the runner then
        degenerates to a periodically-checkpointing driver).
    policy:
        Resilience knobs; ``checkpoint_every`` sets the segment length.
    archive_root:
        UDA archive directory (a temp dir by default).
    controller_kwargs:
        Extra keyword arguments forwarded to every
        :class:`~repro.core.controller.SimulationController` built.
    """

    def __init__(
        self,
        problem_factory: _t.Callable[[Grid], object],
        grid: Grid,
        nsteps: int,
        dt: float,
        num_ranks: int = 2,
        config: FaultConfig | None = None,
        policy: ResiliencePolicy | None = None,
        archive_root: str | None = None,
        mode: str = "async",
        real: bool = True,
        controller_kwargs: dict | None = None,
    ):
        if nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {nsteps}")
        if num_ranks < 1:
            raise ValueError(f"need >= 1 rank, got {num_ranks}")
        self.problem_factory = problem_factory
        self.grid = grid
        self.nsteps = nsteps
        self.dt = dt
        self.num_ranks = num_ranks
        self.config = config or FaultConfig()
        self.policy = policy or ResiliencePolicy()
        self.archive_root = archive_root or tempfile.mkdtemp(suffix=".uda")
        self.mode = mode
        self.real = real
        self.controller_kwargs = dict(controller_kwargs or {})
        self.injector = FaultInjector(self.config)
        #: Final per-rank data warehouses of the last completed segment.
        self.final_dws: list = []
        #: Last completed segment's :class:`RunResult` (for inspection).
        self.last_result: RunResult | None = None

    # ------------------------------------------------------------------ pieces
    def _controller(self, grid: Grid, tasks, init_tasks, ranks: int):
        return SimulationController(
            grid,
            tasks,
            init_tasks,
            num_ranks=ranks,
            mode=self.mode,
            real=self.real,
            trace_enabled=True,
            faults=self.injector,
            resilience=self.policy,
            **self.controller_kwargs,
        )

    def _restart_init(self, ck) -> list:
        """Rebuild an init graph restoring every checkpointed field."""
        tasks = []
        for name in sorted(ck.fields):
            tasks.extend(restart_tasks(ck, VarLabel(name)))
        if not tasks:
            raise ValueError(f"checkpoint at {self.archive_root} holds no fields")
        return tasks

    @staticmethod
    def _fold(controller: SimulationController, into: SchedulerStats) -> None:
        """Merge a (possibly aborted) controller's counters into ``into``."""
        for r in range(controller.num_ranks):
            delta = controller.fabric.retries_by_rank[r] - controller._folded_retries[r]
            if delta:
                controller.schedulers[r].stats.mpi_retries += delta
                controller._folded_retries[r] = controller.fabric.retries_by_rank[r]
        for sched in controller.schedulers:
            into.merge(sched.stats)

    @staticmethod
    def _recovery_spans(trace) -> int:
        return sum(
            1
            for s in trace.spans
            if s.name.startswith(("recover-", "straggler:"))
        )

    # ------------------------------------------------------------------ run
    def run(self) -> ResilienceReport:
        """Advance all timesteps, recovering from failures; report."""
        archive = UdaArchive(self.archive_root)
        stats = SchedulerStats()
        ranks = self.num_ranks
        grid = self.grid
        done = 0  # global timesteps completed and checkpointed/held
        faulty_time = 0.0
        checkpoints = recoveries = failures = replayed = spans = 0

        while done < self.nsteps:
            chunk = min(self.policy.checkpoint_every, self.nsteps - done)
            problem = self.problem_factory(grid)
            if done == 0:
                init = problem.init_tasks()
            else:
                ck = archive.load()
                grid = ck.grid
                problem = self.problem_factory(grid)
                init = self._restart_init(ck)
            self.injector.step_offset = done
            controller = self._controller(grid, problem.tasks(), init, ranks)
            try:
                result = controller.run(
                    nsteps=chunk, dt=self.dt, start_step=done
                )
            except RankFailure as exc:
                # the segment's work is poisoned: discard it, shrink the
                # layout by the dead rank, replay from the last checkpoint
                failures += 1
                recoveries += 1
                replayed += max(0, exc.step - 1 - done)
                faulty_time += controller.sim.now
                spans += self._recovery_spans(controller.trace)
                self._fold(controller, stats)
                if ranks <= 1:
                    raise RuntimeError(
                        "rank failure with no survivors: cannot recover"
                    ) from exc
                ranks -= 1
                continue
            done += chunk
            faulty_time += result.total_time
            spans += self._recovery_spans(result.trace)
            self._fold(controller, stats)
            self.final_dws = result.final_dws
            self.last_result = result
            if done < self.nsteps:
                # no terminal checkpoint: the final state is in final_dws
                archive.save(grid, result.final_dws, step=done, time=result.sim_time)
                checkpoints += 1

        stats.rank_recoveries += recoveries
        stats.steps_replayed += replayed
        return ResilienceReport(
            seed=self.config.seed,
            nsteps=self.nsteps,
            num_ranks_start=self.num_ranks,
            num_ranks_end=ranks,
            faults_by_kind=self.injector.counts_by_kind(),
            stats=stats,
            checkpoints_written=checkpoints,
            rank_failures=failures,
            recoveries=recoveries,
            steps_replayed=replayed,
            recovery_spans=spans,
            faulty_time=faulty_time,
        )
