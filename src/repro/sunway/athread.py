"""The ``athread`` offload interface on the discrete-event simulator.

On Sunway, the MPE starts a group of lightweight threads (one per CPE)
running a kernel function, and monitors progress through an atomically
incremented word in main memory (the ``faaw`` instruction) — the paper's
scheduler "sets up a completion flag in the main memory just before
offloading a kernel ... the kernel will update the flag when it finishes"
(Sec. V-B).  This module models exactly that contract:

* :class:`CompletionFlag` — the shared word; ``faaw`` increments it and
  wakes DES waiters, ``value`` is what the MPE polls.
* :class:`AthreadRuntime` — one per core-group; :meth:`spawn` launches a
  kernel on the CPE cluster (or on a sub-group, for the CPE-grouping
  extension), charging a launch latency and the cluster execution time,
  then bumps the flag.  Only one kernel may run per group at a time, as
  with real ``athread_spawn``/``athread_join``.
* :class:`OffloadHandle` — what the scheduler holds: a ``done`` property
  to poll (async mode) and a DES event to block on (sync mode).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.des import Simulator
from repro.des.event import Event
from repro.sunway.config import CoreGroupConfig


class CompletionFlag:
    """An atomically-updated counter in main memory.

    Mirrors the 4/8-byte ``faaw`` target the paper's scheduler uses.  The
    MPE reads :attr:`value`; DES processes can also obtain an event that
    fires when the counter reaches a target, which lets the synchronous
    scheduler "spin" without burning simulator events.
    """

    def __init__(self, sim: Simulator, initial: int = 0):
        self.sim = sim
        self._value = int(initial)
        self._waiters: list[tuple[int, Event]] = []
        #: Completion-flag audit hook (``on_clear`` / ``on_faaw``); set by
        #: the verification subsystem, ``None`` in normal runs.  Observers
        #: charge no simulated time.
        self.observer = None

    @property
    def value(self) -> int:
        """Current counter value (what a plain MPE load would see)."""
        return self._value

    def clear(self) -> None:
        """Reset to zero (scheduler step 3(b)iv: 'clear the completion flag')."""
        if self.observer is not None:
            self.observer.on_clear(self, self._value)
        self._value = 0

    def faaw(self, increment: int = 1) -> int:
        """Fetch-and-add-word: atomically add and return the old value."""
        old = self._value
        self._value += int(increment)
        if self.observer is not None:
            self.observer.on_faaw(self, old, self._value)
        still_waiting = []
        for target, ev in self._waiters:
            if self._value >= target and not ev.triggered:
                ev.succeed(self._value)
            else:
                still_waiting.append((target, ev))
        self._waiters = still_waiting
        return old

    def reached(self, target: int) -> Event:
        """DES event firing when the counter reaches ``target``."""
        ev = self.sim.event(name=f"flag>={target}")
        if self._value >= target:
            ev.succeed(self._value)
        else:
            self._waiters.append((target, ev))
        return ev


@dataclasses.dataclass
class OffloadHandle:
    """A kernel in flight on (a group of) the CPE cluster."""

    name: str
    group: int
    flag: CompletionFlag
    #: Fires when the kernel finishes (flag has been bumped) — or, under
    #: fault injection, when it dies with :attr:`error` set.
    event: Event
    #: Simulated seconds the cluster will spend (launch + execution,
    #: including any injected slowdown).
    duration: float
    #: Arbitrary scheduler payload (e.g. the detailed task).
    payload: object = None
    #: Set when the kernel died instead of completing (e.g.
    #: :class:`~repro.sunway.dma.DMAError`); data effects were NOT applied.
    error: BaseException | None = None
    #: Set by :meth:`AthreadRuntime.abort`: the MPE gave up on this
    #: kernel; any still-pending completion is discarded.
    aborted: bool = False
    #: The fault the injector dealt this kernel, if any (diagnostics).
    fault: object = None

    @property
    def done(self) -> bool:
        """Non-blocking completion check — the MPE's flag poll."""
        return self.event.triggered


class AthreadRuntime:
    """Offload engine of one core-group.

    Parameters
    ----------
    sim:
        The simulator this CG lives on.
    config:
        Architectural parameters (CPE count, used for grouping checks).
    launch_latency:
        Seconds from ``spawn`` until the CPEs begin executing (athread
        spawn + argument marshalling; "lightweight due to the
        shared-memory design").
    num_groups:
        1 for the paper's configuration (whole-cluster offload).  >1
        enables the future-work CPE-grouping extension: each group is an
        independent offload engine with ``num_cpes / num_groups`` CPEs.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CoreGroupConfig | None = None,
        launch_latency: float = 15e-6,
        num_groups: int = 1,
    ):
        self.sim = sim
        self.config = config or CoreGroupConfig()
        if launch_latency < 0:
            raise ValueError(f"launch latency must be >= 0, got {launch_latency}")
        if num_groups < 1 or self.config.num_cpes % num_groups:
            raise ValueError(
                f"num_groups must divide {self.config.num_cpes} CPEs, got {num_groups}"
            )
        self.launch_latency = launch_latency
        self.num_groups = num_groups
        self._busy: dict[int, OffloadHandle | None] = {g: None for g in range(num_groups)}
        self._spawn_count = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector` (set by
        #: the controller).  When present, every spawn asks it for a
        #: kernel fault: slowdown, stuck completion flag, or DMA error.
        self.faults = None
        #: Rank this core-group belongs to (fault-stream attribution).
        self.rank = 0

    @property
    def cpes_per_group(self) -> int:
        """CPEs available to each offload group."""
        return self.config.num_cpes // self.num_groups

    def busy(self, group: int = 0) -> bool:
        """Whether ``group`` currently has a kernel in flight."""
        handle = self._busy[group]
        return handle is not None and not handle.done

    def spawn(
        self,
        duration: float,
        payload: object = None,
        on_complete: _t.Callable[[], None] | None = None,
        group: int = 0,
        name: str | None = None,
        flag: CompletionFlag | None = None,
    ) -> OffloadHandle:
        """Launch a kernel of ``duration`` cluster-seconds on ``group``.

        ``duration`` is the cluster execution time computed by the cost
        model (:meth:`CoreRates.cluster_kernel_time`); the handle's flag
        is bumped ``launch_latency + duration`` simulated seconds from
        now.  ``on_complete`` (if given) runs at completion time — the
        real-numerics mode applies the kernel's data effects there, so
        data becomes visible exactly when the hardware would publish it.

        Raises
        ------
        RuntimeError
            If the group already has a kernel in flight (real ``athread``
            requires a join before the next spawn).
        """
        if group not in self._busy:
            raise ValueError(f"no such CPE group {group} (have {self.num_groups})")
        if self.busy(group):
            raise RuntimeError(f"CPE group {group} is busy; join the running kernel first")
        if duration < 0:
            raise ValueError(f"kernel duration must be >= 0, got {duration}")

        self._spawn_count += 1
        flag = flag if flag is not None else CompletionFlag(self.sim)
        handle = OffloadHandle(
            name=name or f"kernel{self._spawn_count}",
            group=group,
            flag=flag,
            event=self.sim.event(name=f"offload:{name or self._spawn_count}"),
            duration=self.launch_latency + duration,
            payload=payload,
        )
        fault = None
        # hot-path gate: skip the injector query when no CPE fault can fire
        if self.faults is not None and self.faults.config.cpe_active:
            fault = self.faults.kernel_fault(
                self.rank, handle.name, handle.duration, self.sim.now
            )
            handle.fault = fault
            if fault is not None and fault.kind == "slowdown":
                handle.duration *= fault.factor
        self._busy[group] = handle

        def run(sim: Simulator):
            if fault is not None and fault.kind == "stuck":
                # Hung CPE: the completion flag is never bumped.  The MPE
                # only recovers through its completion-timeout watchdog
                # (ResiliencePolicy), which aborts this slot.
                return
            if fault is not None and fault.kind == "dma_error":
                from repro.sunway.dma import DMAError

                yield sim.timeout(fault.error_frac * handle.duration)
                if handle.aborted:
                    return
                handle.error = DMAError(handle.name, fault.error_frac)
                handle.event.succeed(handle)
                return
            yield sim.timeout(handle.duration)
            if handle.aborted:
                # The MPE gave up (watchdog) before we finished; results
                # are discarded exactly like a killed thread group's.
                return
            if on_complete is not None:
                on_complete()
            flag.faaw(1)
            handle.event.succeed(handle)

        self.sim.process(run(self.sim), name=f"cpe-group{group}:{handle.name}")
        return handle

    def abort(self, group: int = 0) -> OffloadHandle | None:
        """Give up on ``group``'s in-flight kernel and free the slot.

        Models the MPE killing a hung thread group after a completion
        timeout: the kernel's pending effects (data publication, flag
        bump) are discarded, and the group accepts a new ``spawn``
        immediately.  Returns the abandoned handle (or None if the group
        was idle).
        """
        if group not in self._busy:
            raise ValueError(f"no such CPE group {group} (have {self.num_groups})")
        handle = self._busy[group]
        if handle is None or handle.done:
            self._busy[group] = None
            return None
        handle.aborted = True
        self._busy[group] = None
        return handle

    @property
    def spawn_count(self) -> int:
        """Total kernels ever launched on this runtime."""
        return self._spawn_count
