"""Validation: the discretization converges at its theoretical order.

The paper validates its port by running the model problem (Sec. III);
the reproduction goes further and measures the scheme's convergence
order end-to-end through the full runtime (real numerics, multi-rank,
async scheduler): backward-difference advection is first order in space,
so halving dx should roughly halve the error once dt is small enough to
not dominate.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.burgers import BurgersProblem, solution_errors
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.harness.reportfmt import render_table


def error_at(n: int, final_t: float = 1.5e-3) -> float:
    grid = Grid(extent=(n, n, n), layout=(2, 2, 2))
    problem = BurgersProblem(grid)
    steps = 48  # fixed step count: dt shrinks with the fixed final time
    controller = SimulationController(
        grid, problem.tasks(), problem.init_tasks(), num_ranks=4,
        mode="async", real=True,
    )
    result = controller.run(nsteps=steps, dt=final_t / steps)
    return solution_errors(grid, result.final_dws, problem.u_label, t=result.sim_time)[
        "l2"
    ]


def sweep():
    return {n: error_at(n) for n in (8, 16, 32)}


@pytest.mark.benchmark(group="validation")
def test_validation_convergence_order(benchmark, publish):
    errors = run_once(benchmark, sweep)
    orders = {}
    ns = sorted(errors)
    for a, b in zip(ns, ns[1:]):
        orders[f"{a}->{b}"] = math.log2(errors[a] / errors[b])
    rows = [(n, f"{errors[n]:.3e}") for n in ns] + [
        (f"order {k}", f"{v:.2f}") for k, v in orders.items()
    ]
    publish(
        "validation_convergence",
        render_table(
            "Validation: L2 error vs resolution (real numerics, 4 ranks, async)",
            ["Grid (n^3)", "Value"],
            rows,
        ),
    )
    # error strictly decreases with resolution
    assert errors[8] > errors[16] > errors[32]
    # observed order near the upwind scheme's first order
    for k, order in orders.items():
        assert 0.5 < order < 2.0, (k, order)
