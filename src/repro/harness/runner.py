"""Run one (problem, variant, CG-count) experiment.

Experiments run the Burgers model problem for 10 timesteps (paper
Sec. VII-A) in performance-model mode (the grids go up to 1024^3 cells;
small-grid real-numerics runs validating that the modelled schedule and
the real one coincide live in the test suite).  Results are memoized for
the lifetime of the process since every table/figure draws from the same
underlying sweep — the paper likewise derives Tables V-VII and Figs. 5-10
from one set of runs.

The paper repeats each case and takes the best result to mitigate machine
instability; the DES is deterministic, so one run suffices and a
``repeats`` knob exists only for API fidelity.
"""

from __future__ import annotations

import dataclasses

from repro.burgers.component import BurgersProblem
from repro.core.noise import NoiseModel
from repro.core.controller import SimulationController, RunResult
from repro.harness import calibration
from repro.harness.problems import ProblemSetting, USABLE_BYTES_PER_CG
from repro.harness.variants import Variant
from repro.sunway.config import CoreGroupConfig

#: Timesteps per experiment (paper Sec. VII-A: "run for 10 timesteps").
DEFAULT_NSTEPS = 10


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The measurements one experimental case produces."""

    problem: str
    variant: str
    num_cgs: int
    nsteps: int
    #: Simulated wall seconds per timestep — the paper's indicator.
    time_per_step: float
    #: Counted kernel flops per step (all ranks).
    flops_per_step: float
    messages_per_step: float
    bytes_per_step: float
    # -- resilience counters (structurally zero in fault-free runs) -------
    kernel_timeouts: int = 0
    kernel_retries: int = 0
    mpe_fallbacks: int = 0
    mpi_retries: int = 0
    stragglers_detected: int = 0
    rank_recoveries: int = 0

    @property
    def gflops(self) -> float:
        """Achieved Gflop/s (Sec. VII-E)."""
        return self.flops_per_step / self.time_per_step / 1e9

    @property
    def fp_efficiency(self) -> float:
        """Fraction of the running CGs' theoretical peak."""
        peak = self.num_cgs * CoreGroupConfig().peak_flops
        return self.gflops * 1e9 / peak


@dataclasses.dataclass
class InstrumentedRun:
    """Everything one observed run produced (never memoized)."""

    experiment: ExperimentResult
    #: The raw :class:`~repro.core.controller.RunResult` with its trace.
    result: RunResult
    #: The :class:`~repro.telemetry.collect.RunTelemetry` that observed it.
    telemetry: object
    #: The folded :class:`~repro.telemetry.ledger.RunLedger`.
    ledger: object


_CACHE: dict[tuple, ExperimentResult] = {}


def clear_cache() -> None:
    """Drop memoized experiment results (tests use this)."""
    _CACHE.clear()


def run_experiment(
    problem: ProblemSetting,
    variant: Variant,
    num_cgs: int,
    nsteps: int = DEFAULT_NSTEPS,
    repeats: int = 1,
    with_reduction: bool = True,
    noise: NoiseModel | None = None,
) -> ExperimentResult:
    """Run (or recall) one experimental case; returns its measurements.

    With a :class:`~repro.core.noise.NoiseModel`, each repeat runs under
    a different noise seed and the best (fastest) result is kept — the
    paper's Sec. VII-A protocol.  Without noise the DES is deterministic
    and one repeat suffices.
    """
    if num_cgs < problem.min_cgs:
        raise ValueError(
            f"problem {problem.name} needs at least {problem.min_cgs} CGs "
            f"(memory), got {num_cgs}"
        )
    key = (
        problem.name,
        variant.name,
        variant.select_policy,
        num_cgs,
        nsteps,
        with_reduction,
        repeats,
        noise,
    )
    hit = _CACHE.get(key)
    if hit is not None:
        return hit

    best: RunResult | None = None
    for rep in range(max(repeats, 1)):
        sched_kwargs = calibration.scheduler_kwargs()
        sched_kwargs["select_policy"] = variant.select_policy
        if noise is not None:
            sched_kwargs["noise"] = dataclasses.replace(noise, seed=noise.seed + rep)
        grid = problem.grid()
        burgers = BurgersProblem(grid, fast_exp=True, with_reduction=with_reduction)
        controller = SimulationController(
            grid,
            burgers.tasks(),
            burgers.init_tasks(),
            num_ranks=num_cgs,
            mode=variant.mode,
            cost_model=variant.cost_model(),
            real=False,
            fabric_config=calibration.FABRIC,
            scheduler_kwargs=sched_kwargs,
            memory_limit_bytes=USABLE_BYTES_PER_CG,
        )
        res = controller.run(nsteps=nsteps, dt=burgers.stable_dt())
        if best is None or res.time_per_step < best.time_per_step:
            best = res

    assert best is not None
    out = ExperimentResult(
        problem=problem.name,
        variant=variant.name,
        num_cgs=num_cgs,
        nsteps=nsteps,
        time_per_step=best.time_per_step,
        flops_per_step=best.flops_per_step,
        messages_per_step=best.messages_sent / nsteps,
        bytes_per_step=best.bytes_sent / nsteps,
        kernel_timeouts=best.stats.kernel_timeouts,
        kernel_retries=best.stats.kernel_retries,
        mpe_fallbacks=best.stats.mpe_fallbacks,
        mpi_retries=best.stats.mpi_retries,
        stragglers_detected=best.stats.stragglers_detected,
        rank_recoveries=best.stats.rank_recoveries,
    )
    _CACHE[key] = out
    return out


def run_instrumented(
    problem: ProblemSetting,
    variant: Variant,
    num_cgs: int,
    nsteps: int = DEFAULT_NSTEPS,
    with_reduction: bool = True,
    noise: NoiseModel | None = None,
    created_at: str | None = None,
) -> InstrumentedRun:
    """Run one case with tracing and telemetry on; returns the full bundle.

    The schedule is identical to :func:`run_experiment`'s (telemetry
    observes the DES, it never charges simulated time), but results are
    *not* memoized: the bundle carries the trace, the metrics registry
    and the ledger, which the cache must not alias across callers.
    """
    import datetime

    from repro.telemetry import RunTelemetry, build_ledger
    from repro.telemetry.ledger import git_revision

    if num_cgs < problem.min_cgs:
        raise ValueError(
            f"problem {problem.name} needs at least {problem.min_cgs} CGs "
            f"(memory), got {num_cgs}"
        )
    telemetry = RunTelemetry()
    sched_kwargs = calibration.scheduler_kwargs()
    sched_kwargs["select_policy"] = variant.select_policy
    if noise is not None:
        sched_kwargs["noise"] = noise
    grid = problem.grid()
    burgers = BurgersProblem(grid, fast_exp=True, with_reduction=with_reduction)
    controller = SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=num_cgs,
        mode=variant.mode,
        cost_model=variant.cost_model(),
        real=False,
        fabric_config=calibration.FABRIC,
        trace_enabled=True,
        scheduler_kwargs=sched_kwargs,
        memory_limit_bytes=USABLE_BYTES_PER_CG,
        telemetry=telemetry,
    )
    dt = burgers.stable_dt()
    result = controller.run(nsteps=nsteps, dt=dt)
    manifest = {
        "problem": problem.name,
        "variant": variant.name,
        "select_policy": variant.select_policy,
        "num_cgs": num_cgs,
        "nsteps": nsteps,
        "dt": dt,
        "t0": 0.0,
        "noise_seed": noise.seed if noise is not None else None,
        "git_rev": git_revision(),
        "created_at": (
            created_at
            if created_at is not None
            else datetime.datetime.now(datetime.timezone.utc).isoformat()
        ),
    }
    ledger = build_ledger(result, telemetry, manifest)
    experiment = ExperimentResult(
        problem=problem.name,
        variant=variant.name,
        num_cgs=num_cgs,
        nsteps=nsteps,
        time_per_step=result.time_per_step,
        flops_per_step=result.flops_per_step,
        messages_per_step=result.messages_sent / nsteps,
        bytes_per_step=result.bytes_sent / nsteps,
        kernel_timeouts=result.stats.kernel_timeouts,
        kernel_retries=result.stats.kernel_retries,
        mpe_fallbacks=result.stats.mpe_fallbacks,
        mpi_retries=result.stats.mpi_retries,
        stragglers_detected=result.stats.stragglers_detected,
        rank_recoveries=result.stats.rank_recoveries,
    )
    return InstrumentedRun(
        experiment=experiment, result=result, telemetry=telemetry, ledger=ledger
    )
