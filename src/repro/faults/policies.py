"""Resilience policy: the recovery machinery's knobs.

One frozen dataclass configures every scheduler- and transport-side
recovery mechanism.  Attaching a policy (via
``SimulationController(resilience=...)``) arms:

* **Kernel completion timeout** — the MPE stops trusting the completion
  flag after ``kernel_timeout(expected)`` seconds, aborts the offload
  slot and re-offloads the kernel (``sunway.athread`` hung-CPE fault).
* **Bounded re-offload, then MPE fallback** — a kernel that times out or
  dies with a DMA error is re-offloaded up to ``max_offload_retries``
  times; after that the MPE executes it itself (slow but certain), so a
  permanently-broken CPE cluster degrades instead of hanging the job.
* **MPI retransmission with exponential backoff and jitter** — the
  transport layer in ``simmpi.network`` re-sends dropped messages after
  ``mpi_backoff_base * 2**(attempt-1)`` seconds, jittered by up to
  ``mpi_backoff_jitter`` of itself to de-synchronize retry storms; after
  ``mpi_max_retries`` attempts the link-level reliable channel is
  assumed to push the message through.
* **Straggler detection** — a kernel that completes but took more than
  ``straggler_factor`` times its cost-model estimate is counted (and
  traced), feeding slow-CPE diagnostics.
* **Checkpoint cadence** — the recovery runner archives a UDA checkpoint
  every ``checkpoint_every`` timesteps; whole-rank failure restarts the
  step from the last archive on the surviving layout.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Tunable parameters of the recovery machinery."""

    #: Kernel timeout = max(floor, factor * expected duration).
    kernel_timeout_factor: float = 3.0
    kernel_timeout_floor: float = 500e-6
    #: Re-offload attempts before falling back to MPE execution.
    max_offload_retries: int = 2

    #: Dropped-message retransmission: base backoff, growth is 2**k.
    mpi_backoff_base: float = 100e-6
    #: Jitter fraction: each backoff is stretched by up to this fraction.
    mpi_backoff_jitter: float = 0.25
    #: Retransmissions before the reliable link pushes the message through.
    mpi_max_retries: int = 5

    #: A completed kernel slower than this multiple of its estimate is a
    #: straggler.
    straggler_factor: float = 2.0

    #: Timesteps between UDA checkpoints (recovery runner).
    checkpoint_every: int = 5

    def __post_init__(self) -> None:
        if self.kernel_timeout_factor <= 1.0:
            raise ValueError("kernel_timeout_factor must exceed 1 (else every kernel times out)")
        if self.kernel_timeout_floor < 0:
            raise ValueError("kernel_timeout_floor must be >= 0")
        if self.max_offload_retries < 0:
            raise ValueError("max_offload_retries must be >= 0")
        if self.mpi_backoff_base <= 0:
            raise ValueError("mpi_backoff_base must be positive")
        if self.mpi_backoff_jitter < 0:
            raise ValueError("mpi_backoff_jitter must be >= 0")
        if self.mpi_max_retries < 1:
            raise ValueError("mpi_max_retries must be >= 1")
        if self.straggler_factor <= 1.0:
            raise ValueError("straggler_factor must exceed 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

    def kernel_timeout(self, expected: float) -> float:
        """Seconds after which an offloaded kernel is declared hung."""
        return max(self.kernel_timeout_floor, self.kernel_timeout_factor * expected)

    def backoff(self, attempt: int, jitter_draw: float) -> float:
        """Retransmission wait before attempt ``attempt`` (1-based)."""
        base = self.mpi_backoff_base * (2.0 ** (attempt - 1))
        return base * (1.0 + self.mpi_backoff_jitter * jitter_draw)
