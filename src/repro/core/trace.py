"""Execution tracing: who was busy when, on which lane.

The asynchronous scheduler's entire value proposition is *overlap*:
CPE kernel execution concurrent with MPE-side communication and task
management.  The tracer records busy spans per ``(rank, lane)`` — lanes
are ``"mpe"`` and ``"cpe"`` — so tests can assert that overlap actually
happens (and that the synchronous mode has none), and the examples can
print Gantt-style timelines.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Span:
    """One busy interval."""

    rank: int
    lane: str
    name: str
    t0: float
    t1: float

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.t1 - self.t0


def merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals, sorted."""
    out: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def clip_intervals(
    merged: list[tuple[float, float]], lo: float, hi: float
) -> list[tuple[float, float]]:
    """Restrict a merged interval list to the window ``[lo, hi]``."""
    return [(max(a, lo), min(b, hi)) for a, b in merged if b > lo and a < hi]


def intersect_total(a: list[tuple[float, float]], b: list[tuple[float, float]]) -> float:
    """Total length of the intersection of two merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


class Tracer:
    """Collects spans; disabled tracers are free."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []

    def record(self, rank: int, lane: str, name: str, t0: float, t1: float) -> None:
        """Add a busy span (no-op when disabled)."""
        if self.enabled:
            self.spans.append(Span(rank, lane, name, t0, t1))

    # -- queries -----------------------------------------------------------------
    def spans_for(self, rank: int, lane: str | None = None) -> list[Span]:
        """Spans of one rank, optionally filtered by lane, time-ordered."""
        out = [
            s
            for s in self.spans
            if s.rank == rank and (lane is None or s.lane == lane)
        ]
        return sorted(out, key=lambda s: (s.t0, s.t1))

    def busy_time(self, rank: int, lane: str) -> float:
        """Total (union) busy seconds on one lane."""
        merged = merge_intervals([(s.t0, s.t1) for s in self.spans_for(rank, lane)])
        return sum(hi - lo for lo, hi in merged)

    def overlap_time(self, rank: int, lane_a: str = "mpe", lane_b: str = "cpe") -> float:
        """Seconds during which *both* lanes were busy — the paper's overlap."""
        a = merge_intervals([(s.t0, s.t1) for s in self.spans_for(rank, lane_a)])
        b = merge_intervals([(s.t0, s.t1) for s in self.spans_for(rank, lane_b)])
        return intersect_total(a, b)

    def summarize(self, rank: int | None = None) -> dict[tuple[str, str], dict]:
        """Aggregate spans by ``(activity, lane)``: count, total, mean.

        Activity names like ``mpe-part:timeAdvance@p3`` are folded to
        their prefix (``mpe-part``) plus the task name (``timeAdvance``),
        so per-task-kind totals come out directly — the runtime's
        answer to "where did the MPE time go?".  The lane is part of the
        key: the same activity name on the ``mpe`` and ``cpe`` lanes is
        two distinct entries, never silently merged.
        """
        out: dict[tuple[str, str], dict] = {}
        for s in self.spans:
            if rank is not None and s.rank != rank:
                continue
            name = s.name
            if ":" in name:
                prefix, detail = name.split(":", 1)
                name = f"{prefix}:{detail.split('@', 1)[0]}"
            elif "@" in name:  # bare kernel spans like "timeAdvance@p3"
                name = name.split("@", 1)[0]
            entry = out.setdefault(
                (name, s.lane), {"count": 0, "total": 0.0, "lane": s.lane}
            )
            entry["count"] += 1
            entry["total"] += s.duration
        for entry in out.values():
            entry["mean"] = entry["total"] / entry["count"]
        return out

    def to_chrome_trace(self) -> list[dict]:
        """Spans in Chrome tracing format (load in chrome://tracing or
        Perfetto): one "process" per rank, one "thread" per lane,
        microsecond timestamps.  ``process_name`` metadata labels each
        pid as ``rank N`` in Perfetto's track list, and span events are
        emitted in ``(ts, pid, tid)`` order so two traces of the same
        run diff cleanly."""
        lanes = sorted({(s.rank, s.lane) for s in self.spans})
        tid_of = {key: i for i, key in enumerate(lanes)}
        events: list[dict] = []
        for rank in sorted({r for r, _lane in lanes}):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": rank,
                    "tid": 0,
                    "args": {"name": f"rank {rank}"},
                }
            )
        for (rank, lane), tid in tid_of.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        spans = sorted(self.spans, key=lambda s: (s.t0, s.rank, tid_of[(s.rank, s.lane)], s.t1))
        for s in spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.lane,
                    "ph": "X",
                    "pid": s.rank,
                    "tid": tid_of[(s.rank, s.lane)],
                    "ts": s.t0 * 1e6,
                    "dur": s.duration * 1e6,
                }
            )
        return events

    def timeline(self, rank: int, width: int = 72) -> str:
        """ASCII Gantt chart of one rank (for examples/debugging)."""
        spans = self.spans_for(rank)
        if not spans:
            return f"rank {rank}: (no spans)"
        t0 = min(s.t0 for s in spans)
        t1 = max(s.t1 for s in spans)
        scale = (t1 - t0) or 1.0
        lines = [f"rank {rank}: {t0:.6f}s .. {t1:.6f}s"]
        for lane in sorted({s.lane for s in spans}):
            row = [" "] * width
            for s in self.spans_for(rank, lane):
                lo = int((s.t0 - t0) / scale * (width - 1))
                hi = max(int((s.t1 - t0) / scale * (width - 1)), lo)
                for x in range(lo, hi + 1):
                    row[x] = "#" if lane == "cpe" else "="
            lines.append(f"  {lane:>4} |{''.join(row)}|")
        return "\n".join(lines)
