"""Unit tests of the fault injector: determinism, config validation."""

import pytest

from repro.faults import FaultConfig, FaultInjector, RankFailure


def drain_kernel(inj, n=200):
    return [inj.kernel_fault(0, f"k{i}", 1e-3, float(i)) for i in range(n)]


def drain_messages(inj, n=200):
    return [inj.message_fault(0, 1, 4096, float(i)) for i in range(n)]


# ---------------------------------------------------------------- determinism
def test_kernel_fault_stream_is_seed_deterministic():
    cfg = FaultConfig(
        seed=11, kernel_slowdown_prob=0.2, kernel_stuck_prob=0.1, dma_error_prob=0.1
    )
    a, b = FaultInjector(cfg), FaultInjector(cfg)
    assert drain_kernel(a) == drain_kernel(b)
    assert a.injected == b.injected
    assert a.injected  # the probabilities are high enough to fire


def test_message_fault_stream_is_seed_deterministic():
    cfg = FaultConfig(seed=3, msg_drop_prob=0.1, msg_dup_prob=0.1, msg_delay_prob=0.1)
    a, b = FaultInjector(cfg), FaultInjector(cfg)
    assert drain_messages(a) == drain_messages(b)
    assert a.injected == b.injected
    assert a.injected


def test_different_seeds_give_different_streams():
    def mk(s):
        return FaultConfig(seed=s, kernel_slowdown_prob=0.3)

    assert drain_kernel(FaultInjector(mk(1))) != drain_kernel(FaultInjector(mk(2)))


def test_categories_use_independent_streams():
    """Adding message faults must not perturb the kernel fault stream."""
    kernel_only = FaultConfig(seed=5, dma_error_prob=0.2)
    both = FaultConfig(seed=5, dma_error_prob=0.2, msg_drop_prob=0.5)
    a, b = FaultInjector(kernel_only), FaultInjector(both)
    drain_messages(b)  # consume the net stream first
    assert drain_kernel(a) == drain_kernel(b)


def test_inactive_categories_draw_nothing():
    inj = FaultInjector(FaultConfig(seed=0))
    assert drain_kernel(inj) == [None] * 200
    assert drain_messages(inj) == [None] * 200
    assert inj.injected == []
    assert inj.counts_by_kind() == {}


# ---------------------------------------------------------------- rank failure
def test_rank_failure_fires_once_at_the_right_step():
    inj = FaultInjector(FaultConfig(seed=0, fail_rank=1, fail_at_step=3))
    inj.on_step_begin(0, 3)  # other ranks live on
    inj.on_step_begin(1, 2)  # too early
    with pytest.raises(RankFailure) as exc:
        inj.on_step_begin(1, 3)
    assert exc.value.rank == 1 and exc.value.step == 3
    inj.on_step_begin(1, 4)  # one-shot: disarmed after firing
    assert inj.counts_by_kind() == {"rank_failure": 1}


def test_rank_failure_respects_step_offset():
    """Recovery segments renumber steps from 1; the offset restores the
    global step so a failure cannot re-fire after the restart."""
    inj = FaultInjector(FaultConfig(seed=0, fail_rank=0, fail_at_step=7))
    inj.step_offset = 5
    inj.on_step_begin(0, 1)  # global step 6
    with pytest.raises(RankFailure):
        inj.on_step_begin(0, 2)  # global step 7


def test_brownout_window_is_rng_free():
    cfg = FaultConfig(seed=0, brownout_rank=1, brownout_t0=1.0, brownout_t1=2.0)
    inj = FaultInjector(cfg)
    assert inj.message_fault(0, 1, 10, 0.5) is None  # before the window
    hit = inj.message_fault(1, 0, 10, 1.5)
    assert hit is not None and hit.slow_factor == cfg.brownout_factor
    assert inj.message_fault(2, 3, 10, 1.5) is None  # other ranks unaffected
    assert inj.message_fault(0, 1, 10, 2.0) is None  # window is half-open


# ---------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "kwargs",
    [
        {"kernel_stuck_prob": -0.1},
        {"msg_drop_prob": 1.5},
        {"kernel_slowdown_prob": 0.6, "kernel_stuck_prob": 0.6},
        {"msg_drop_prob": 0.5, "msg_dup_prob": 0.3, "msg_delay_prob": 0.3},
        {"kernel_slowdown_factor": 0.5, "kernel_slowdown_prob": 0.1},
        {"dma_error_frac": 0.0, "dma_error_prob": 0.1},
        {"fail_rank": 1},  # without fail_at_step
        {"fail_at_step": 5},  # without fail_rank
        {"fail_rank": 0, "fail_at_step": 0},  # steps number from 1
    ],
)
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


def test_can_hang_only_with_stuck_faults():
    assert not FaultConfig(dma_error_prob=0.5).can_hang
    assert FaultConfig(kernel_stuck_prob=0.01).can_hang
