"""The Sunway OpenACC offload interface — and why the paper rejects it.

Paper Sec. IV-B: "On a single computing node, OpenACC is supported to
allow the offload of computations to the cluster of CPEs ... However,
the Sunway OpenACC interface does not expose all the features of SW26010
and the current implementation does not support OpenACC runtime
functions such as ``acc_async_test``.  For this reason a more low-level
athreads interface is used here."

This facade models exactly that contract on top of the same simulated
CPE cluster: kernels can be launched (``parallel``) and joined
(``acc_wait``), but the non-blocking completion probe the asynchronous
scheduler needs is **absent** — :func:`acc_async_test` raises
``NotImplementedError``, as on the 2017 Sunway toolchain.  A scheduler
written against this interface can only ever be synchronous, which is
the architectural reason Sec. V builds on ``athread`` instead.
"""

from __future__ import annotations

import typing as _t

from repro.des import Simulator
from repro.sunway.athread import AthreadRuntime, OffloadHandle
from repro.sunway.config import CoreGroupConfig


class AccRegion:
    """A launched OpenACC parallel region (an opaque async handle)."""

    def __init__(self, handle: OffloadHandle):
        self._handle = handle

    # No completion probe on purpose: see the module docstring.


class SunwayOpenACC:
    """The (limited) OpenACC runtime of one core-group.

    Wraps the same simulated CPE cluster as
    :class:`~repro.sunway.athread.AthreadRuntime`, exposing only what
    Sunway's OpenACC implementation offered the paper's authors.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CoreGroupConfig | None = None,
        launch_latency: float = 25e-6,
    ):
        # OpenACC regions carry more launch overhead than raw athread
        # (argument marshalling through the compiler runtime).
        self._athread = AthreadRuntime(sim, config, launch_latency=launch_latency)
        self.sim = sim
        self._regions: list[AccRegion] = []

    def parallel(
        self,
        duration: float,
        on_complete: _t.Callable[[], None] | None = None,
        name: str | None = None,
    ) -> AccRegion:
        """Launch a parallel region on the CPE cluster (``#pragma acc``)."""
        region = AccRegion(
            self._athread.spawn(duration, on_complete=on_complete, name=name)
        )
        self._regions.append(region)
        return region

    def acc_wait(self, region: AccRegion):
        """Block until ``region`` completes (``acc_wait``).

        DES usage: ``yield acc.acc_wait(region)``.
        """
        return region._handle.event

    def acc_wait_all(self):
        """Block until every launched region completes."""
        events = [r._handle.event for r in self._regions]
        return self.sim.all_of(events)

    def acc_async_test(self, region: AccRegion) -> bool:
        """Non-blocking completion probe — NOT available on Sunway.

        The paper's stated reason for dropping OpenACC: without this
        call, the MPE cannot poll a kernel and do other work meanwhile,
        so no asynchronous scheduler can be built on this interface.
        """
        raise NotImplementedError(
            "Sunway's OpenACC implementation does not support acc_async_test "
            "(paper Sec. IV-B); use the athread interface for asynchronous "
            "scheduling"
        )
