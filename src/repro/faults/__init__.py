"""Fault injection and resilience for the simulated Sunway runtime.

The paper's scheduler assumes a fault-free machine: the MPE polls a CPE
completion flag that is always eventually bumped and posts MPI operations
that always complete.  At production scale that assumption breaks — CPEs
hang, DMA transfers error out, the interconnect drops or delays messages,
whole nodes die mid-run.  This package makes those scenarios *simulable
and deterministic*:

* :class:`~repro.faults.injector.FaultInjector` — a seedable fault
  source plugged into the DES clock.  Same seed, same configuration ⇒
  bit-identical fault event stream.
* :class:`~repro.faults.policies.ResiliencePolicy` — the knobs of the
  scheduler-side recovery machinery (kernel completion timeouts, bounded
  re-offload, MPE fallback, MPI retransmission backoff, straggler
  thresholds, checkpoint cadence).
* :class:`~repro.faults.report.ResilienceReport` — what happened: faults
  injected, retries, recoveries, overhead against a fault-free run.
* :class:`~repro.faults.recovery.ResilientRunner` — a checkpointed driver
  around :class:`~repro.core.controller.SimulationController` that
  survives whole-rank failure by restarting the step from the last
  UDA checkpoint on the surviving layout.

See ``docs/MODEL.md`` ("Fault model and resilience") for the model and
``examples/fault_tolerance.py`` for an end-to-end demo.
"""

from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    InjectedFault,
    KernelFault,
    MessageFault,
    RankFailure,
)
from repro.faults.policies import ResiliencePolicy
from repro.faults.report import ResilienceReport

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "KernelFault",
    "MessageFault",
    "RankFailure",
    "ResiliencePolicy",
    "ResilienceReport",
]
