"""Integration tests for the Sunway scheduler: modes, overlap, pipelining.

These exercise the paper's central mechanisms end-to-end on small grids:
the asynchronous mode overlaps MPE work with CPE kernels, the synchronous
mode does not, results are identical either way, and failures surface as
errors instead of hangs.
"""

import numpy as np
import pytest

from repro.burgers import BurgersProblem, solution_errors
from repro.core.controller import SimulationController
from repro.core.costs import SunwayCostModel
from repro.core.grid import Grid
from repro.core.schedulers import (
    AsyncScheduler,
    MPEOnlyScheduler,
    SyncScheduler,
    SunwayScheduler,
)
from repro.core.schedulers.base import DeadlockError
from repro.core.task import Task, TaskKind
from repro.core.taskgraph import TaskGraph
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost


def run_burgers(num_ranks=2, mode="async", nsteps=3, extent=(16, 16, 16),
                layout=(2, 2, 2), trace=False, real=True, **kw):
    grid = Grid(extent=extent, layout=layout)
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(),
        num_ranks=num_ranks, mode=mode, real=real, trace_enabled=trace, **kw,
    )
    res = ctl.run(nsteps=nsteps, dt=prob.stable_dt())
    return grid, prob, res


def collect_field(res):
    out = {}
    for dw in res.final_dws:
        for var in dw.grid_variables():
            out[var.patch.patch_id] = var.interior.copy()
    return out


# -- mode equivalence (out-of-order execution must not change results) -------------

def test_results_identical_across_modes_and_ranks():
    ref = collect_field(run_burgers(1, "async")[2])
    for num_ranks, mode in [(2, "async"), (4, "async"), (4, "sync"), (2, "mpe_only")]:
        got = collect_field(run_burgers(num_ranks, mode)[2])
        assert set(got) == set(ref)
        for pid in ref:
            assert np.array_equal(ref[pid], got[pid]), (num_ranks, mode, pid)


def test_mode_subclasses_pin_modes():
    assert AsyncScheduler.__mro__[1] is SunwayScheduler
    grid, prob, res = run_burgers(1, "async", nsteps=1)
    # constructing via subclasses
    from repro.des import Simulator
    from repro.simmpi import Fabric, Comm
    from repro.sunway.athread import AthreadRuntime
    from repro.core.loadbalancer import LoadBalancer

    sim = Simulator()
    fabric = Fabric(sim, 1)
    assignment = LoadBalancer().assign(grid, 1)
    graph = TaskGraph(grid, prob.tasks(), assignment, 1)
    args = (sim, 0, graph, Comm(fabric, 0), AthreadRuntime(sim), SunwayCostModel())
    assert AsyncScheduler(*args).mode == "async"
    assert SyncScheduler(*args).mode == "sync"
    assert MPEOnlyScheduler(*args).mode == "mpe_only"
    with pytest.raises(ValueError):
        SunwayScheduler(*args, mode="warp")


# -- overlap mechanics ---------------------------------------------------------------

def test_async_overlaps_mpe_and_cpe():
    """The async scheduler's MPE lane must be busy while kernels run."""
    _, _, res = run_burgers(1, "async", nsteps=3, extent=(32, 32, 32), trace=True)
    overlap = res.trace.overlap_time(0, "mpe", "cpe")
    assert overlap > 0
    # a meaningful share of MPE work hides under kernels
    assert overlap > 0.05 * res.trace.busy_time(0, "mpe")


def test_sync_mode_has_no_mpe_cpe_overlap():
    _, _, res = run_burgers(1, "sync", nsteps=3, extent=(32, 32, 32), trace=True)
    assert res.trace.overlap_time(0, "mpe", "cpe") == pytest.approx(0.0, abs=1e-12)
    # but it did spin
    spins = res.trace.spans_for(0, "spin")
    assert spins


def test_async_not_slower_than_sync():
    _, _, async_res = run_burgers(2, "async", nsteps=4)
    _, _, sync_res = run_burgers(2, "sync", nsteps=4)
    assert async_res.time_per_step <= sync_res.time_per_step * 1.001


def test_sync_spin_wait_accounted():
    _, _, res = run_burgers(1, "sync", nsteps=2)
    assert res.stats.spin_wait > 0
    _, _, res_a = run_burgers(1, "async", nsteps=2)
    assert res_a.stats.spin_wait == 0.0


def test_mpe_only_runs_no_offloads():
    _, _, res = run_burgers(1, "mpe_only", nsteps=2)
    assert res.stats.kernels_offloaded == 0
    assert res.stats.kernels_on_mpe == 2 * 8  # 8 patches x 2 steps


def test_offload_counts():
    _, _, res = run_burgers(2, "async", nsteps=3)
    assert res.stats.kernels_offloaded == 3 * 8


# -- communication pipelining ------------------------------------------------------

def test_cross_step_messages_flow():
    _, _, res = run_burgers(4, "async", nsteps=3)
    # 8 patches, 24 directed neighbour pairs; with 4 SFC ranks of 2x1x1
    # blobs some pairs are local. All steps exchange.
    assert res.stats.messages_sent > 0
    # the final step's cross-step sends target step nsteps+1 and are
    # never consumed: exactly one step's worth of messages stays unmatched
    per_step = res.stats.messages_sent // (res.nsteps + 1)
    assert res.stats.messages_received == res.stats.messages_sent - per_step
    assert res.stats.local_copies > 0


def test_interference_debt_only_in_async_mode():
    """Vectorized async runs carry interference debt; sync runs don't."""
    cm = SunwayCostModel(simd=True)
    _, _, a = run_burgers(1, "async", nsteps=2, extent=(32, 32, 32), trace=True,
                          cost_model=cm)
    spans = [s for s in a.trace.spans_for(0, "cpe") if "interference" in s.name]
    assert spans, "async+simd should record interference extensions"
    _, _, s = run_burgers(1, "sync", nsteps=2, extent=(32, 32, 32), trace=True,
                          cost_model=SunwayCostModel(simd=True))
    assert not [x for x in s.trace.spans_for(0, "cpe") if "interference" in x.name]


# -- reductions ------------------------------------------------------------------------

def test_reduction_value_agrees_with_direct_computation():
    grid, prob, res = run_burgers(4, "async", nsteps=2)
    field = collect_field(res)
    expect = max(float(np.abs(v).max()) for v in field.values())
    for dw in res.final_dws:
        assert dw.get_reduction(prob.norm_label) == pytest.approx(expect, rel=1e-12)


def test_reduction_identical_across_rank_counts():
    _, prob, r1 = run_burgers(1, "async", nsteps=2)
    _, _, r4 = run_burgers(4, "async", nsteps=2)
    v1 = r1.final_dws[0].get_reduction(prob.norm_label)
    v4 = r4.final_dws[0].get_reduction(prob.norm_label)
    assert v1 == v4


# -- readiness tracking -----------------------------------------------------------------

class _StubGraph:
    """Graph facade with only what ReadinessTracker reads."""

    def __init__(self, deps):
        self.internal_deps = deps

    def recvs_for(self, dt):
        return ()

    def copies_for(self, dt):
        return ()


class _StubTask:
    def __init__(self, dt_id):
        self.dt_id = dt_id


def _tracker(num_tasks, deps=None, **kw):
    from repro.core.schedulers.base import ReadinessTracker

    tasks = [_StubTask(i) for i in range(num_tasks)]
    deps = deps if deps is not None else {i: set() for i in range(num_tasks)}
    return ReadinessTracker(tasks, _StubGraph(deps), **kw), tasks


def test_pop_ready_key_selects_highest_score():
    tracker, _ = _tracker(4)
    scores = {0: 1.0, 1: 5.0, 2: 5.0, 3: 2.0}
    # highest score wins; the 1-vs-2 tie keeps queue order (task 1 first)
    picked = tracker.pop_ready(lambda d: True, key=lambda d: scores[d.dt_id])
    assert picked.dt_id == 1
    picked = tracker.pop_ready(lambda d: True, key=lambda d: scores[d.dt_id])
    assert picked.dt_id == 2
    # without a key: plain FIFO over the remaining tasks
    assert tracker.pop_ready(lambda d: True).dt_id == 0
    # predicate filters regardless of key
    assert tracker.pop_ready(lambda d: d.dt_id == 99, key=lambda d: 0) is None
    assert tracker.pop_ready(lambda d: True).dt_id == 3
    assert not tracker.any_ready


def test_release_below_zero_raises():
    """Over-releasing a task is a task-graph bug and must not pass silently."""
    tracker, _ = _tracker(1)
    with pytest.raises(RuntimeError, match="negative"):
        tracker.release(0)  # task 0 had no blockers to begin with


def test_on_ready_hook_fires_once_per_task():
    seen = []
    tracker, _ = _tracker(
        2, deps={0: set(), 1: {0}}, on_ready=lambda dt: seen.append(dt.dt_id)
    )
    assert seen == [0]  # zero-blocker task is ready at construction
    tracker.release(1)
    assert seen == [0, 1]


# -- failure handling -------------------------------------------------------------------

def test_deadlock_detected_not_hung():
    """A corrupted graph (impossible blocker) raises DeadlockError."""
    grid = Grid(extent=(8, 8, 8), layout=(1, 1, 1))
    prob = BurgersProblem(grid, with_reduction=False)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=1, mode="async", real=True
    )
    # sabotage: pretend the only task has an extra never-satisfied blocker
    dt0 = ctl.graph.detailed_tasks[0]
    ctl.graph.internal_deps[dt0.dt_id].add(9999)
    ctl.graph.internal_deps[9999] = set()
    with pytest.raises(DeadlockError):
        ctl.run(nsteps=1, dt=1e-4)


def test_kernel_exception_propagates():
    """A raising task action surfaces as the original exception."""
    grid = Grid(extent=(8, 8, 8), layout=(1, 1, 1))

    def bad_action(ctx):
        raise FloatingPointError("NaN in kernel")

    task = Task(
        "explode",
        kind=TaskKind.CPE_KERNEL,
        action=bad_action,
        kernel_cost=KernelCost(stencil_flops=1, exp_calls=0),
    )
    task.requires_(VarLabel("u"), dw="old", ghosts=0).computes_(VarLabel("u"))
    prob = BurgersProblem(grid, with_reduction=False)
    ctl = SimulationController(
        grid, [task], prob.init_tasks(), num_ranks=1, mode="async", real=True
    )
    with pytest.raises(FloatingPointError, match="NaN in kernel"):
        ctl.run(nsteps=1, dt=1e-4)


# -- numerics through the full stack ------------------------------------------------------

def test_solution_error_small_and_decreasing_with_resolution():
    errs = {}
    for n in (8, 16):
        grid = Grid(extent=(n, n, n), layout=(2, 2, 2))
        prob = BurgersProblem(grid)
        ctl = SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=2, mode="async", real=True
        )
        dt = prob.stable_dt()
        res = ctl.run(nsteps=4, dt=dt)
        errs[n] = solution_errors(grid, res.final_dws, prob.u_label, t=res.sim_time)
    assert errs[16]["l2"] < errs[8]["l2"]
