"""Patch-to-rank assignment.

"Distribute tasks among different computing nodes (or processes) with the
help from the load balancer" (paper Sec. V-C step 2).  Uintah's production
load balancer orders patches along a space-filling curve and cuts the
curve into contiguous, equally-weighted chunks; with the paper's uniform
patches this reduces to equal-count chunks.  Three strategies are
provided; all are deterministic.
"""

from __future__ import annotations

from repro.core.grid import Grid


def _morton_key(index: tuple[int, int, int]) -> int:
    """Interleave the bits of a 3-D patch index (Morton / Z-order)."""
    key = 0
    ix, iy, iz = index
    for bit in range(21):  # 2^21 patches per axis is beyond any layout here
        key |= ((ix >> bit) & 1) << (3 * bit)
        key |= ((iy >> bit) & 1) << (3 * bit + 1)
        key |= ((iz >> bit) & 1) << (3 * bit + 2)
    return key


class LoadBalancer:
    """Assigns every patch of a grid to a rank.

    Strategies
    ----------
    ``"block"``
        Contiguous chunks of the patch-id ordering (x-major).
    ``"roundrobin"``
        Patch ``i`` goes to rank ``i % num_ranks``.
    ``"sfc"``
        Contiguous chunks along a Morton space-filling curve — the
        closest analogue of Uintah's production assignment, keeping each
        rank's patches spatially compact (fewer remote faces).
    """

    STRATEGIES = ("block", "roundrobin", "sfc")

    def __init__(self, strategy: str = "sfc"):
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; pick from {self.STRATEGIES}")
        self.strategy = strategy

    def assign(
        self,
        grid: Grid,
        num_ranks: int,
        weights: dict[int, float] | None = None,
    ) -> dict[int, int]:
        """Return ``{patch_id: rank}`` covering every patch of ``grid``.

        ``weights`` (optional, ``{patch_id: cost}``) enables Uintah-style
        weighted balancing: the block and SFC strategies cut the patch
        ordering into contiguous chunks of approximately equal total
        weight instead of equal count.  The paper's evaluation uses
        uniform patches, i.e. no weights.
        """
        if num_ranks < 1:
            raise ValueError(f"need >= 1 rank, got {num_ranks}")
        if num_ranks > grid.num_patches:
            raise ValueError(
                f"{num_ranks} ranks but only {grid.num_patches} patches: the paper "
                "schedules at least one patch per CG"
            )
        patches = grid.patches()
        if weights is not None:
            missing = [p.patch_id for p in patches if p.patch_id not in weights]
            if missing:
                raise ValueError(f"weights missing for patches {missing[:5]}")
            if any(weights[p.patch_id] <= 0 for p in patches):
                raise ValueError("patch weights must be positive")
        if self.strategy == "roundrobin":
            return {p.patch_id: i % num_ranks for i, p in enumerate(patches)}
        if self.strategy == "sfc":
            order = sorted(patches, key=lambda p: _morton_key(p.index))
        else:  # block
            order = patches

        assignment: dict[int, int] = {}
        if weights is None:
            n = len(order)
            for pos, patch in enumerate(order):
                # equal-count contiguous chunks along the curve
                assignment[patch.patch_id] = min(pos * num_ranks // n, num_ranks - 1)
            return assignment

        # weighted: walk the curve, advancing the rank whenever its share
        # of the total weight is consumed (Uintah's curve-cutting)
        total = sum(weights[p.patch_id] for p in order)
        target = total / num_ranks
        rank = 0
        acc = 0.0
        remaining_patches = len(order)
        for patch in order:
            must_leave = (num_ranks - rank - 1) >= remaining_patches
            if (acc >= target and rank < num_ranks - 1) or must_leave:
                rank += 1
                acc = 0.0
            assignment[patch.patch_id] = rank
            acc += weights[patch.patch_id]
            remaining_patches -= 1
        return assignment

    @staticmethod
    def rank_patches(assignment: dict[int, int], rank: int) -> list[int]:
        """Patch ids owned by ``rank``, ascending."""
        return sorted(pid for pid, r in assignment.items() if r == rank)

    @staticmethod
    def load_counts(assignment: dict[int, int], num_ranks: int) -> list[int]:
        """Patches per rank (for balance assertions)."""
        counts = [0] * num_ranks
        for r in assignment.values():
            counts[r] += 1
        return counts
