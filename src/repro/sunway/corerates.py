"""Throughput model for kernel execution on the MPE and the CPE cluster.

This module turns *work descriptions* into *simulated seconds*.  It models
the mechanisms the paper's evaluation hinges on:

* **CPE compute**: effective per-CPE scalar throughput, with SIMD speeding
  up the stencil part close to the 4-wide ideal but the software
  exponentials much less (they vectorize poorly), so the overall SIMD
  speedup lands in the paper's observed 1.3-2.2x once DMA and per-task
  overheads are added.
* **DMA**: every tile pays chunked mem<->LDM transfers via
  :class:`~repro.sunway.dma.DMAEngine`; chunk counts depend on how the
  tile cuts across patch rows (tiles spanning the whole patch width
  transfer whole contiguous planes, interior tiles pay per-row descriptor
  costs — the motivation for the paper's "pack the tiles" future work).
* **MPE compute**: the MPE is a single cached core; kernels whose stencil
  working set (three xy-planes) falls out of the L2 cache stream from
  DDR and lose throughput.  This is why the paper's offload boost grows
  from 2.7x (small patches, cache-friendly MPE baseline) to 6.0x (large
  patches, cache-hostile baseline).

Calibrated default *rates* live in :mod:`repro.harness.calibration`; this
module defines the formulas and the vocabulary
(:class:`KernelCost`, :class:`CoreRates`, :class:`TileWork`).
"""

from __future__ import annotations

import dataclasses

from repro.sunway.dma import DMAEngine
from repro.sunway.fastmath import exp_flops


@dataclasses.dataclass(frozen=True)
class KernelCost:
    """Per-cell cost description of a numerical kernel.

    The Burgers kernel's values (Sec. III-A of the paper) are ~95
    non-exponential flops and 6 exponentials per cell, 16 bytes of
    compulsory main-memory traffic per cell.
    """

    #: Non-exponential flops per cell (stencil + phi arithmetic).
    stencil_flops: int
    #: Exponential evaluations per cell.
    exp_calls: int
    #: Compulsory main-memory bytes read per cell.
    bytes_read: int = 8
    #: Compulsory main-memory bytes written per cell.
    bytes_written: int = 8

    def flops_per_cell(self, fast_exp: bool = True) -> int:
        """Counted flops per cell under the chosen exp library."""
        return self.stencil_flops + self.exp_calls * exp_flops(fast_exp)

    @property
    def bytes_per_cell(self) -> int:
        """Compulsory memory traffic per cell."""
        return self.bytes_read + self.bytes_written

    def arithmetic_intensity(self, fast_exp: bool = True) -> float:
        """Flops per compulsory byte (paper Sec. III-A: ~19.4 for Burgers)."""
        return self.flops_per_cell(fast_exp) / self.bytes_per_cell


@dataclasses.dataclass(frozen=True)
class TileWork:
    """The DMA/compute work of one LDM tile, as seen by one CPE."""

    #: Interior cells computed by the tile.
    cells: int
    #: Bytes DMA'd main memory -> LDM (tile plus ghost halo).
    get_bytes: int
    #: Bytes DMA'd LDM -> main memory (tile interior results).
    get_chunks: int
    #: Contiguous chunks of the inbound transfer.
    put_bytes: int
    #: Contiguous chunks of the outbound transfer.
    put_chunks: int


@dataclasses.dataclass(frozen=True)
class CoreRates:
    """Calibrated effective throughputs for one core-group.

    All rates are *effective sustained* values for stencil-class kernels,
    far below architectural peak — the paper itself lands at ~1% of peak
    (Sec. VII-E), which is what these defaults reproduce.
    """

    #: Effective scalar flop/s of one CPE running the kernel from LDM.
    cpe_scalar_flops: float = 70e6
    #: SIMD speedup of the stencil (non-exp) part of the kernel.
    simd_stencil_speedup: float = 3.6
    #: SIMD speedup of the software-exponential part (vectorizes poorly).
    simd_exp_speedup: float = 2.0
    #: Effective flop/s of the MPE when the stencil working set is cached.
    mpe_flops_cached: float = 1.05e9
    #: Effective flop/s of the MPE when streaming from DDR (large patches).
    mpe_flops_streaming: float = 0.62e9
    #: MPE L2 data cache capacity, bytes (256 KB on SW26010).
    mpe_l2_bytes: int = 256 * 1024
    #: MPE per-cell cost of packing/unpacking ghost faces into MPI buffers
    #: (data-warehouse lookup + iterator copy + marshalling on the 1.45 GHz
    #: in-order-ish MPE; Uintah DW operations are heavyweight).
    mpe_pack_s_per_cell: float = 200e-9
    #: MPE per-cell cost of a direct local (intra-rank) ghost copy.
    mpe_local_copy_s_per_cell: float = 70e-9

    # -- CPE side -------------------------------------------------------------
    def cpe_cell_compute_time(
        self, cost: KernelCost, simd: bool, fast_exp: bool = True
    ) -> float:
        """Seconds of pure compute per cell on one CPE."""
        t_stencil = cost.stencil_flops / self.cpe_scalar_flops
        t_exp = cost.exp_calls * exp_flops(fast_exp) / self.cpe_scalar_flops
        if simd:
            t_stencil /= self.simd_stencil_speedup
            t_exp /= self.simd_exp_speedup
        return t_stencil + t_exp

    def tile_time(
        self,
        work: TileWork,
        cost: KernelCost,
        dma: DMAEngine,
        simd: bool,
        fast_exp: bool = True,
        async_dma: bool = False,
    ) -> float:
        """Seconds for one CPE to process one tile (get/compute/put)."""
        compute = work.cells * self.cpe_cell_compute_time(cost, simd, fast_exp)
        return dma.tile_cycle_time(
            get_bytes=work.get_bytes,
            put_bytes=work.put_bytes,
            compute_time=compute,
            get_chunks=work.get_chunks,
            put_chunks=work.put_chunks,
            async_dma=async_dma,
        )

    def cluster_kernel_time(
        self,
        per_cpe_tiles: list[list[TileWork]],
        cost: KernelCost,
        dma: DMAEngine,
        simd: bool,
        fast_exp: bool = True,
        async_dma: bool = False,
    ) -> float:
        """Seconds for the CPE cluster to finish a kernel offload.

        ``per_cpe_tiles[c]`` is the tile list assigned to CPE ``c``; the
        cluster finishes when its most-loaded CPE does (the paper's tile
        scheduler has no work stealing — Sec. V-D notes load imbalance
        among tiles is future work).
        """
        if not per_cpe_tiles:
            return 0.0
        worst = 0.0
        for tiles in per_cpe_tiles:
            t = 0.0
            for work in tiles:
                t += self.tile_time(work, cost, dma, simd, fast_exp, async_dma)
            worst = max(worst, t)
        return worst

    # -- MPE side ---------------------------------------------------------------
    def mpe_streaming_fraction(self, plane_bytes: int) -> float:
        """How cache-hostile a patch is for the MPE's k-direction reuse.

        A k-sweep stencil needs ~3 xy-planes resident for the ``k-1``/
        ``k+1`` neighbours to hit in cache.  Returns 0 when three planes
        fit comfortably in L2, 1 when they decisively do not, with a
        linear ramp in between (a standard capacity-miss model).
        """
        need = 3 * plane_bytes
        lo = 0.5 * self.mpe_l2_bytes  # comfortable fit
        hi = 1.5 * self.mpe_l2_bytes  # decisively thrashing
        if need <= lo:
            return 0.0
        if need >= hi:
            return 1.0
        return (need - lo) / (hi - lo)

    def mpe_effective_flops(self, plane_bytes: int) -> float:
        """Effective MPE flop/s for a patch with xy-planes of ``plane_bytes``."""
        f = self.mpe_streaming_fraction(plane_bytes)
        return self.mpe_flops_cached * (1 - f) + self.mpe_flops_streaming * f

    def mpe_kernel_time(
        self,
        cells: int,
        plane_bytes: int,
        cost: KernelCost,
        fast_exp: bool = True,
    ) -> float:
        """Seconds for the MPE alone to run the kernel on ``cells`` cells."""
        rate = self.mpe_effective_flops(plane_bytes)
        return cells * cost.flops_per_cell(fast_exp) / rate

    def pack_time(self, cells: int, remote: bool) -> float:
        """Seconds for the MPE to pack/unpack ``cells`` ghost cells."""
        per = self.mpe_pack_s_per_cell if remote else self.mpe_local_copy_s_per_cell
        return cells * per
