"""The tiled, manually vectorized Burgers kernel (paper Algorithm 2).

This is the CPE-style implementation: the patch is cut into LDM-sized
tiles (Sec. VI-A), each tile's ghosted working set is staged through a
real capacity-checked :class:`~repro.sunway.ldm.LDM` allocation
(``athread_get``), the x-direction inner loop is unrolled by the SIMD
width of 4 using the intrinsics emulation of :mod:`repro.sunway.simd`
(``SIMD_LOADU`` / ``SIMD_VMAD`` / ...), and results are written back
(``athread_put``).

Numerics are arranged to match :func:`repro.burgers.kernel.apply_kernel`
bitwise: identical operation order, identical coefficient evaluation —
on SW26010 too, the vector lanes are ordinary IEEE doubles and
vectorization changes speed, not results.  Tests assert the equality.

This kernel is exercised by tests and examples; large real-numerics runs
use the NumPy kernel, and pure performance runs use the cost model — all
three describe the same computation.
"""

from __future__ import annotations

import numpy as np

from repro.burgers.phi import phi, NU
from repro.core.grid import Grid
from repro.core.tiling import TilePlan
from repro.core.variables import CCVariable
from repro.sunway.fastmath import ieee_exp
from repro.sunway.ldm import LDM
from repro.sunway import simd


def _phi_scalar(grid: Grid, axis: int, global_index: int, t: float, nu: float, exp) -> float:
    x = grid.domain_low[axis] + (global_index + 0.5) * grid.spacing[axis]
    return float(phi(x, t, nu, exp))


def _kernel_row_simd(
    row_c, row_xm, row_xp, row_ym, row_yp, row_zm, row_zp, row_out,
    px_row, pyj, pzk, dx, dy, dz, nu, dt,
):
    """One x-row of a tile: 4-wide vector main loop + scalar remainder."""
    n = row_c.shape[0]
    dx_b = simd.simd_loade(dx)
    dy_b = simd.simd_loade(dy)
    dz_b = simd.simd_loade(dz)
    dx2_b = simd.simd_loade(dx * dx)
    dy2_b = simd.simd_loade(dy * dy)
    dz2_b = simd.simd_loade(dz * dz)
    nu_b = simd.simd_loade(nu)
    dt_b = simd.simd_loade(dt)
    m2 = simd.simd_set(-2.0, -2.0, -2.0, -2.0)

    i = 0
    while i + simd.VECTOR_WIDTH <= n:
        c = simd.simd_loadu(row_c, i)
        xm = simd.simd_loadu(row_xm, i)
        xp = simd.simd_loadu(row_xp, i)
        ym = simd.simd_loadu(row_ym, i)
        yp = simd.simd_loadu(row_yp, i)
        zm = simd.simd_loadu(row_zm, i)
        zp = simd.simd_loadu(row_zp, i)
        px = simd.simd_loadu(px_row, i)
        py = simd.simd_loade(pyj)
        pz = simd.simd_loade(pzk)

        u_dudx = simd.simd_vdiv(simd.simd_vmuld(px, simd.simd_vsub(xm, c)), dx_b)
        u_dudy = simd.simd_vdiv(simd.simd_vmuld(py, simd.simd_vsub(ym, c)), dy_b)
        u_dudz = simd.simd_vdiv(simd.simd_vmuld(pz, simd.simd_vsub(zm, c)), dz_b)
        # d2udx2 = (-2*c + xm + xp) / dx^2, via VMAD as in the paper's listing
        d2x = simd.simd_vdiv(simd.simd_vadd(simd.simd_vmad(m2, c, xm), xp), dx2_b)
        d2y = simd.simd_vdiv(simd.simd_vadd(simd.simd_vmad(m2, c, ym), yp), dy2_b)
        d2z = simd.simd_vdiv(simd.simd_vadd(simd.simd_vmad(m2, c, zm), zp), dz2_b)

        adv = simd.simd_vadd(simd.simd_vadd(u_dudx, u_dudy), u_dudz)
        dif = simd.simd_vadd(simd.simd_vadd(d2x, d2y), d2z)
        du = simd.simd_vadd(adv, simd.simd_vmuld(nu_b, dif))
        out = simd.simd_vadd(c, simd.simd_vmuld(dt_b, du))
        simd.simd_storeu(row_out, i, out)
        i += simd.VECTOR_WIDTH

    while i < n:  # scalar epilogue for edge tiles
        c = row_c[i]
        u_dudx = px_row[i] * (row_xm[i] - c) / dx
        u_dudy = pyj * (row_ym[i] - c) / dy
        u_dudz = pzk * (row_zm[i] - c) / dz
        d2x = (-2.0 * c + row_xm[i] + row_xp[i]) / (dx * dx)
        d2y = (-2.0 * c + row_ym[i] + row_yp[i]) / (dy * dy)
        d2z = (-2.0 * c + row_zm[i] + row_zp[i]) / (dz * dz)
        du = (u_dudx + u_dudy + u_dudz) + nu * (d2x + d2y + d2z)
        row_out[i] = c + dt * du
        i += 1


def apply_kernel_simd(
    u_old: CCVariable,
    u_new: CCVariable,
    grid: Grid,
    t: float,
    dt: float,
    nu: float = NU,
    exp=ieee_exp,
    tile_shape: tuple[int, int, int] = (16, 16, 8),
    ldm_bytes: int = 64 * 1024,
) -> None:
    """One forward-Euler step on a patch, tiled and vectorized."""
    if u_old.ghosts < 1:
        raise ValueError("Burgers kernel needs one layer of ghost cells")
    patch = u_old.patch
    dx, dy, dz = grid.spacing
    plan = TilePlan(patch_extent=patch.extent, tile_shape=tile_shape, ghosts=1)
    src = u_old.data
    dst = u_new.interior

    for tile in plan.tiles():
        (lx, ly, lz), (hx, hy, hz) = plan.tile_region(tile)
        tx, ty, tz = hx - lx, hy - ly, hz - lz
        # "athread_get": stage ghosted tile into the LDM (capacity-checked)
        ldm = LDM(ldm_bytes)
        ldm.alloc_array("u", (tx + 2, ty + 2, tz + 2))
        ldm.alloc_array("u_new", (tx, ty, tz))
        tile_u = np.asfortranarray(src[lx : hx + 2, ly : hy + 2, lz : hz + 2])
        tile_out = np.zeros((tx, ty, tz), order="F")

        # phi coefficients at this tile's cell centres
        gx0 = patch.low[0] + lx
        px_row = np.ascontiguousarray(
            phi(
                grid.domain_low[0]
                + (np.arange(gx0, gx0 + tx, dtype=np.float64) + 0.5) * dx,
                t,
                nu,
                exp,
            )
        )
        for k in range(tz):
            pzk = _phi_scalar(grid, 2, patch.low[2] + lz + k, t, nu, exp)
            for j in range(ty):
                pyj = _phi_scalar(grid, 1, patch.low[1] + ly + j, t, nu, exp)
                J, K = j + 1, k + 1
                _kernel_row_simd(
                    np.ascontiguousarray(tile_u[1:-1, J, K]),
                    np.ascontiguousarray(tile_u[0:-2, J, K]),
                    np.ascontiguousarray(tile_u[2:, J, K]),
                    np.ascontiguousarray(tile_u[1:-1, J - 1, K]),
                    np.ascontiguousarray(tile_u[1:-1, J + 1, K]),
                    np.ascontiguousarray(tile_u[1:-1, J, K - 1]),
                    np.ascontiguousarray(tile_u[1:-1, J, K + 1]),
                    tile_out[:, j, k],
                    px_row,
                    pyj,
                    pzk,
                    dx,
                    dy,
                    dz,
                    nu,
                    dt,
                )
        # "athread_put": write the tile interior back
        dst[lx:hx, ly:hy, lz:hz] = tile_out
        ldm.reset()
