"""The paper's motivation, quantified (Sec. II "Challenges").

Uintah's Unified Scheduler needs many host threads to overlap
communication with computation; SW26010 offers one MPE per core-group.
This bench compares the Unified Scheduler at 1 and 16 host threads with
the paper's Sunway-specific schedulers at paper scale — the measurable
reason the port required "a new design".
"""

import functools

import pytest

from benchmarks.conftest import run_once
from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.schedulers.unified import UnifiedHostScheduler
from repro.harness import calibration
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import render_table, seconds


def run_case(scheduler_factory=None, mode="async", simd=False, cgs=8, nsteps=3):
    problem = problem_by_name("32x32x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid)
    controller = SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=cgs,
        mode=mode,
        real=False,
        cost_model=calibration.cost_model(simd=simd),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs() if scheduler_factory is None else {},
        scheduler_factory=scheduler_factory,
    )
    return controller.run(nsteps=nsteps, dt=1e-5).time_per_step


def sweep():
    return {
        "unified-16t": run_case(functools.partial(UnifiedHostScheduler, num_threads=16)),
        "unified-1t": run_case(functools.partial(UnifiedHostScheduler, num_threads=1)),
        "acc.sync": run_case(mode="sync"),
        "acc.async": run_case(mode="async"),
        "acc_simd.async": run_case(mode="async", simd=True),
    }


@pytest.mark.benchmark(group="motivation")
def test_motivation_unified_vs_sunway(benchmark, publish):
    results = run_once(benchmark, sweep)
    base = results["unified-1t"]
    rows = [(k, seconds(t), f"{base / t:.2f}x") for k, t in results.items()]
    publish(
        "motivation_unified",
        render_table(
            "Sec. II motivation: Unified Scheduler vs the Sunway port "
            "(32x32x512, 8 CGs)",
            ["Scheduler", "Time/step", "Speedup vs unified-1t"],
            rows,
        ),
    )

    # one MPE thread cannot overlap: unified-1t is the slowest
    assert all(results["unified-1t"] >= t for t in results.values())
    # the paper's async design recovers the offload factor (2.7-6.0x band)
    assert 2.0 < base / results["acc.async"] < 7.5
    # on a many-core host the Unified Scheduler is perfectly fine — the
    # problem is Sunway's host, not Uintah's scheduler
    assert results["unified-16t"] < results["acc.async"]
