"""Shared scheduler plumbing: stats, errors, readiness bookkeeping."""

from __future__ import annotations

import dataclasses


class DeadlockError(RuntimeError):
    """The scheduler ran out of runnable work with tasks still pending.

    Indicates a task-graph bug (missing producer, wrong assignment) — the
    runtime refuses to hang silently.
    """


@dataclasses.dataclass
class SchedulerStats:
    """Counters accumulated by one rank's scheduler across a run."""

    tasks_run: int = 0
    kernels_offloaded: int = 0
    kernels_on_mpe: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    local_copies: int = 0
    reductions: int = 0
    #: Simulated seconds the MPE spent blocked with nothing runnable.
    idle_wait: float = 0.0
    #: Simulated seconds the sync mode spent spinning on the flag.
    spin_wait: float = 0.0
    #: Old-DW variables scrubbed after their last consumer (memory reclaim).
    scrubbed: int = 0
    #: Counted kernel flops (perf-counter convention).
    kernel_flops: int = 0
    # -- resilience counters (all zero in a fault-free run) ---------------
    #: Offloaded kernels the completion-timeout watchdog gave up on.
    kernel_timeouts: int = 0
    #: Kernel re-offloads after a timeout or DMA error.
    kernel_retries: int = 0
    #: Kernels executed on the MPE after exhausting re-offload attempts.
    mpe_fallbacks: int = 0
    #: Retransmissions of dropped MPI messages (attributed to the sender).
    mpi_retries: int = 0
    #: Completed kernels slower than the policy's straggler threshold.
    stragglers_detected: int = 0
    #: Whole-rank failures recovered from a checkpoint (recovery runner).
    rank_recoveries: int = 0
    #: Timesteps re-executed because a failure discarded them.
    steps_replayed: int = 0

    def merge(self, other: "SchedulerStats") -> None:
        """Fold another rank's counters into this one."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


class ReadinessTracker:
    """Blocker counting for one timestep's local detailed tasks.

    A task becomes ready when its internal producers have completed,
    every incoming message has been unpacked, and every intra-rank ghost
    copy feeding it has been performed.
    """

    def __init__(self, local_tasks, graph):
        self.blockers: dict[int, int] = {}
        self.ready: list = []
        self._tasks = {dt.dt_id: dt for dt in local_tasks}
        for dt in local_tasks:
            n = len(graph.internal_deps[dt.dt_id])
            n += len(graph.recvs_for(dt))
            n += len(graph.copies_for(dt))
            self.blockers[dt.dt_id] = n
            if n == 0:
                self.ready.append(dt)

    def release(self, dt_id: int) -> None:
        """One blocker of ``dt_id`` resolved; enqueue when count hits zero."""
        if dt_id not in self.blockers:
            return  # consumer lives on another rank
        self.blockers[dt_id] -= 1
        if self.blockers[dt_id] == 0:
            self.ready.append(self._tasks[dt_id])
        elif self.blockers[dt_id] < 0:
            raise RuntimeError(f"blocker count of task {dt_id} went negative")

    def pop_ready(self, predicate, key=None) -> object | None:
        """Remove and return a ready task matching ``predicate``.

        ``key`` (optional) selects among the matches: the highest-scoring
        one is taken (ties keep queue order).  Without it, FIFO.
        """
        matches = [(i, dt) for i, dt in enumerate(self.ready) if predicate(dt)]
        if not matches:
            return None
        if key is None:
            i, dt = matches[0]
        else:
            i, dt = max(matches, key=lambda pair: key(pair[1]))
        self.ready.pop(i)
        return dt

    @property
    def any_ready(self) -> bool:
        """Whether any task is currently runnable."""
        return bool(self.ready)
