"""Ablation: the exponential-library choice (paper Sec. VI-C).

"As the IEEE conforming library proved to be slow in tests, the fast
library was used.  While this introduces some inaccuracy it does not
greatly impact this benchmark."  Both halves are measurable here: the
performance gap from the cost model, and the accuracy impact from real
numerics.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.harness import calibration
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import render_table, seconds


def perf_case(fast_exp: bool) -> float:
    problem = problem_by_name("32x32x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid)
    ctl = SimulationController(
        grid, burgers.tasks(), burgers.init_tasks(),
        num_ranks=8, mode="async", real=False,
        cost_model=calibration.cost_model(simd=True, fast_exp=fast_exp),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    )
    return ctl.run(nsteps=3, dt=1e-5).time_per_step


def accuracy_case() -> float:
    """Max relative solution difference, fast vs IEEE exp, real numerics."""
    outs = {}
    for fast in (False, True):
        grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
        burgers = BurgersProblem(grid, fast_exp=fast, with_reduction=False)
        ctl = SimulationController(
            grid, burgers.tasks(), burgers.init_tasks(), num_ranks=2, real=True
        )
        res = ctl.run(nsteps=5, dt=burgers.stable_dt())
        outs[fast] = np.concatenate(
            [v.interior.ravel() for dw in res.final_dws for v in dw.grid_variables()]
        )
    denom = np.maximum(np.abs(outs[False]), 1e-300)
    return float((np.abs(outs[True] - outs[False]) / denom).max())


def sweep():
    return {
        "fast_time": perf_case(fast_exp=True),
        "ieee_time": perf_case(fast_exp=False),
        "max_rel_diff": accuracy_case(),
    }


@pytest.mark.benchmark(group="ablation-exp")
def test_ablation_exponential_library(benchmark, publish):
    r = run_once(benchmark, sweep)
    slowdown = r["ieee_time"] / r["fast_time"]
    publish(
        "ablation_exp",
        render_table(
            "Ablation: exponential library (Sec. VI-C), 32x32x512, 8 CGs, simd.async",
            ["Quantity", "Value"],
            [
                ("fast library time/step", seconds(r["fast_time"])),
                ("IEEE library time/step", seconds(r["ieee_time"])),
                ("IEEE slowdown", f"{slowdown:.2f}x"),
                ("max relative solution difference", f"{r['max_rel_diff']:.2e}"),
            ],
        ),
    )
    # "proved to be slow": the exponential-heavy kernel suffers visibly
    assert slowdown > 1.3
    # "does not greatly impact": far below discretization error (~1e-2)
    assert r["max_rel_diff"] < 1e-3
