"""Setuptools shim.

The offline environment this project targets ships setuptools without the
``wheel`` package, which breaks PEP 517 editable installs
(``error: invalid command 'bdist_wheel'``).  This shim keeps the classic
path working::

    python setup.py develop   # editable install without wheel
    pip install -e . --no-build-isolation   # where wheel is available

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
