"""Fixed-width text rendering for the regenerated tables and figures."""

from __future__ import annotations

import typing as _t


def render_table(
    title: str,
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[object]],
) -> str:
    """Render an aligned text table with a title rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    for n, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if n == 0:
            lines.append("-" * len(lines[-1]))
    return "\n".join(lines)


def pct(x: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string, e.g. 0.317 -> '31.7%'."""
    return f"{x * 100:.{digits}f}%"


def seconds(x: float) -> str:
    """Format simulated seconds with sensible units."""
    if x >= 1.0:
        return f"{x:.3f}s"
    if x >= 1e-3:
        return f"{x * 1e3:.2f}ms"
    return f"{x * 1e6:.1f}us"


def mem(nbytes: int) -> str:
    """Format bytes in binary units like the paper's Table III."""
    for unit, size in (("GB", 1024**3), ("MB", 1024**2), ("KB", 1024)):
        if nbytes >= size:
            v = nbytes / size
            return f"{v:.0f}{unit}" if v == int(v) else f"{v:.1f}{unit}"
    return f"{nbytes}B"
