"""The structured grid and its patch layout.

A :class:`Grid` is a single-level regular Cartesian mesh over a physical
box, partitioned into equally-sized patches ("the grid is partitioned
into equally-sized patches for parallelization", paper Sec. VII-A; the
evaluation fixes an 8x8x2 patch layout).  Multi-level AMR, which full
Uintah supports, is outside the paper's experiments and therefore out of
scope here (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses

from repro.core.patch import Patch, Region, FACES


@dataclasses.dataclass(frozen=True)
class Grid:
    """A regular grid of ``extent`` cells split into ``layout`` patches.

    Parameters
    ----------
    extent:
        Global cells per axis ``(Nx, Ny, Nz)``.
    layout:
        Patches per axis ``(Px, Py, Pz)``; must divide ``extent``.
    domain_low / domain_high:
        Physical bounds of the box; cell spacing follows.
    """

    extent: tuple[int, int, int]
    layout: tuple[int, int, int] = (1, 1, 1)
    domain_low: tuple[float, float, float] = (0.0, 0.0, 0.0)
    domain_high: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        for axis in range(3):
            n, p = self.extent[axis], self.layout[axis]
            if n < 1 or p < 1:
                raise ValueError(f"extent/layout must be positive, got {self.extent}/{self.layout}")
            if n % p:
                raise ValueError(
                    f"layout {self.layout} does not divide extent {self.extent} on axis {axis}"
                )
            if self.domain_high[axis] <= self.domain_low[axis]:
                raise ValueError("domain_high must exceed domain_low")

    # -- geometry -------------------------------------------------------------
    @property
    def spacing(self) -> tuple[float, float, float]:
        """Cell width per axis (dx, dy, dz)."""
        return tuple(  # type: ignore[return-value]
            (hi - lo) / n for lo, hi, n in zip(self.domain_low, self.domain_high, self.extent)
        )

    @property
    def patch_extent(self) -> tuple[int, int, int]:
        """Cells per patch per axis."""
        return tuple(n // p for n, p in zip(self.extent, self.layout))  # type: ignore[return-value]

    @property
    def num_cells(self) -> int:
        """Total cells in the grid."""
        nx, ny, nz = self.extent
        return nx * ny * nz

    @property
    def num_patches(self) -> int:
        """Total patches in the layout."""
        px, py, pz = self.layout
        return px * py * pz

    def cell_center(self, cell: tuple[int, int, int]) -> tuple[float, float, float]:
        """Physical coordinates of a cell's centroid."""
        dx = self.spacing
        return tuple(  # type: ignore[return-value]
            self.domain_low[a] + (cell[a] + 0.5) * dx[a] for a in range(3)
        )

    # -- patches ------------------------------------------------------------------
    def patch_index_to_id(self, index: tuple[int, int, int]) -> int:
        """Serial patch id from layout coordinates (x-major)."""
        px, py, pz = self.layout
        ix, iy, iz = index
        if not (0 <= ix < px and 0 <= iy < py and 0 <= iz < pz):
            raise IndexError(f"patch index {index} outside layout {self.layout}")
        return (iz * py + iy) * px + ix

    def patch(self, index: tuple[int, int, int]) -> Patch:
        """The patch at layout coordinates ``index``."""
        ex = self.patch_extent
        low = tuple(index[a] * ex[a] for a in range(3))
        high = tuple(low[a] + ex[a] for a in range(3))
        return Patch(self.patch_index_to_id(index), index, Region(low, high))  # type: ignore[arg-type]

    def patches(self) -> list[Patch]:
        """All patches, ordered by patch id."""
        px, py, pz = self.layout
        return [
            self.patch((ix, iy, iz))
            for iz in range(pz)
            for iy in range(py)
            for ix in range(px)
        ]

    def neighbor(self, patch: Patch, axis: int, side: int) -> Patch | None:
        """The face neighbour of ``patch``, or None at the domain boundary."""
        idx = list(patch.index)
        idx[axis] += side
        if not 0 <= idx[axis] < self.layout[axis]:
            return None
        return self.patch(tuple(idx))  # type: ignore[arg-type]

    def face_neighbors(self, patch: Patch) -> list[tuple[int, int, Patch]]:
        """All existing face neighbours as ``(axis, side, neighbor)``."""
        out = []
        for axis, side in FACES:
            nb = self.neighbor(patch, axis, side)
            if nb is not None:
                out.append((axis, side, nb))
        return out

    def boundary_faces(self, patch: Patch) -> list[tuple[int, int]]:
        """Faces of ``patch`` lying on the physical domain boundary."""
        return [
            (axis, side)
            for axis, side in FACES
            if self.neighbor(patch, axis, side) is None
        ]

    # -- bookkeeping used by the harness ------------------------------------------
    def memory_bytes(self, fields: int = 2, ghosts: int = 1, itemsize: int = 8) -> int:
        """Approximate allocation for ``fields`` ghosted copies of the grid.

        Matches the paper's Table III "Mem" column, which counts the u and
        u_new fields over all patches including their ghost layers.
        """
        ex = self.patch_extent
        per_patch = 1
        for a in range(3):
            per_patch *= ex[a] + 2 * ghosts
        return per_patch * itemsize * fields * self.num_patches
