"""Behavioural emulation of SW26010's 256-bit SIMD intrinsics.

The paper's Algorithm 2 vectorizes the Burgers kernel manually with
4-wide double-precision intrinsics (``SIMD_LOADU``, ``SIMD_VMAD``,
``SIMD_VMULD``, ...) because the Sunway toolchain has no auto-vectorizer.
The vectorized kernel in :mod:`repro.burgers.kernel_simd` is written
against this module, mirroring the structure of the paper's listing:
an explicitly unrolled i-loop of width 4 operating on :class:`Vec4`
values.

This is a *behavioural* model: numerics are ordinary float64 NumPy, so
the vectorized kernel produces bit-identical results to the scalar one
(as on real hardware, where SW26010 vector lanes are IEEE doubles).  The
*performance* effect of SIMD is modelled in
:mod:`repro.sunway.corerates`; the *operation counts* of vector
intrinsics are tracked per lane-group by the perf counters.
"""

from __future__ import annotations

import numpy as np

#: Vector width in doubles (256-bit registers).
VECTOR_WIDTH = 4


class Vec4:
    """A 256-bit vector register of 4 doubles.

    Immutable value semantics like a hardware register: every intrinsic
    returns a fresh ``Vec4``.
    """

    __slots__ = ("lanes",)

    def __init__(self, lanes):
        arr = np.asarray(lanes, dtype=np.float64)
        if arr.shape != (VECTOR_WIDTH,):
            raise ValueError(f"Vec4 needs exactly {VECTOR_WIDTH} lanes, got shape {arr.shape}")
        self.lanes = arr.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vec4({self.lanes.tolist()})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Vec4) and bool(np.array_equal(self.lanes, other.lanes))

    def __hash__(self):  # registers are mutable-ish values; keep unhashable
        raise TypeError("Vec4 is unhashable")


def simd_set(a: float, b: float, c: float, d: float) -> Vec4:
    """Build a vector from four scalars (the listing's ``SIMD_CMPLX``)."""
    return Vec4([a, b, c, d])


def simd_loade(scalar: float) -> Vec4:
    """Broadcast-load a scalar into all four lanes (``SIMD_LOADE``)."""
    return Vec4(np.full(VECTOR_WIDTH, float(scalar)))


def simd_loadu(array: np.ndarray, offset: int) -> Vec4:
    """Unaligned load of 4 consecutive doubles starting at ``offset``.

    ``array`` must be 1-D (a row of the tile in the x direction, which is
    the vectorized direction in the paper).
    """
    if array.ndim != 1:
        raise ValueError(f"SIMD_LOADU needs a 1-D row, got ndim={array.ndim}")
    if offset < 0 or offset + VECTOR_WIDTH > array.shape[0]:
        raise IndexError(
            f"SIMD_LOADU out of bounds: offset {offset} + {VECTOR_WIDTH} > {array.shape[0]}"
        )
    return Vec4(array[offset : offset + VECTOR_WIDTH])


def simd_storeu(array: np.ndarray, offset: int, value: Vec4) -> None:
    """Unaligned store of 4 consecutive doubles starting at ``offset``."""
    if array.ndim != 1:
        raise ValueError(f"SIMD_STOREU needs a 1-D row, got ndim={array.ndim}")
    if offset < 0 or offset + VECTOR_WIDTH > array.shape[0]:
        raise IndexError(
            f"SIMD_STOREU out of bounds: offset {offset} + {VECTOR_WIDTH} > {array.shape[0]}"
        )
    array[offset : offset + VECTOR_WIDTH] = value.lanes


def simd_vadd(a: Vec4, b: Vec4) -> Vec4:
    """Lane-wise add."""
    return Vec4(a.lanes + b.lanes)


def simd_vsub(a: Vec4, b: Vec4) -> Vec4:
    """Lane-wise subtract."""
    return Vec4(a.lanes - b.lanes)


def simd_vmuld(a: Vec4, b: Vec4) -> Vec4:
    """Lane-wise multiply."""
    return Vec4(a.lanes * b.lanes)


def simd_vmad(a: Vec4, b: Vec4, c: Vec4) -> Vec4:
    """Fused multiply-add: ``a*b + c`` (one instruction on SW26010)."""
    return Vec4(a.lanes * b.lanes + c.lanes)


def simd_vdiv(a: Vec4, b: Vec4) -> Vec4:
    """Lane-wise divide (counted as one op by the SW26010 counters)."""
    return Vec4(a.lanes / b.lanes)
