"""Table IV: the experimental variant matrix."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import table4
from repro.harness.variants import VARIANTS


@pytest.mark.benchmark(group="table4")
def test_table4_variants(benchmark, publish):
    text = run_once(benchmark, table4)
    publish("table4", text)
    assert len(VARIANTS) == 5
    for name in ("host.sync", "acc.sync", "acc_simd.sync", "acc.async", "acc_simd.async"):
        assert name in text
