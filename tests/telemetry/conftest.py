"""Shared fixtures: one instrumented run reused across the telemetry tests.

The DES is deterministic, so a single small model-mode run (the paper's
smallest problem, 4 CGs, 3 steps) serves every assertion; module scope
keeps the suite fast.
"""

import pytest

from repro.harness.problems import problem_by_name
from repro.harness.runner import run_instrumented
from repro.harness.variants import variant_by_name

NSTEPS = 3
CGS = 4


@pytest.fixture(scope="package")
def bundle():
    return run_instrumented(
        problem_by_name("16x16x512"),
        variant_by_name("acc.async"),
        CGS,
        nsteps=NSTEPS,
        created_at="1970-01-01T00:00:00+00:00",
    )
