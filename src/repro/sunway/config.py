"""Machine parameters of Sunway TaihuLight and the SW26010 processor.

Numbers come from the paper (Table II, Sec. IV) and the cited Dongarra
report.  They are frozen dataclasses so experiment configurations are
hashable and comparable; the effective (achievable) rates used by the cost
model live separately in :mod:`repro.harness.calibration` — this module
holds only *architectural* facts.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CoreGroupConfig:
    """One SW26010 core-group (CG): 1 MPE + 64 CPEs + a memory controller.

    The paper uses CGs as the unit of distribution ("'CG' and 'computing
    node' are used interchangeably"), with one MPI process per CG.
    """

    #: Computing Processing Elements per core-group.
    num_cpes: int = 64
    #: Local Data Memory (scratchpad) per CPE, bytes.  64 KB on SW26010.
    ldm_bytes: int = 64 * 1024
    #: Peak double-precision rate of the single MPE, flop/s (23.2 Gflop/s).
    mpe_peak_flops: float = 23.2e9
    #: Aggregate peak of the 64-CPE cluster, flop/s (742.4 Gflop/s).
    cpe_cluster_peak_flops: float = 742.4e9
    #: SIMD width in doubles (256-bit vectors).
    simd_width: int = 4
    #: Main memory attached to the CG's memory controller, bytes (8 GB of
    #: the node's 32 GB, one 128-bit DDR3-2133 channel per CG).
    memory_bytes: int = 8 * 1024**3
    #: Theoretical DDR3-2133 channel bandwidth per CG, bytes/s
    #: (128 bit * 2133 MT/s = 34.1 GB/s).
    memory_bandwidth: float = 34.1e9

    @property
    def peak_flops(self) -> float:
        """Total CG peak = MPE + CPE cluster (765.6 Gflop/s)."""
        return self.mpe_peak_flops + self.cpe_cluster_peak_flops

    @property
    def cpe_peak_flops(self) -> float:
        """Peak of a single CPE (11.6 Gflop/s)."""
        return self.cpe_cluster_peak_flops / self.num_cpes


@dataclasses.dataclass(frozen=True)
class InterconnectConfig:
    """The Sunway proprietary network, per Table II of the paper."""

    #: Bidirectional point-to-point bandwidth, bytes/s (16 GB/s).
    p2p_bandwidth: float = 16e9
    #: Point-to-point latency, seconds ("around 1 us").
    latency: float = 1e-6


@dataclasses.dataclass(frozen=True)
class SunwayMachine:
    """A Sunway TaihuLight partition: ``num_cgs`` core-groups on the fabric.

    The full machine has 40,960 nodes * 4 CGs; the paper's experimental
    queue allowed 1..128 CGs (8320 cores), which is also our default scale.
    """

    num_cgs: int = 128
    core_group: CoreGroupConfig = dataclasses.field(default_factory=CoreGroupConfig)
    interconnect: InterconnectConfig = dataclasses.field(default_factory=InterconnectConfig)

    def __post_init__(self) -> None:
        if self.num_cgs < 1:
            raise ValueError(f"need at least one core-group, got {self.num_cgs}")

    @property
    def peak_flops(self) -> float:
        """Aggregate theoretical peak of the partition, flop/s."""
        return self.num_cgs * self.core_group.peak_flops

    @property
    def total_cores(self) -> int:
        """MPE + CPE cores across the partition (260 per 4-CG node)."""
        return self.num_cgs * (1 + self.core_group.num_cpes)

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate main memory across the partition."""
        return self.num_cgs * self.core_group.memory_bytes

    def with_cgs(self, num_cgs: int) -> "SunwayMachine":
        """A copy of this machine resized to ``num_cgs`` core-groups."""
        return dataclasses.replace(self, num_cgs=num_cgs)


#: The canonical SW26010 core-group, shared by most experiments.
SW26010 = CoreGroupConfig()


def table2_rows() -> list[tuple[str, str]]:
    """Reproduce Table II ("Major system parameters of Sunway TaihuLight")."""
    cg = SW26010
    node_peak = 4 * cg.peak_flops
    return [
        ("Node architecture", "1 SW26010 processor"),
        ("Node cores", f"4 MPEs + {4 * cg.num_cpes} CPEs, {4 * (1 + cg.num_cpes)} cores"),
        ("Node memory", "32GB, 4*128bit DDR3-2133"),
        ("Node Performance", f"{node_peak / 1e12:.2f} Tflop/s"),
        ("Interconnect Bandwidth", "Bidirectional P2P 16 GB/s"),
        ("Interconnect Latency", "around 1 us"),
    ]
