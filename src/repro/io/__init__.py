"""Data archive (UDA-style) output and restart.

Uintah persists simulation state in "UDA" archives — a directory with an
index plus per-timestep, per-patch variable data — and can restart a run
from any archived timestep.  :mod:`repro.io.uda` provides the same
capability for this runtime: checkpoints written from a
:class:`~repro.core.controller.RunResult` and restart task graphs that
reload them, with bit-exact continuation (tested).
"""

from repro.io.uda import UdaArchive, save_checkpoint, load_checkpoint, restart_tasks

__all__ = ["UdaArchive", "save_checkpoint", "load_checkpoint", "restart_tasks"]
