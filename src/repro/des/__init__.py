"""Discrete-event simulation core.

The entire Sunway reproduction runs on virtual time: MPE control loops,
CPE kernel executions, DMA transfers and MPI messages are all processes
and events advancing a single simulated clock.  This package is a small,
self-contained, SimPy-flavoured discrete-event kernel:

* :class:`~repro.des.simulator.Simulator` — the event loop and clock.
* :class:`~repro.des.process.Process` — generator-based cooperative
  processes, created with :meth:`Simulator.process`.
* :class:`~repro.des.event.Event`, :class:`~repro.des.event.Timeout`,
  :func:`~repro.des.event.all_of`, :func:`~repro.des.event.any_of` —
  the things a process can ``yield``.
* :class:`~repro.des.resources.Resource` and
  :class:`~repro.des.resources.Store` — contended-capacity primitives.

The scheduler reproduction needs deterministic execution: given the same
inputs the event order is fully reproducible (ties in time are broken by a
monotone sequence number, never by object identity).
"""

from repro.des.event import Event, Timeout, Interrupt, all_of, any_of
from repro.des.process import Process
from repro.des.simulator import Simulator
from repro.des.resources import Resource, Store

__all__ = [
    "Event",
    "Timeout",
    "Interrupt",
    "all_of",
    "any_of",
    "Process",
    "Simulator",
    "Resource",
    "Store",
]
