#!/usr/bin/env python
"""Compare the three scheduler modes of the paper on one workload.

Runs the same Burgers problem under ``mpe_only`` (host.sync),
``sync`` (acc.sync) and ``async`` (acc.async), prints the modelled wall
time per step, the async-over-sync improvement (paper Sec. VII-C), the
offload boost (Sec. VII-D), and Gantt-style timelines that make the
overlap visible: in async mode the MPE lane ('=') stays busy while CPE
kernels ('#') run; in sync mode it does not.

Usage::

    python examples/scheduler_comparison.py
"""

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.harness import calibration


def run(mode: str, simd: bool = False):
    grid = Grid(extent=(64, 64, 128), layout=(2, 2, 2))
    problem = BurgersProblem(grid)
    controller = SimulationController(
        grid,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=2,
        mode=mode,
        cost_model=calibration.cost_model(simd=simd),
        real=True,
        trace_enabled=True,
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    )
    return controller.run(nsteps=5, dt=problem.stable_dt())


def main() -> None:
    results = {mode: run(mode) for mode in ("mpe_only", "sync", "async")}

    print("Scheduler mode comparison (64x64x128 grid, 8 patches, 2 CGs)")
    print("=" * 62)
    for mode, res in results.items():
        overlap = res.trace.overlap_time(0, "mpe", "cpe")
        print(
            f"{mode:>9}: {res.time_per_step * 1e3:9.3f} ms/step   "
            f"MPE/CPE overlap on rank 0: {overlap * 1e3:7.3f} ms"
        )

    sync_t = results["sync"].time_per_step
    async_t = results["async"].time_per_step
    host_t = results["mpe_only"].time_per_step
    print()
    print(f"async improvement over sync ((Ts-Ta)/Ta): "
          f"{(sync_t - async_t) / async_t * 100:.1f}%   (paper: up to 39.3%)")
    print(f"offload boost over MPE-only (Th/Ta):      "
          f"{host_t / async_t:.2f}x  (paper: 2.7-6.0x)")
    print()
    for mode in ("sync", "async"):
        print(f"--- rank 0 timeline, {mode} mode "
              f"('=' MPE, '#' CPE kernel) ---")
        print(results[mode].trace.timeline(0))
        print()


if __name__ == "__main__":
    main()
