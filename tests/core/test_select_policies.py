"""Tests for ready-queue selection policies (out-of-order task choice)."""

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid

POLICIES = ("fifo", "max_dependents", "most_messages")


def run(policy, num_ranks=4, nsteps=3):
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=num_ranks, real=True,
        scheduler_kwargs={"select_policy": policy},
    )
    res = ctl.run(nsteps=nsteps, dt=prob.stable_dt())
    field = {
        v.patch.patch_id: v.interior.copy()
        for dw in res.final_dws
        for v in dw.grid_variables()
    }
    return field, res


def test_all_policies_complete_with_identical_results():
    """Out-of-order selection must never change the physics."""
    ref, ref_res = run("fifo")
    for policy in POLICIES[1:]:
        got, got_res = run(policy)
        for pid in ref:
            assert np.array_equal(ref[pid], got[pid]), (policy, pid)
        assert got_res.stats.kernels_offloaded == ref_res.stats.kernels_offloaded


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="select_policy"):
        run("fastest_first")


def test_policies_can_change_execution_order():
    """most_messages prioritizes boundary patches: traces differ from
    fifo even though the results don't."""
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    orders = {}
    for policy in ("fifo", "most_messages"):
        prob = BurgersProblem(grid)
        ctl = SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=2, real=True,
            trace_enabled=True,
            scheduler_kwargs={"select_policy": policy},
        )
        ctl.run(nsteps=1, dt=prob.stable_dt())
        orders[policy] = [
            s.name for s in ctl.trace.spans_for(0, "cpe") if "timeAdvance" in s.name
        ]
    assert len(orders["fifo"]) == len(orders["most_messages"]) > 0
    # with 2 SFC ranks every patch has remote faces of different sizes, so
    # the message-driven order differs from queue order... unless they
    # coincide by construction; assert only when scores differ:
    if orders["fifo"] != orders["most_messages"]:
        assert sorted(orders["fifo"]) == sorted(orders["most_messages"])
