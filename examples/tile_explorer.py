#!/usr/bin/env python
"""Explore LDM tile-size selection (paper Sec. VI-A).

Shows, for each Table III patch size, which tile shapes fit the 64 KB
LDM, their working sets, ghost overhead and modelled kernel time — and
that the selector lands on the paper's 16x16x8 (41.3 KB) for the Burgers
working set on the whole suite.

Usage::

    python examples/tile_explorer.py
"""

from repro.burgers.flops import BURGERS_KERNEL_COST
from repro.core.tiling import TilePlan, choose_tile_shape, working_set_bytes
from repro.harness import calibration
from repro.harness.problems import PROBLEMS
from repro.harness.reportfmt import render_table
from repro.sunway.ldm import LDM, LDMAllocationError


def tile_report(patch_extent, candidates):
    rates, dma = calibration.default_rates(), calibration.default_dma()
    rows = []
    for shape in candidates:
        ws = working_set_bytes(shape, ghosts=1, fields_in=1, fields_out=1)
        ldm = LDM()
        try:
            ldm.alloc("working-set", ws)
            fits = "yes"
        except LDMAllocationError:
            fits = "NO"
        cells = shape[0] * shape[1] * shape[2]
        halo = (shape[0] + 2) * (shape[1] + 2) * (shape[2] + 2)
        ghost_pct = (halo - cells) / cells * 100
        if fits == "yes":
            plan = TilePlan(patch_extent=patch_extent, tile_shape=shape, ghosts=1)
            t = rates.cluster_kernel_time(
                plan.per_cpe_work(), BURGERS_KERNEL_COST, dma, simd=True
            )
            time = f"{t * 1e3:.2f}ms"
        else:
            time = "-"
        rows.append(
            (
                "x".join(map(str, shape)),
                f"{ws / 1024:.1f}KB",
                fits,
                f"{ghost_pct:.0f}%",
                time,
            )
        )
    return rows


def main() -> None:
    candidates = [
        (8, 8, 8), (16, 8, 8), (16, 16, 4), (16, 16, 8), (16, 16, 16),
        (32, 16, 8), (16, 32, 8), (32, 32, 8),
    ]
    rows = tile_report((128, 128, 512), candidates)
    print(
        render_table(
            "Tile candidates for a 128x128x512 patch (LDM = 64KB, "
            "u ghosted + u_new)",
            ["Tile", "Working set", "Fits LDM", "Ghost overhead", "SIMD kernel time"],
            rows,
        )
    )
    print()
    print("Selector choice per Table III patch (paper: 16x16x8, 41.3 KB):")
    for p in PROBLEMS:
        shape = choose_tile_shape(p.patch_extent)
        ws = working_set_bytes(shape) / 1024
        print(f"  {p.name:>12} -> {'x'.join(map(str, shape))}  ({ws:.1f} KB)")


if __name__ == "__main__":
    main()
