"""Unit tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates_ints_and_floats():
    c = Counter()
    c.inc()
    c.inc(41)
    assert c.value == 42
    c.inc(0.5)
    assert c.value == pytest.approx(42.5)
    assert c.snapshot() == pytest.approx(42.5)


def test_gauge_tracks_last_and_max():
    g = Gauge()
    g.set(3.0)
    g.set(7.0)
    g.set(2.0)
    assert g.value == 2.0
    assert g.max == 7.0
    assert g.snapshot() == {"last": 2.0, "max": 7.0}


# -- histogram quantile edge cases ---------------------------------------------


def test_histogram_empty_quantiles_are_zero():
    h = Histogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.quantile(0.0) == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.quantile(1.0) == 0.0
    snap = h.snapshot()
    assert snap == {"count": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


def test_histogram_single_sample_is_every_quantile():
    h = Histogram()
    h.observe(3.5)
    for q in (0.0, 0.25, 0.5, 0.95, 1.0):
        assert h.quantile(q) == 3.5
    assert h.mean == 3.5


def test_histogram_quantile_out_of_range_raises():
    h = Histogram()
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.quantile(-0.01)
    with pytest.raises(ValueError):
        h.quantile(1.01)


def test_histogram_nearest_rank_quantiles():
    h = Histogram()
    for x in [5.0, 1.0, 3.0, 2.0, 4.0]:  # deliberately unsorted
        h.observe(x)
    assert h.quantile(0.0) == 1.0  # q=0 is the minimum
    assert h.quantile(0.5) == 3.0
    assert h.quantile(1.0) == 5.0
    assert h.quantile(0.95) == 5.0  # ceil(0.95*5)=5 -> last element
    assert h.mean == pytest.approx(3.0)
    # observing after a quantile query keeps the lazy sort correct
    h.observe(0.5)
    assert h.quantile(0.0) == 0.5


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    c = reg.counter("tasks.done")
    assert reg.counter("tasks.done") is c
    reg.inc("tasks.done", 3)
    assert c.value == 3
    reg.observe("kernel.seconds", 0.25)
    reg.set_gauge("queue.depth", 4)
    with pytest.raises(TypeError):
        reg.histogram("tasks.done")
    with pytest.raises(TypeError):
        reg.counter("kernel.seconds")


def test_registry_snapshot_sorted_and_jsonable():
    import json

    reg = MetricsRegistry()
    reg.inc("b.counter", 2)
    reg.observe("a.hist", 1.0)
    reg.set_gauge("c.gauge", 9)
    snap = reg.snapshot()
    assert list(snap) == ["a.hist", "b.counter", "c.gauge"]
    assert snap["b.counter"] == {"kind": "counter", "value": 2}
    assert snap["a.hist"]["kind"] == "histogram"
    assert snap["c.gauge"]["value"] == {"last": 9, "max": 9}
    json.dumps(snap)
