"""Table VII: async-over-sync improvement, vectorized kernel.

Paper: best 22.8%, typically ~5-20%, systematically *smaller* than the
non-vectorized improvements (Table VI) because the vectorized kernel is
nearer memory-bound and overlapped MPE traffic interferes with its DMA.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.problems import CG_COUNTS
from repro.harness.tables import table7, table7_data, table6_data


@pytest.mark.benchmark(group="table7")
def test_table7_async_improvement_vec(benchmark, publish):
    rows = run_once(benchmark, table7_data)
    publish("table7", table7())

    values = [v for r in rows for k, v in r.items() if k != "problem"]
    assert all(v >= -0.01 for v in values)
    # best near the paper's 22.8%
    assert 0.10 <= max(values) <= 0.30

    # the headline claim: vectorized improvements smaller than scalar ones
    novec = table6_data()
    for r6, r7 in zip(novec, rows):
        for cgs in CG_COUNTS:
            if cgs in r6 and r6[cgs] > 0.05:
                assert r7[cgs] < r6[cgs] + 0.02, (r6["problem"], cgs)
    avg6 = sum(v for r in novec for k, v in r.items() if k != "problem") / sum(
        len(r) - 1 for r in novec
    )
    avg7 = sum(values) / len(values)
    assert avg7 < avg6
