"""Derived metrics of the evaluation (paper Sec. VII-B..E)."""

from __future__ import annotations

from repro.harness.runner import ExperimentResult


def scaling_efficiency(base: ExperimentResult, scaled: ExperimentResult) -> float:
    """Strong-scaling efficiency from ``base`` to ``scaled`` (Table V).

    ``efficiency = (T_base * P_base) / (T_scaled * P_scaled)`` — 1.0 is
    ideal speedup proportional to the CG count.
    """
    if base.problem != scaled.problem or base.variant != scaled.variant:
        raise ValueError("efficiency compares the same problem and variant")
    return (base.time_per_step * base.num_cgs) / (scaled.time_per_step * scaled.num_cgs)


def async_improvement(sync: ExperimentResult, asynchronous: ExperimentResult) -> float:
    """The paper's Sec. VII-C effectiveness metric:
    ``(T_sync - T_async) / T_async``."""
    if sync.problem != asynchronous.problem or sync.num_cgs != asynchronous.num_cgs:
        raise ValueError("improvement compares the same problem and CG count")
    return (sync.time_per_step - asynchronous.time_per_step) / asynchronous.time_per_step


def optimization_boost(baseline: ExperimentResult, optimized: ExperimentResult) -> float:
    """Sec. VII-D's performance boost: ``T_host / T_acc``."""
    if baseline.problem != optimized.problem or baseline.num_cgs != optimized.num_cgs:
        raise ValueError("boost compares the same problem and CG count")
    return baseline.time_per_step / optimized.time_per_step


def speedup(base: ExperimentResult, scaled: ExperimentResult) -> float:
    """Raw strong-scaling speedup ``T_base / T_scaled``."""
    return base.time_per_step / scaled.time_per_step


#: Counter fields that must all be zero in a fault-free experiment.
RESILIENCE_COUNTERS = (
    "kernel_timeouts",
    "kernel_retries",
    "mpe_fallbacks",
    "mpi_retries",
    "stragglers_detected",
    "rank_recoveries",
)


def resilience_counters(result: ExperimentResult) -> dict[str, int]:
    """The resilience counter block of one experiment, by name."""
    return {name: getattr(result, name) for name in RESILIENCE_COUNTERS}


def is_fault_free(result: ExperimentResult) -> bool:
    """True when no recovery machinery fired (the structural invariant
    of runs without an injector — asserted by the test suite)."""
    return all(v == 0 for v in resilience_counters(result).values())


def resilience_overhead(fault_free_time: float, faulty_time: float) -> float:
    """Fractional slowdown of a faulty run vs. its fault-free reference:
    ``T_faulty / T_fault_free - 1`` (0.0 means free recovery)."""
    if fault_free_time <= 0:
        raise ValueError("fault-free reference time must be positive")
    return faulty_time / fault_free_time - 1.0
