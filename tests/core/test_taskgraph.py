"""Tests for the task-graph compiler: detailed tasks, deps, messages."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grid import Grid
from repro.core.loadbalancer import LoadBalancer
from repro.core.task import Task, TaskKind
from repro.core.taskgraph import TaskGraph
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

U = VarLabel("u")
V = VarLabel("v")
NORM = VarLabel("norm", vartype="reduction")
COST = KernelCost(stencil_flops=10, exp_calls=0)


def advance_task(name="advance", requires_new=None):
    t = Task(name, kind=TaskKind.CPE_KERNEL, kernel_cost=COST)
    t.requires_(U, dw="old", ghosts=1)
    t.computes_(U)
    if requires_new:
        t.requires_(requires_new, dw="new", ghosts=0)
    return t


def build(grid=None, tasks=None, num_ranks=2, strategy="block"):
    grid = grid or Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    tasks = tasks if tasks is not None else [advance_task()]
    assignment = LoadBalancer(strategy).assign(grid, num_ranks)
    return TaskGraph(grid, tasks, assignment, num_ranks), grid, assignment


def test_one_detailed_task_per_patch():
    graph, grid, _ = build()
    assert len(graph.detailed_tasks) == grid.num_patches
    assert {dt.patch.patch_id for dt in graph.detailed_tasks} == set(range(8))


def test_reduction_task_per_rank():
    red = Task("norm", kind=TaskKind.REDUCTION, reduction_op=max)
    red.requires_(U, dw="new").computes_(NORM)
    graph, grid, _ = build(tasks=[advance_task(), red], num_ranks=4)
    red_dts = [dt for dt in graph.detailed_tasks if dt.task.name == "norm"]
    assert len(red_dts) == 4
    assert all(dt.patch is None for dt in red_dts)
    # each reduction depends on every local advance
    for dt in red_dts:
        local_advances = [
            d
            for d in graph.detailed_tasks
            if d.task.name == "advance" and d.rank == dt.rank
        ]
        assert graph.internal_deps[dt.dt_id] == {d.dt_id for d in local_advances}


def test_old_dw_ghosts_make_cross_step_messages():
    graph, grid, assignment = build(num_ranks=2)
    assert graph.messages, "2 ranks must exchange ghosts"
    for msg in graph.messages:
        assert msg.dw == "old"
        assert msg.cross_step
        assert msg.producer is not None
        assert msg.producer.patch.patch_id == msg.from_patch.patch_id
        assert assignment[msg.from_patch.patch_id] == msg.from_rank
        assert assignment[msg.to_patch.patch_id] == msg.to_rank
        assert msg.from_rank != msg.to_rank


def test_intra_rank_ghosts_become_copies():
    graph, grid, _ = build(num_ranks=1)
    assert not graph.messages
    # 8 patches x 3 interior faces each = 24 face pairs = 24 copies
    assert len(graph.copies) == 24
    for cp in graph.copies:
        assert cp.producer is None  # old-DW copies run at step start
        assert cp.region.num_cells == 16  # 4x4 face of a 4^3 patch


def test_message_tags_unique_and_dense():
    graph, _, _ = build(num_ranks=4)
    tags = [m.tag for m in graph.messages]
    assert len(set(tags)) == len(tags)
    assert sorted(tags) == list(range(len(tags)))
    assert graph.num_tags >= len(tags)


def test_message_nbytes():
    graph, _, _ = build(num_ranks=2)
    msg = graph.messages[0]
    assert msg.nbytes == msg.region.num_cells * 8


def test_new_dw_dependency_internal_edge():
    t1 = advance_task()
    t2 = Task("post", kind=TaskKind.MPE)
    t2.requires_(U, dw="new", ghosts=0)
    t2.computes_(V)
    graph, grid, _ = build(tasks=[t1, t2], num_ranks=1)
    for dt in graph.detailed_tasks:
        if dt.task.name == "post":
            deps = graph.internal_deps[dt.dt_id]
            assert len(deps) == 1
            (dep_id,) = deps
            producer = graph.detailed_tasks[dep_id]
            assert producer.task.name == "advance"
            assert producer.patch.patch_id == dt.patch.patch_id


def test_new_dw_requires_earlier_producer():
    t1 = Task("consume", kind=TaskKind.MPE)
    t1.requires_(V, dw="new")
    t2 = Task("produce", kind=TaskKind.MPE)
    t2.computes_(V)
    with pytest.raises(ValueError, match="declared later|no task computes"):
        build(tasks=[t1, t2], num_ranks=1)


def test_duplicate_task_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        build(tasks=[advance_task(), advance_task()], num_ranks=1)


def test_two_tasks_computing_same_label_rejected():
    t1 = advance_task("a")
    t2 = advance_task("b")
    with pytest.raises(ValueError, match="computed by both"):
        build(tasks=[t1, t2], num_ranks=1)


def test_reduction_with_ghosts_rejected():
    red = Task("norm", kind=TaskKind.REDUCTION, reduction_op=max)
    red.requires_(U, dw="new", ghosts=1).computes_(NORM)
    with pytest.raises(ValueError, match="cannot require ghost"):
        build(tasks=[advance_task(), red])


def test_bootstrap_sends_match_cross_step_messages():
    graph, _, _ = build(num_ranks=4)
    boot = [m for r in range(4) for m in graph.bootstrap_sends(r)]
    cross = [m for m in graph.messages if m.cross_step]
    assert sorted(id(m) for m in boot) == sorted(id(m) for m in cross)


def test_per_rank_views_are_consistent():
    graph, _, _ = build(num_ranks=4)
    all_local = [dt for r in range(4) for dt in graph.local_tasks(r)]
    assert sorted(dt.dt_id for dt in all_local) == [
        dt.dt_id for dt in graph.detailed_tasks
    ]
    # every message appears in exactly one consumer's recvs
    recv_ids = [id(m) for dt in graph.detailed_tasks for m in graph.recvs_for(dt)]
    assert sorted(recv_ids) == sorted(id(m) for m in graph.messages)


def test_validate_acyclic_passes_and_detects_cycles():
    graph, _, _ = build(num_ranks=2)
    graph.validate_acyclic()
    a, b = graph.detailed_tasks[0], graph.detailed_tasks[1]
    graph.internal_deps[a.dt_id].add(b.dt_id)
    graph.internal_deps[b.dt_id].add(a.dt_id)
    with pytest.raises(ValueError, match="cycle"):
        graph.validate_acyclic()


def test_assignment_validation():
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    with pytest.raises(ValueError, match="misses"):
        TaskGraph(grid, [advance_task()], {0: 0}, 1)
    full = {p.patch_id: 0 for p in grid.patches()}
    bad = dict(full)
    bad[0] = 5
    with pytest.raises(ValueError, match="outside range"):
        TaskGraph(grid, [advance_task()], bad, 2)


@settings(deadline=None, max_examples=25)
@given(
    num_ranks=st.integers(1, 8),
    strategy=st.sampled_from(LoadBalancer.STRATEGIES),
)
def test_property_no_ghost_dependency_lost(num_ranks, strategy):
    """For any assignment, every (patch, face-neighbour) pair is served by
    exactly one message or copy — ghost data can never be missing."""
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    assignment = LoadBalancer(strategy).assign(grid, num_ranks)
    graph = TaskGraph(grid, [advance_task()], assignment, num_ranks)
    served = set()
    for msg in graph.messages:
        served.add((msg.to_patch.patch_id, msg.from_patch.patch_id))
    for cp in graph.copies:
        served.add((cp.to_patch.patch_id, cp.from_patch.patch_id))
    expected = set()
    for p in grid.patches():
        for _axis, _side, nb in grid.face_neighbors(p):
            expected.add((p.patch_id, nb.patch_id))
    assert served == expected
    assert len(graph.messages) + len(graph.copies) == len(expected)
