"""Golden-equivalence oracle for the scheduler refactor.

The layered execution engine (lifecycle / comm / offload / selection /
backends) must be *behavior-preserving*: for every scheduler mode, for
the unified host scheduler, and for a faulted seed, the physics output,
the simulated wall time, and every :class:`SchedulerStats` counter must
be identical to what the pre-refactor monolith produced.

The reference values in ``golden/scheduler_golden.json`` were captured
from the monolithic scheduler (one commit before the engine split) with::

    PYTHONPATH=src python tests/core/test_golden_equivalence.py --regen

Do NOT regenerate them as part of a scheduler change unless the change
is *intended* to alter scheduling behavior — the whole point of this
file is to catch silent drift.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import pathlib

import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.faults import FaultConfig, FaultInjector, ResiliencePolicy

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "scheduler_golden.json"

#: Stats accumulated from float sums of simulated time; stored as hex to
#: round-trip bit-exactly through JSON.
FLOAT_STATS = ("idle_wait", "spin_wait")


def _fault_free(mode):
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=2, mode=mode, real=True
    )
    return ctl.run(nsteps=3, dt=prob.stable_dt())


def _unified(num_threads, faulted=False):
    from repro.core.schedulers.unified import UnifiedHostScheduler

    if faulted:
        grid = Grid(extent=(12, 12, 12), layout=(2, 1, 1))
        kwargs = _fault_kwargs()
    else:
        grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
        kwargs = {}
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid,
        prob.tasks(),
        prob.init_tasks(),
        num_ranks=2,
        real=True,
        scheduler_factory=functools.partial(
            UnifiedHostScheduler, num_threads=num_threads
        ),
        **kwargs,
    )
    return ctl.run(nsteps=3 if not faulted else 4, dt=prob.stable_dt())


def _fault_kwargs():
    return {
        "faults": FaultInjector(
            FaultConfig(
                seed=3,
                kernel_slowdown_prob=0.2,
                kernel_stuck_prob=0.1,
                dma_error_prob=0.2,
                msg_drop_prob=0.1,
            )
        ),
        "resilience": ResiliencePolicy(max_offload_retries=2),
    }


def _faulted(mode):
    grid = Grid(extent=(12, 12, 12), layout=(2, 1, 1))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid,
        prob.tasks(),
        prob.init_tasks(),
        num_ranks=2,
        mode=mode,
        real=True,
        **_fault_kwargs(),
    )
    return ctl.run(nsteps=4, dt=prob.stable_dt())


SCENARIOS = {
    "async": lambda: _fault_free("async"),
    "sync": lambda: _fault_free("sync"),
    "mpe_only": lambda: _fault_free("mpe_only"),
    "unified_t4": lambda: _unified(4),
    "faulted_async": lambda: _faulted("async"),
    "faulted_sync": lambda: _faulted("sync"),
    "faulted_unified_t2": lambda: _unified(2, faulted=True),
}


def fingerprint(result) -> dict:
    """Physics hash + exact times + every stats counter of one run."""
    sha = hashlib.sha256()
    fields = sorted(
        (v.patch.patch_id, v.label.name, v)
        for dw in result.final_dws
        for v in dw.grid_variables()
    )
    for pid, name, var in fields:
        sha.update(f"{pid}:{name}:".encode())
        sha.update(var.interior.tobytes())
    stats = dataclasses.asdict(result.stats)
    for name in FLOAT_STATS:
        stats[name] = float(stats[name]).hex()
    return {
        "physics_sha256": sha.hexdigest(),
        "total_time_hex": float(result.total_time).hex(),
        "sim_time_hex": float(result.sim_time).hex(),
        "stats": stats,
    }


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_equivalence(name):
    golden = json.loads(GOLDEN_PATH.read_text())
    assert name in golden, f"no golden entry for {name}; regen with --regen"
    got = fingerprint(SCENARIOS[name]())
    want = golden[name]
    assert got["physics_sha256"] == want["physics_sha256"], name
    assert got["total_time_hex"] == want["total_time_hex"], name
    assert got["sim_time_hex"] == want["sim_time_hex"], name
    for field, value in want["stats"].items():
        assert got["stats"][field] == value, (name, field)


def _regen() -> None:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    out = {name: fingerprint(fn()) for name, fn in sorted(SCENARIOS.items())}
    GOLDEN_PATH.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(out)} scenarios)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
