"""Tests for the heat-equation application component."""

import numpy as np
import pytest

from repro.apps.heat import HeatProblem, heat_exact
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.patch import Region


def run_heat(extent=(16, 16, 16), layout=(2, 2, 2), num_ranks=2, nsteps=5,
             mode="async", alpha=0.1, safety=0.4):
    grid = Grid(extent=extent, layout=layout)
    prob = HeatProblem(grid, alpha=alpha)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=num_ranks,
        mode=mode, real=True,
    )
    dt = prob.stable_dt(safety)
    res = ctl.run(nsteps=nsteps, dt=dt)
    return grid, prob, res


# -- exact solution ------------------------------------------------------------

def test_exact_solution_satisfies_boundaries():
    grid = Grid(extent=(8, 8, 8))
    # ghost cells just outside the wall mirror sin's small negative lobe;
    # the exact field at the wall cell centres is near zero and decays
    wall = heat_exact(grid, Region((0, 0, 0), (1, 8, 8)), t=0.0, alpha=0.1)
    inner = heat_exact(grid, Region((3, 3, 3), (5, 5, 5)), t=0.0, alpha=0.1)
    assert wall.max() < inner.max()


def test_exact_solution_decays_in_time():
    grid = Grid(extent=(8, 8, 8))
    region = Region((0, 0, 0), (8, 8, 8))
    a = heat_exact(grid, region, t=0.0, alpha=0.1)
    b = heat_exact(grid, region, t=0.05, alpha=0.1)
    assert b.max() < a.max()
    assert np.allclose(b / a, b.flat[0] / a.flat[0])  # pure amplitude decay


# -- component ---------------------------------------------------------------------

def test_validation():
    with pytest.raises(ValueError):
        HeatProblem(Grid(extent=(8, 8, 8)), alpha=-1.0)


def test_heat_runs_and_matches_exact():
    grid, prob, res = run_heat(nsteps=10)
    errs = prob.solution_errors(res.final_dws, t=res.sim_time)
    # amplitude at t: exp(-3 pi^2 alpha t); errors well below the field
    assert errs["linf"] < 0.01
    assert errs["l2"] < errs["linf"]


def test_heat_convergence_with_resolution():
    errors = {}
    final_t = 2e-3
    for n in (8, 16):
        grid = Grid(extent=(n, n, n), layout=(2, 2, 2))
        prob = HeatProblem(grid)
        dt = final_t / 40  # fixed small dt isolates spatial error
        ctl = SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=2, real=True
        )
        res = ctl.run(nsteps=40, dt=dt)
        errors[n] = prob.solution_errors(res.final_dws, t=res.sim_time)["linf"]
    # second-order stencil with exact-solution BCs: ~4x per refinement
    assert errors[8] / errors[16] > 2.5


def test_heat_distribution_invariance():
    ref = None
    for num_ranks, mode in [(1, "async"), (4, "sync"), (2, "mpe_only")]:
        _, _, res = run_heat(num_ranks=num_ranks, mode=mode, nsteps=4)
        field = {
            v.patch.patch_id: v.interior.copy()
            for dw in res.final_dws
            for v in dw.grid_variables()
        }
        if ref is None:
            ref = field
        else:
            for pid in ref:
                assert np.array_equal(ref[pid], field[pid]), (num_ranks, mode, pid)


def test_energy_reduction_decreases():
    """Dirichlet walls leak heat: total thermal energy must fall."""
    grid, prob, res = run_heat(nsteps=10)
    final_energy = res.final_dws[0].get_reduction(prob.energy_label)
    # initial energy of the sine product over the unit box: (2/pi)^3
    initial = (2.0 / np.pi) ** 3
    assert 0 < final_energy < initial


def test_heat_on_harness_cost_model():
    """The component runs in pure performance-model mode too."""
    from repro.harness import calibration

    grid = Grid(extent=(256, 256, 1024), layout=(8, 8, 2))
    prob = HeatProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=16, mode="async",
        real=False, cost_model=calibration.cost_model(simd=True),
        fabric_config=calibration.FABRIC,
    )
    res = ctl.run(nsteps=3, dt=prob.stable_dt())
    assert res.time_per_step > 0
    # 17 flops/cell, no exponentials
    assert res.flops_per_step == pytest.approx(256 * 256 * 1024 * 17)
