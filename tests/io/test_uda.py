"""Tests for UDA-style checkpoint archives and bit-exact restart."""

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.io.uda import UdaArchive, load_checkpoint, restart_tasks, save_checkpoint


def run_burgers(nsteps, num_ranks=2, init_tasks=None, t0=0.0, grid=None):
    grid = grid or Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid,
        prob.tasks(),
        init_tasks if init_tasks is not None else prob.init_tasks(),
        num_ranks=num_ranks,
        mode="async",
        real=True,
    )
    dt = prob.stable_dt()
    res = ctl.run(nsteps=nsteps, dt=dt)
    return grid, prob, res, dt


def collect(res):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in res.final_dws
        for v in dw.grid_variables()
    }


def test_save_load_roundtrip(tmp_path):
    grid, prob, res, dt = run_burgers(3)
    save_checkpoint(tmp_path / "out.uda", grid, res.final_dws, step=3, time=res.sim_time)
    ck = load_checkpoint(tmp_path / "out.uda")
    assert ck.step == 3
    assert ck.time == pytest.approx(res.sim_time)
    assert ck.grid.extent == grid.extent and ck.grid.layout == grid.layout
    ref = collect(res)
    assert set(ck.fields["u"]) == set(ref)
    for pid, arr in ck.fields["u"].items():
        assert np.array_equal(arr, ref[pid])
    # the uNorm reduction was archived too
    assert "uNorm" in ck.reductions


def test_restart_continues_bit_exactly(tmp_path):
    """4 steps + checkpoint + 4 restarted steps == 8 straight steps."""
    grid, prob, first, dt = run_burgers(4)
    save_checkpoint(tmp_path / "ck.uda", grid, first.final_dws, 4, first.sim_time)

    ck = load_checkpoint(tmp_path / "ck.uda")
    prob2 = BurgersProblem(ck.grid)
    ctl = SimulationController(
        ck.grid, prob2.tasks(), restart_tasks(ck, prob2.u_label),
        num_ranks=2, mode="async", real=True,
    )
    resumed = ctl.run(nsteps=4, dt=dt, start_step=ck.step)

    _, _, straight, _ = run_burgers(8)
    a, b = collect(resumed), collect(straight)
    for pid in b:
        assert np.array_equal(a[pid], b[pid]), pid


def test_restart_across_different_rank_count(tmp_path):
    """Checkpoint on 2 ranks, restart on 4: identical physics."""
    grid, prob, first, dt = run_burgers(3, num_ranks=2)
    save_checkpoint(tmp_path / "ck.uda", grid, first.final_dws, 3, first.sim_time)
    ck = load_checkpoint(tmp_path / "ck.uda")
    prob2 = BurgersProblem(ck.grid)
    ctl = SimulationController(
        ck.grid, prob2.tasks(), restart_tasks(ck, prob2.u_label),
        num_ranks=4, mode="sync", real=True,
    )
    resumed = ctl.run(nsteps=3, dt=dt, start_step=ck.step)
    _, _, straight, _ = run_burgers(6)
    a, b = collect(resumed), collect(straight)
    for pid in b:
        assert np.array_equal(a[pid], b[pid]), pid


def test_multiple_steps_in_one_archive(tmp_path):
    grid, prob, r1, dt = run_burgers(2)
    arch = UdaArchive(tmp_path / "multi.uda")
    arch.save(grid, r1.final_dws, 2, r1.sim_time)
    _, _, r2, _ = run_burgers(5)
    arch.save(grid, r2.final_dws, 5, r2.sim_time)
    assert arch.steps() == [2, 5]
    assert arch.load().step == 5  # default: latest
    assert arch.load(step=2).step == 2
    with pytest.raises(KeyError):
        arch.load(step=3)


def test_archive_grid_mismatch_rejected(tmp_path):
    grid, prob, res, dt = run_burgers(1)
    arch = UdaArchive(tmp_path / "a.uda")
    arch.save(grid, res.final_dws, 1, res.sim_time)
    other = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    _, _, res2, _ = run_burgers(1, grid=other)
    with pytest.raises(ValueError, match="belongs to a grid"):
        arch.save(other, res2.final_dws, 2, 0.0)


def test_missing_archive_and_field_errors(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(tmp_path / "nope.uda")
    grid, prob, res, dt = run_burgers(1)
    save_checkpoint(tmp_path / "b.uda", grid, res.final_dws, 1, res.sim_time)
    ck = load_checkpoint(tmp_path / "b.uda")
    from repro.core.varlabel import VarLabel

    with pytest.raises(KeyError, match="no field"):
        restart_tasks(ck, VarLabel("pressure"))


def test_restart_shape_mismatch_detected(tmp_path):
    grid, prob, res, dt = run_burgers(1)
    save_checkpoint(tmp_path / "c.uda", grid, res.final_dws, 1, res.sim_time)
    ck = load_checkpoint(tmp_path / "c.uda")
    # sabotage one patch
    pid = next(iter(ck.fields["u"]))
    ck.fields["u"][pid] = np.zeros((2, 2, 2))
    prob2 = BurgersProblem(ck.grid)
    ctl = SimulationController(
        ck.grid, prob2.tasks(), restart_tasks(ck, prob2.u_label),
        num_ranks=1, mode="async", real=True,
    )
    with pytest.raises(ValueError, match="shape"):
        ctl.run(nsteps=1, dt=dt)
