"""Table V: strong-scaling efficiency, min CGs -> 128 CGs.

Paper: 31.7% (small problem, simd.async) up to 97.7% (large, acc.sync);
larger problems scale better; vectorized variants scale worse than
non-vectorized; sync "scales" better than async only because its
baseline is slower.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import table5, table5_data


@pytest.mark.benchmark(group="table5")
def test_table5_scaling_efficiency(benchmark, publish):
    rows = run_once(benchmark, table5_data)
    publish("table5", table5())

    by_name = {r["problem"]: r for r in rows}
    small, large = by_name["16x16x512"], by_name["128x128x512"]

    # paper band: 31.7% .. 97.7% across the whole table
    for r in rows:
        for v in ("acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async"):
            assert 0.28 <= r[v] <= 1.0, (r["problem"], v, r[v])

    # the fastest variant's efficiency spans ~32% (small) to ~90% (large)
    assert small["acc_simd.async"] == pytest.approx(0.35, abs=0.08)  # paper 31.7%
    assert large["acc_simd.async"] == pytest.approx(0.85, abs=0.10)  # paper 89.9%

    # monotone: bigger problems scale better, per variant
    for v in ("acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async"):
        seq = [r[v] for r in rows]
        assert seq == sorted(seq), v

    # vectorized scales worse than non-vectorized (fixed costs loom larger)
    for r in rows:
        assert r["acc_simd.async"] <= r["acc.async"] + 0.02
        assert r["acc_simd.sync"] <= r["acc.sync"] + 0.02
