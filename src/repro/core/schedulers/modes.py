"""Convenience scheduler subclasses pinning the operating mode.

The paper describes one scheduler with three modes (Sec. V-C); these
subclasses give each mode a named type, mirroring how Uintah exposes
separate scheduler components while sharing the implementation.
"""

from __future__ import annotations

from repro.core.schedulers.scheduler import SunwayScheduler


class AsyncScheduler(SunwayScheduler):
    """The asynchronous MPE+CPE scheduler — the paper's contribution."""

    def __init__(self, *args, **kwargs):
        kwargs["mode"] = "async"
        super().__init__(*args, **kwargs)


class SyncScheduler(SunwayScheduler):
    """Synchronous MPE+CPE mode: spin on the completion flag, no overlap."""

    def __init__(self, *args, **kwargs):
        kwargs["mode"] = "sync"
        super().__init__(*args, **kwargs)


class MPEOnlyScheduler(SunwayScheduler):
    """MPE-only mode: kernels run on the management core (host.sync)."""

    def __init__(self, *args, **kwargs):
        kwargs["mode"] = "mpe_only"
        super().__init__(*args, **kwargs)
