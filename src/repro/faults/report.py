"""The resilience report: what went wrong and what it cost.

A :class:`ResilienceReport` aggregates one (possibly multi-segment)
resilient run: the injected fault stream, the scheduler-side recovery
counters, checkpoint/recovery bookkeeping, and — when a fault-free
reference time is supplied — the wall-clock overhead the faults and
their recovery cost.
"""

from __future__ import annotations

import dataclasses

from repro.core.schedulers.base import SchedulerStats
from repro.harness.reportfmt import pct, render_table, seconds


@dataclasses.dataclass
class ResilienceReport:
    """Everything a resilient run reveals about its faults and recovery."""

    seed: int
    nsteps: int
    num_ranks_start: int
    num_ranks_end: int
    #: ``{fault kind: count}`` from the injector's event stream.
    faults_by_kind: dict[str, int]
    #: Merged scheduler counters over all ranks and run segments
    #: (includes the resilience counters: timeouts, retries, fallbacks).
    stats: SchedulerStats
    checkpoints_written: int = 0
    rank_failures: int = 0
    recoveries: int = 0
    steps_replayed: int = 0
    #: Tracer spans attributed to recovery work (``recover-*`` /
    #: ``straggler`` lanes).
    recovery_spans: int = 0
    #: Simulated seconds actually spent, including discarded (replayed)
    #: segment work.
    faulty_time: float = 0.0
    #: Simulated seconds of the fault-free reference run, if measured.
    fault_free_time: float | None = None

    @property
    def faults_injected(self) -> int:
        """Total faults of all kinds."""
        return sum(self.faults_by_kind.values())

    @property
    def overhead(self) -> float | None:
        """Fractional time overhead vs. the fault-free run (None if no
        reference)."""
        if self.fault_free_time is None or self.fault_free_time <= 0:
            return None
        return self.faulty_time / self.fault_free_time - 1.0

    def render(self) -> str:
        """Aligned text table (the ``repro resilience`` CLI output)."""
        rows: list[tuple[str, object]] = [
            ("seed", self.seed),
            ("timesteps", self.nsteps),
            ("ranks (start -> end)", f"{self.num_ranks_start} -> {self.num_ranks_end}"),
            ("faults injected", self.faults_injected),
        ]
        for kind in sorted(self.faults_by_kind):
            rows.append((f"  {kind}", self.faults_by_kind[kind]))
        rows += [
            ("kernel timeouts", self.stats.kernel_timeouts),
            ("kernel re-offloads", self.stats.kernel_retries),
            ("MPE fallbacks", self.stats.mpe_fallbacks),
            ("MPI retransmissions", self.stats.mpi_retries),
            ("stragglers detected", self.stats.stragglers_detected),
            ("rank failures", self.rank_failures),
            ("recoveries from checkpoint", self.recoveries),
            ("timesteps replayed", self.steps_replayed),
            ("checkpoints written", self.checkpoints_written),
            ("recovery trace spans", self.recovery_spans),
            ("simulated time (faulty)", seconds(self.faulty_time)),
        ]
        if self.fault_free_time is not None:
            rows.append(("simulated time (fault-free)", seconds(self.fault_free_time)))
            over = self.overhead
            rows.append(("resilience overhead", pct(over) if over is not None else "n/a"))
        return render_table("Resilience report", ["Metric", "Value"], rows)
