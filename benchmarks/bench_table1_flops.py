"""Table I: FLOPs per cell of the model problem.

Paper values: 299 -> 311 flops/cell rising with problem size, ~215 of
~311 contributed by exponentials.  Regenerated from the instrumented
flop counters over the Table III grid suite.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import table1, table1_data


@pytest.mark.benchmark(group="table1")
def test_table1_flops_per_cell(benchmark, publish):
    rows = run_once(benchmark, table1_data)
    publish("table1", table1())

    by_name = {r["problem"]: r for r in rows}
    # paper band: smallest 299, largest 311; counted with ghosted denominator
    assert 296 <= by_name["16x16x512"]["flops_per_cell"] <= 305
    assert 306 <= by_name["128x128x512"]["flops_per_cell"] <= 312
    # monotone rise with problem size
    seq = [r["flops_per_cell"] for r in rows]
    assert seq == sorted(seq)
    # exponential share ~215/311
    assert 0.66 <= by_name["128x128x512"]["exp_share"] <= 0.72
