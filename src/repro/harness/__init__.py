"""The evaluation harness: everything behind the paper's Sec. VII.

* :mod:`~repro.harness.calibration` — the calibrated cost-model constants
  and their provenance.
* :mod:`~repro.harness.problems` — Table III problem settings.
* :mod:`~repro.harness.variants` — Table IV experimental variants.
* :mod:`~repro.harness.runner` — run one (problem, variant, CG-count)
  experiment and cache results across tables.
* :mod:`~repro.harness.metrics` — scaling efficiency, async improvement,
  optimization boost, Gflop/s, floating-point efficiency.
* :mod:`~repro.harness.tables` / :mod:`~repro.harness.figures` —
  regenerate every table and figure of the evaluation.
"""

from repro.harness.problems import ProblemSetting, PROBLEMS, problem_by_name, CG_COUNTS
from repro.harness.variants import Variant, VARIANTS, variant_by_name
from repro.harness.runner import run_experiment, ExperimentResult, clear_cache

__all__ = [
    "ProblemSetting",
    "PROBLEMS",
    "problem_by_name",
    "CG_COUNTS",
    "Variant",
    "VARIANTS",
    "variant_by_name",
    "run_experiment",
    "ExperimentResult",
    "clear_cache",
]
