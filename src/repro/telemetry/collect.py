"""One run's telemetry collection: registry + per-(rank, step) buckets.

:class:`RunTelemetry` is the object a run carries when observability is
on.  It owns the :class:`~repro.telemetry.metrics.MetricsRegistry` and
the per-``(rank, step)`` counter buckets the ledger is built from, and
exposes the *explicit hook* methods the engines call directly for data
the lifecycle bus does not carry (queue depths, kernel durations, DMA
volume, fabric traffic).  Every hook is a no-op-by-absence: callers hold
``telemetry = None`` by default and guard with one ``is not None`` test,
so a run without telemetry executes the pre-telemetry code path exactly.

:class:`TelemetrySubscriber` is the lifecycle-bus side: one per rank,
subscribed by :class:`~repro.core.schedulers.base.SchedulerCore` next to
the stats/trace subscribers.  It attributes every event to the emitting
rank's *current timestep* (counted from ``step-begin`` events), which is
what makes per-timestep accounting possible without threading step
numbers through every engine.

None of this may ever charge simulated time: telemetry observes the DES,
it must not perturb it.  The schedule with telemetry attached is
bit-identical to the schedule without (pinned by the telemetry tests).
"""

from __future__ import annotations

import collections

from repro.core.schedulers.lifecycle import LifecycleEvent, TaskState
from repro.telemetry.metrics import MetricsRegistry


class RunTelemetry:
    """Everything one instrumented run collects."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        #: Per-(rank, step) counter buckets; step 0 is initialization
        #: spillover (schedulers emit before their first step-begin only
        #: if instrumented during init, which the controller avoids).
        self.step_buckets: dict[tuple[int, int], collections.Counter] = {}
        self._cur_step: dict[int, int] = {}

    # ------------------------------------------------------------ wiring
    def subscriber_for(self, rank: int) -> "TelemetrySubscriber":
        """The lifecycle-bus observer for one rank's scheduler."""
        return TelemetrySubscriber(self, rank)

    def begin_step(self, rank: int) -> None:
        self._cur_step[rank] = self._cur_step.get(rank, 0) + 1

    def current_step(self, rank: int) -> int:
        return self._cur_step.get(rank, 0)

    def bump(self, rank: int, key: str, n=1) -> None:
        """Add ``n`` to ``key`` in rank's current-step bucket."""
        bkey = (rank, self._cur_step.get(rank, 0))
        bucket = self.step_buckets.get(bkey)
        if bucket is None:
            bucket = self.step_buckets[bkey] = collections.Counter()
        bucket[key] += n

    def step_totals(self, step: int) -> collections.Counter:
        """Bucket values of one step summed over all ranks."""
        out: collections.Counter = collections.Counter()
        for (_rank, s), bucket in self.step_buckets.items():
            if s == step:
                out.update(bucket)
        return out

    # ------------------------------------------------ explicit hooks
    # Called directly from the engines, never via the bus.  Each carries
    # data the bus events do not: depths, durations, volumes.

    def on_loop_sample(self, ready: int, inflight: int, workq: int) -> None:
        """Scheduler-loop sample: queue depths at one iteration."""
        reg = self.registry
        reg.observe("sched.ready_depth", ready)
        reg.observe("cpe.inflight", inflight)
        reg.observe("comm.workq_depth", workq)

    def on_kernel_launch(self, rank: int, task_name: str, duration: float, volume) -> None:
        """A kernel left for the CPE cluster: duration and DMA volume."""
        reg = self.registry
        base = task_name.split("@", 1)[0]
        reg.observe("kernel.seconds", duration)
        reg.observe(f"kernel.seconds.{base}", duration)
        self.bump(rank, "cpe_kernel_seconds", duration)
        if volume is not None:
            reg.inc("dma.get.bytes", volume.get_bytes)
            reg.inc("dma.put.bytes", volume.put_bytes)
            reg.inc("dma.descriptors", volume.descriptors)
            self.bump(rank, "dma_bytes", volume.get_bytes + volume.put_bytes)

    def on_ghost_send(self, rank: int, nbytes: int) -> None:
        """CommEngine sent one packed ghost slab."""
        reg = self.registry
        reg.inc("ghost.msgs.sent")
        reg.inc("ghost.bytes.sent", nbytes)
        self.bump(rank, "msgs_sent")
        self.bump(rank, "bytes_sent", nbytes)

    def on_ghost_unpack(self, rank: int, nbytes: int) -> None:
        """CommEngine unpacked one received ghost slab."""
        reg = self.registry
        reg.inc("ghost.msgs.recv")
        reg.inc("ghost.bytes.recv", nbytes)
        self.bump(rank, "msgs_recv")

    def on_wire_message(self, nbytes: int) -> None:
        """Fabric-level traffic (includes retransmitted/duplicated bytes)."""
        reg = self.registry
        reg.inc("net.messages")
        reg.inc("net.bytes", nbytes)

    def on_retransmit(self, source: int, nbytes: int) -> None:
        reg = self.registry
        reg.inc("net.retransmits")
        reg.inc("net.bytes", nbytes)


#: Named lifecycle events folded 1:1 into bucket keys and counters.
_EVENT_COUNTERS = {
    "local-copy": ("comm.local_copies", "local_copies"),
    "reduction": ("comm.reductions", "reductions"),
    "scrubbed": ("dw.scrubbed", "scrubbed"),
    "straggler": ("resilience.stragglers", "stragglers"),
    "kernel-timeout": ("resilience.kernel_timeouts", "kernel_timeouts"),
    "kernel-retry": ("resilience.kernel_retries", "kernel_retries"),
}


class TelemetrySubscriber:
    """Folds one rank's lifecycle events into the run's telemetry."""

    __slots__ = ("tele", "rank")

    def __init__(self, tele: RunTelemetry, rank: int):
        self.tele = tele
        self.rank = rank

    def __call__(self, ev: LifecycleEvent) -> None:
        tele, rank = self.tele, self.rank
        kind = ev.kind
        if kind == "transition":
            state, info = ev.state, ev.info
            if state is TaskState.DONE:
                tele.registry.inc("tasks.done")
                tele.bump(rank, "tasks_done")
            elif state is TaskState.RUNNING:
                backend = info.get("backend")
                if backend == "cpe":
                    key = "kernel_retries" if info.get("retry") else "kernels_offloaded"
                    tele.registry.inc(
                        "resilience.kernel_retries"
                        if info.get("retry")
                        else "kernels.offloaded"
                    )
                    tele.bump(rank, key)
                elif backend == "mpe":
                    tele.registry.inc("kernels.mpe")
                    tele.bump(rank, "kernels_mpe")
                elif backend == "mpe_fallback":
                    tele.registry.inc("resilience.mpe_fallbacks")
                    tele.bump(rank, "mpe_fallbacks")
            elif state is TaskState.READY and info.get("retry"):
                tele.registry.inc("resilience.kernel_retries")
                tele.bump(rank, "kernel_retries")
            elif state is TaskState.FAILED and info.get("cause") == "timeout":
                tele.registry.inc("resilience.kernel_timeouts")
                tele.bump(rank, "kernel_timeouts")
        elif kind == "step-begin":
            tele.begin_step(rank)
        elif kind == "flops":
            tele.registry.inc("flops.counted", ev.info["n"])
            tele.bump(rank, "flops", ev.info["n"])
        elif kind == "idle":
            tele.registry.inc("mpe.idle.seconds", ev.info["seconds"])
            tele.bump(rank, "idle_seconds", ev.info["seconds"])
        elif kind == "spin":
            tele.registry.inc("mpe.spin.seconds", ev.info["seconds"])
            tele.bump(rank, "spin_seconds", ev.info["seconds"])
        else:
            names = _EVENT_COUNTERS.get(kind)
            if names is not None:
                tele.registry.inc(names[0])
                tele.bump(rank, names[1])
