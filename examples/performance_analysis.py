#!/usr/bin/env python
"""Profile a run: per-activity MPE/CPE breakdown and a Chrome trace.

The scheduler's tracer answers "where did the time go?" — the question
behind every number in the paper's Sec. VII.  This example runs one
medium workload under the async scheduler, prints the per-activity
summary, and exports a Chrome-tracing JSON you can open in
chrome://tracing or https://ui.perfetto.dev.

Usage::

    python examples/performance_analysis.py [trace.json]
"""

import json
import sys

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.harness import calibration
from repro.harness.reportfmt import render_table, seconds


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    grid = Grid(extent=(64, 64, 128), layout=(2, 2, 2))
    problem = BurgersProblem(grid)
    controller = SimulationController(
        grid,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=2,
        mode="async",
        real=True,
        trace_enabled=True,
        cost_model=calibration.cost_model(simd=True),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    )
    result = controller.run(nsteps=5, dt=problem.stable_dt())

    summary = result.trace.summarize(rank=0)
    rows = [
        (name, lane, info["count"], seconds(info["total"]), seconds(info["mean"]))
        for (name, lane), info in sorted(
            summary.items(), key=lambda kv: kv[1]["total"], reverse=True
        )
    ]
    print(
        render_table(
            "Rank 0 activity breakdown (5 steps, acc_simd.async)",
            ["Activity", "Lane", "Count", "Total", "Mean"],
            rows,
        )
    )
    mpe = result.trace.busy_time(0, "mpe")
    cpe = result.trace.busy_time(0, "cpe")
    overlap = result.trace.overlap_time(0, "mpe", "cpe")
    print()
    print(f"MPE busy {seconds(mpe)}, CPE busy {seconds(cpe)}, "
          f"overlapped {seconds(overlap)} "
          f"({overlap / mpe * 100:.0f}% of MPE work hidden under kernels)")

    events = result.trace.to_chrome_trace()
    with open(out_path, "w") as fh:
        json.dump(events, fh)
    print(f"chrome trace with {len(events)} events written to {out_path}")


if __name__ == "__main__":
    main()
