"""The deterministic, seedable fault source.

The injector is a passive oracle: the runtime components that model
hardware (``sunway.athread`` for CPE offloads, ``simmpi.network`` for the
interconnect, the schedulers for timestep boundaries) *ask* it whether a
fault strikes the operation they are about to perform.  Because the DES
executes single-threaded in a deterministic event order, the sequence of
queries — and therefore the per-category RNG streams — is reproducible:
the same seed and configuration produce a bit-identical fault event
stream, which the determinism tests assert.

Fault surface
-------------
* CPE faults, drawn once per offloaded kernel (``kernel_fault``):
  ``slowdown`` (the kernel takes ``kernel_slowdown_factor`` times
  longer), ``stuck`` (the completion flag is never bumped — a hung CPE),
  and ``dma_error`` (the kernel dies at ``dma_error_frac`` of its runtime
  with a :class:`~repro.sunway.dma.DMAError`; its data effects are never
  published).
* Network faults, drawn once per matched point-to-point transfer
  (``message_fault``): ``drop`` (the transport must retransmit with
  backoff), ``duplicate`` (the wire carries the payload twice; the
  transport filters the copy), ``delay`` (an extra fixed latency), and a
  per-rank ``brownout`` (every message touching one rank inside a
  simulated-time window runs ``brownout_factor`` times slower — no RNG,
  purely window-driven).
* Whole-rank failure (``on_step_begin``): rank ``fail_rank`` raises
  :class:`RankFailure` when it reaches global timestep ``fail_at_step``.
  Recovery from this is the job of
  :class:`~repro.faults.recovery.ResilientRunner`.

Injecting faults without a :class:`~repro.faults.policies.ResiliencePolicy`
attached to the scheduler surfaces them raw: a DMA error raises, a stuck
kernel starves the DES until the simulator reports a deadlock.  That is
intentional — the fault model and the recovery machinery are separable.
"""

from __future__ import annotations

import dataclasses

import numpy as np


class RankFailure(RuntimeError):
    """A simulated whole-rank (core-group) failure.

    Raised inside the failing rank's scheduler at the beginning of the
    configured timestep; propagates out of ``Simulator.run`` through the
    failed driver process so the run aborts exactly like a died node
    would kill an MPI job.
    """

    def __init__(self, rank: int, step: int):
        super().__init__(f"rank {rank} failed at start of timestep {step}")
        self.rank = rank
        self.step = step


@dataclasses.dataclass(frozen=True)
class KernelFault:
    """One fault striking an offloaded kernel."""

    kind: str  # "slowdown" | "stuck" | "dma_error"
    #: Duration multiplier (slowdown only).
    factor: float = 1.0
    #: Fraction of the kernel duration at which a DMA error strikes.
    error_frac: float = 0.5


@dataclasses.dataclass(frozen=True)
class MessageFault:
    """Faults striking one matched point-to-point message."""

    drop: bool = False
    duplicate: bool = False
    #: Extra seconds added to the transfer.
    extra_delay: float = 0.0
    #: Multiplier on the fault-free transfer time (brownout).
    slow_factor: float = 1.0


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """Log record of one injected fault (the deterministic event stream)."""

    time: float
    kind: str
    site: str


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """What to inject, with which probabilities, under which seed.

    All probabilities default to zero: a default-constructed config
    injects nothing and the runtime behaves bit-identically to a run
    without an injector attached.
    """

    seed: int = 0

    # -- CPE faults (per offloaded kernel) --------------------------------
    kernel_slowdown_prob: float = 0.0
    kernel_slowdown_factor: float = 4.0
    kernel_stuck_prob: float = 0.0
    dma_error_prob: float = 0.0
    dma_error_frac: float = 0.35

    # -- network faults (per matched p2p message) -------------------------
    msg_drop_prob: float = 0.0
    msg_dup_prob: float = 0.0
    msg_delay_prob: float = 0.0
    msg_delay_seconds: float = 200e-6

    # -- brownout: one rank's NIC runs slow inside a sim-time window ------
    brownout_rank: int | None = None
    brownout_t0: float = 0.0
    brownout_t1: float = 0.0
    brownout_factor: float = 8.0

    # -- whole-rank failure ----------------------------------------------
    fail_rank: int | None = None
    fail_at_step: int | None = None

    def __post_init__(self) -> None:
        probs = (
            self.kernel_slowdown_prob,
            self.kernel_stuck_prob,
            self.dma_error_prob,
            self.msg_drop_prob,
            self.msg_dup_prob,
            self.msg_delay_prob,
        )
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"fault probabilities must be in [0, 1], got {p}")
        if self.kernel_slowdown_prob + self.kernel_stuck_prob + self.dma_error_prob > 1.0:
            raise ValueError("kernel fault probabilities must sum to <= 1")
        if self.msg_drop_prob + self.msg_dup_prob + self.msg_delay_prob > 1.0:
            raise ValueError("message fault probabilities must sum to <= 1")
        if self.kernel_slowdown_factor < 1.0:
            raise ValueError("kernel_slowdown_factor must be >= 1")
        if not 0.0 < self.dma_error_frac <= 1.0:
            raise ValueError("dma_error_frac must be in (0, 1]")
        if (self.fail_rank is None) != (self.fail_at_step is None):
            raise ValueError("fail_rank and fail_at_step must be set together")
        if self.fail_at_step is not None and self.fail_at_step < 1:
            raise ValueError("fail_at_step numbers timesteps from 1")

    @property
    def cpe_active(self) -> bool:
        """Whether any per-kernel fault can fire."""
        return (
            self.kernel_slowdown_prob + self.kernel_stuck_prob + self.dma_error_prob
        ) > 0.0

    @property
    def net_active(self) -> bool:
        """Whether any per-message fault can fire."""
        return (
            self.msg_drop_prob + self.msg_dup_prob + self.msg_delay_prob
        ) > 0.0 or self.brownout_rank is not None

    @property
    def can_hang(self) -> bool:
        """Whether a kernel may never complete (watchdog required)."""
        return self.kernel_stuck_prob > 0.0


class FaultInjector:
    """Seeded fault oracle shared by all ranks of one simulated job.

    Separate RNG streams per fault category (CPE, network, retransmission
    jitter) keep the categories independent: adding message faults does
    not perturb the kernel fault stream and vice versa.  Every injected
    fault is appended to :attr:`injected` — the event stream the
    determinism tests compare across runs.
    """

    def __init__(self, config: FaultConfig | None = None):
        self.config = config or FaultConfig()
        seed = self.config.seed
        self._rng_cpe = np.random.default_rng((seed, 0xC93))
        self._rng_net = np.random.default_rng((seed, 0x7E7))
        self._rng_jit = np.random.default_rng((seed, 0x317))
        self.injected: list[InjectedFault] = []
        #: Global step number of relative step 0 (set by the recovery
        #: runner when a segment restarts from a checkpoint).
        self.step_offset = 0
        self._failure_armed = self.config.fail_rank is not None

    # -- properties the runtime gates overhead on --------------------------
    @property
    def can_hang(self) -> bool:
        """True if the scheduler needs a completion-timeout watchdog."""
        return self.config.can_hang

    # -- CPE faults --------------------------------------------------------
    def kernel_fault(
        self, rank: int, name: str, duration: float, now: float
    ) -> KernelFault | None:
        """Draw the fault (if any) striking one offloaded kernel."""
        c = self.config
        if not c.cpe_active:
            return None
        u = float(self._rng_cpe.random())
        site = f"r{rank}:{name}"
        if u < c.kernel_stuck_prob:
            self._record(now, "kernel_stuck", site)
            return KernelFault("stuck")
        u -= c.kernel_stuck_prob
        if u < c.dma_error_prob:
            self._record(now, "dma_error", site)
            return KernelFault("dma_error", error_frac=c.dma_error_frac)
        u -= c.dma_error_prob
        if u < c.kernel_slowdown_prob:
            self._record(now, "kernel_slowdown", site)
            return KernelFault("slowdown", factor=c.kernel_slowdown_factor)
        return None

    # -- network faults ----------------------------------------------------
    def message_fault(
        self, source: int, dest: int, nbytes: int, now: float
    ) -> MessageFault | None:
        """Draw the fault (if any) striking one matched p2p transfer."""
        c = self.config
        if not c.net_active:
            return None
        slow = 1.0
        if c.brownout_rank is not None and c.brownout_t0 <= now < c.brownout_t1:
            if source == c.brownout_rank or dest == c.brownout_rank:
                slow = c.brownout_factor
                self._record(now, "brownout", f"{source}->{dest}")
        drop = dup = False
        extra = 0.0
        if c.msg_drop_prob + c.msg_dup_prob + c.msg_delay_prob > 0.0:
            u = float(self._rng_net.random())
            site = f"{source}->{dest}:{nbytes}B"
            if u < c.msg_drop_prob:
                drop = True
                self._record(now, "msg_drop", site)
            elif u < c.msg_drop_prob + c.msg_dup_prob:
                dup = True
                self._record(now, "msg_dup", site)
            elif u < c.msg_drop_prob + c.msg_dup_prob + c.msg_delay_prob:
                extra = c.msg_delay_seconds
                self._record(now, "msg_delay", site)
        if not drop and not dup and extra == 0.0 and slow == 1.0:
            return None
        return MessageFault(drop=drop, duplicate=dup, extra_delay=extra, slow_factor=slow)

    def redrop(self, now: float, site: str) -> bool:
        """Whether a retransmission is dropped again (same drop rate)."""
        dropped = float(self._rng_net.random()) < self.config.msg_drop_prob
        if dropped:
            self._record(now, "msg_drop", site)
        return dropped

    def jitter(self) -> float:
        """Uniform [0, 1) draw for retransmission backoff jitter."""
        return float(self._rng_jit.random())

    # -- whole-rank failure ------------------------------------------------
    def on_step_begin(self, rank: int, step: int) -> None:
        """Called by each rank's scheduler when it begins a timestep.

        ``step`` is relative to the current run segment; the injector
        adds :attr:`step_offset` to compare against the configured global
        failure step.  Raises :class:`RankFailure` exactly once.
        """
        if not self._failure_armed:
            return
        c = self.config
        global_step = self.step_offset + step
        if rank == c.fail_rank and global_step >= (c.fail_at_step or 0):
            self._failure_armed = False
            self._record(float("nan"), "rank_failure", f"r{rank}@step{global_step}")
            raise RankFailure(rank, global_step)

    def disarm_failure(self) -> None:
        """Prevent further rank failures (the one-shot fault fired)."""
        self._failure_armed = False

    # -- accounting --------------------------------------------------------
    def _record(self, now: float, kind: str, site: str) -> None:
        self.injected.append(InjectedFault(now, kind, site))

    def counts_by_kind(self) -> dict[str, int]:
        """``{fault kind: number injected}`` over the whole run."""
        out: dict[str, int] = {}
        for f in self.injected:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out
