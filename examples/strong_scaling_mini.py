#!/usr/bin/env python
"""A reduced-scale strong-scaling study (paper Sec. VII-B, Fig. 5/Table V).

Sweeps the smallest and largest Table III problems over 1..128 simulated
core-groups in performance-model mode, printing wall time per step,
speedup, scaling efficiency and achieved Gflop/s — the same quantities
the paper plots, generated in seconds on a laptop.

Usage::

    python examples/strong_scaling_mini.py
"""

from repro.harness import metrics
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import pct, render_table, seconds
from repro.harness.runner import run_experiment
from repro.harness.variants import variant_by_name


def study(problem_name: str, variant_name: str, nsteps: int = 5):
    problem = problem_by_name(problem_name)
    variant = variant_by_name(variant_name)
    base = None
    rows = []
    for cgs in problem.cg_counts():
        r = run_experiment(problem, variant, cgs, nsteps=nsteps)
        if base is None:
            base = r
        rows.append(
            (
                cgs,
                seconds(r.time_per_step),
                f"{metrics.speedup(base, r):.2f}x",
                pct(metrics.scaling_efficiency(base, r)),
                f"{r.gflops:.1f}",
            )
        )
    return rows


def main() -> None:
    for pname in ("16x16x512", "128x128x512"):
        rows = study(pname, "acc_simd.async")
        print(
            render_table(
                f"Strong scaling, {pname}, acc_simd.async (10-step protocol "
                "shortened to 5)",
                ["CGs", "Time/step", "Speedup", "Efficiency", "Gflop/s"],
                rows,
            )
        )
        print()
    print(
        "Paper shape check: the small problem's efficiency collapses toward"
        "\n~30% at 128 CGs while the large problem stays near 90% — compare"
        "\nTable V (31.7% and 89.9%)."
    )


if __name__ == "__main__":
    main()
