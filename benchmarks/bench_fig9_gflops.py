"""Figure 9: achieved floating-point performance (Gflop/s).

Paper: the Burgers simulation reaches 974.5 Gflop/s with 128 CGs
(acc_simd.async); performance grows with CG count and problem size.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.figures import fig9, fig9_data


@pytest.mark.benchmark(group="fig9")
def test_fig9_floating_point_performance(benchmark, publish):
    data = run_once(benchmark, fig9_data)
    publish("fig9", fig9())

    # headline: ~1 Tflop/s at 128 CGs on the largest problem (paper 974.5)
    top = data["128x128x512"][128]
    assert 700 <= top <= 1200

    # performance grows with CGs for every problem
    for pname, series in data.items():
        cgs = sorted(series)
        vals = [series[c] for c in cgs]
        assert vals == sorted(vals), pname

    # and with problem size at a fixed CG count
    at_128 = [series[128] for series in data.values()]
    assert at_128 == sorted(at_128)
