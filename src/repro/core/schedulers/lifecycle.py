"""Task-lifecycle state machine and event layer.

Every scheduler drives its tasks through one explicit state machine::

    pending -> ready -> dispatched -> running -> retiring -> done
                  ^                      |
                  |                      v
                  +------ retry ------ failed ---- fallback --> running

and announces each move as a :class:`LifecycleEvent`.  Cross-cutting
concerns *subscribe* to the stream instead of being hand-threaded
through the scheduling loop:

* :class:`StatsSubscriber` folds events into
  :class:`~repro.core.schedulers.base.SchedulerStats` counters;
* :class:`TraceSubscriber` forwards span-carrying events to the
  :class:`~repro.core.trace.Tracer`;
* :class:`RetryGovernor` — the ``repro.faults`` resilience hook — counts
  ``FAILED`` transitions per task and answers whether the policy allows
  another re-offload or demands the MPE fallback.

Besides transitions, schedulers emit *named* events (``msg-sent``,
``local-copy``, ``scrubbed``, ``idle`` …) for work that is real but not
a task state change; the mapping to counters lives in one place,
:class:`StatsSubscriber`.  See ``docs/ARCHITECTURE.md`` for the layer
diagram.
"""

from __future__ import annotations

import enum
import typing as _t


class TaskState(enum.Enum):
    """Where one detailed task is in its per-timestep life."""

    PENDING = "pending"
    READY = "ready"
    DISPATCHED = "dispatched"
    RUNNING = "running"
    RETIRING = "retiring"
    DONE = "done"
    FAILED = "failed"


#: Legal moves.  FAILED -> READY is a re-offload retry; FAILED -> RUNNING
#: is the sync-mode in-place respawn or the MPE fallback execution.
_ALLOWED: dict[TaskState, frozenset[TaskState]] = {
    TaskState.PENDING: frozenset({TaskState.READY}),
    TaskState.READY: frozenset({TaskState.DISPATCHED}),
    TaskState.DISPATCHED: frozenset({TaskState.RUNNING}),
    TaskState.RUNNING: frozenset({TaskState.RETIRING, TaskState.FAILED}),
    TaskState.RETIRING: frozenset({TaskState.DONE}),
    TaskState.FAILED: frozenset({TaskState.READY, TaskState.RUNNING}),
    TaskState.DONE: frozenset(),
}


class IllegalTransition(RuntimeError):
    """A scheduler tried a move the state machine forbids (runtime bug)."""


class LifecycleEvent:
    """One announcement: a state transition or a named runtime event.

    ``info`` carries free-form details; two keys have layer-wide meaning:
    ``span=(lane, name, t0, t1)`` asks the trace subscriber to record a
    busy interval, and counter-specific keys (``nbytes``, ``seconds``,
    ``n``, ``retry``, ``cause``, ``backend``) drive the stats mapping.
    """

    __slots__ = ("kind", "dt", "state", "t", "info")

    def __init__(self, kind, dt, state, t, info):
        self.kind = kind
        self.dt = dt
        self.state = state
        self.t = t
        self.info = info

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        what = self.state.name if self.state is not None else self.kind
        who = self.dt.name if self.dt is not None else "-"
        return f"<LifecycleEvent {what} {who} t={self.t:.6g}>"


class _ZeroClock:
    """Stand-in clock for lifecycles detached from a simulator."""

    now = 0.0


class TaskLifecycle:
    """Per-scheduler state machine; reset at every timestep boundary.

    ``clock`` is anything with a ``.now`` attribute (normally the DES
    simulator).  The subscriber loop is inlined into :meth:`transition`
    and :meth:`emit` — this sits inside the hottest scheduler path, and
    every event fires tens of thousands of times per run.
    """

    def __init__(self, clock=None):
        self._clock = clock if clock is not None else _ZeroClock
        self._subs: list[_t.Callable[[LifecycleEvent], None]] = []
        self._state: dict[int, TaskState] = {}

    def subscribe(self, fn: _t.Callable[[LifecycleEvent], None]) -> None:
        """Register an observer called synchronously on every event."""
        self._subs.append(fn)

    def begin_step(self, tasks, step: int = 0) -> None:
        """Register this timestep's tasks (all PENDING) and announce it.

        The event's ``info`` carries the task list and the step number so
        observers that mirror the state machine (the schedule validator)
        know the step's population without threading it separately.
        """
        tasks = list(tasks)
        self._state = {dt.dt_id: TaskState.PENDING for dt in tasks}
        ev = LifecycleEvent(
            "step-begin", None, None, self._clock.now, {"tasks": tasks, "step": step}
        )
        for fn in self._subs:
            fn(ev)

    def state_of(self, dt) -> TaskState | None:
        """Current state of one task (None when not registered)."""
        return self._state.get(dt.dt_id)

    def transition(self, dt, state: TaskState, **info) -> None:
        """Move ``dt`` to ``state``, validating legality, and announce."""
        cur = self._state.get(dt.dt_id)
        if cur is None:
            raise IllegalTransition(f"task {dt.dt_id} is not part of this timestep")
        if state not in _ALLOWED[cur]:
            raise IllegalTransition(f"{dt.name}: illegal transition {cur.name} -> {state.name}")
        self._state[dt.dt_id] = state
        ev = LifecycleEvent("transition", dt, state, self._clock.now, info)
        for fn in self._subs:
            fn(ev)

    def retire(self, dt, **info) -> None:
        """Finish a task: RETIRING (unless already there) then DONE."""
        if self._state.get(dt.dt_id) is not TaskState.RETIRING:
            self.transition(dt, TaskState.RETIRING)
        self.transition(dt, TaskState.DONE, **info)

    def emit(self, kind: str, dt=None, **info) -> None:
        """Announce a named (non-transition) runtime event."""
        ev = LifecycleEvent(kind, dt, None, self._clock.now, info)
        for fn in self._subs:
            fn(ev)


class StatsSubscriber:
    """Folds lifecycle events into ``SchedulerStats`` counters.

    This is the single place mapping runtime happenings to the paper's
    counters; schedulers and engines never touch the stats object.
    """

    def __init__(self, stats):
        self.stats = stats

    def __call__(self, ev: LifecycleEvent) -> None:
        s = self.stats
        kind = ev.kind
        if kind == "transition":
            state, info = ev.state, ev.info
            if state is TaskState.DONE:
                s.tasks_run += 1
            elif state is TaskState.RUNNING:
                backend = info.get("backend")
                if backend == "cpe":
                    if info.get("retry"):
                        s.kernel_retries += 1
                    else:
                        s.kernels_offloaded += 1
                elif backend == "mpe":
                    s.kernels_on_mpe += 1
                elif backend == "mpe_fallback":
                    s.mpe_fallbacks += 1
                    s.kernels_on_mpe += 1
            elif state is TaskState.READY and info.get("retry"):
                s.kernel_retries += 1
            elif state is TaskState.FAILED and info.get("cause") == "timeout":
                s.kernel_timeouts += 1
        elif kind == "msg-sent":
            s.messages_sent += 1
            s.bytes_sent += ev.info["nbytes"]
        elif kind == "msg-recv":
            s.messages_received += 1
        elif kind == "local-copy":
            s.local_copies += 1
        elif kind == "reduction":
            s.reductions += 1
        elif kind == "scrubbed":
            s.scrubbed += 1
        elif kind == "flops":
            s.kernel_flops += ev.info["n"]
        elif kind == "idle":
            s.idle_wait += ev.info["seconds"]
        elif kind == "spin":
            s.spin_wait += ev.info["seconds"]
        elif kind == "straggler":
            s.stragglers_detected += 1
        elif kind == "kernel-timeout":
            s.kernel_timeouts += 1
        elif kind == "kernel-retry":
            s.kernel_retries += 1


class TraceSubscriber:
    """Records every span-carrying event on the execution tracer."""

    def __init__(self, trace, rank: int):
        self.trace = trace
        self.rank = rank

    def __call__(self, ev: LifecycleEvent) -> None:
        span = ev.info.get("span")
        if span is not None:
            lane, name, t0, t1 = span
            self.trace.record(self.rank, lane, name, t0, t1)


class RetryGovernor:
    """Resilience-policy arbiter fed by FAILED transitions.

    Subscribes to the lifecycle stream, counts how often each task has
    failed this timestep (timeouts and DMA errors alike), and decides —
    per :class:`~repro.faults.policies.ResiliencePolicy` — whether the
    offload engine may retry or must fall back to the MPE.
    """

    def __init__(self, policy):
        self.policy = policy
        self.failures: dict[int, int] = {}

    def __call__(self, ev: LifecycleEvent) -> None:
        if ev.kind == "step-begin":
            self.failures.clear()
        elif ev.kind == "transition" and ev.state is TaskState.FAILED:
            self.failures[ev.dt.dt_id] = self.failures.get(ev.dt.dt_id, 0) + 1

    def should_retry(self, dt) -> bool:
        """Whether the policy grants this task another offload attempt."""
        return (
            self.policy is not None
            and self.failures.get(dt.dt_id, 0) <= self.policy.max_offload_retries
        )
