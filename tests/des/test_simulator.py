"""Unit tests for the DES event loop, clock, and run() semantics."""

import pytest

from repro.des import Simulator
from repro.des.simulator import EmptySchedule


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0
    sim.timeout(1.0)
    sim.run()
    assert sim.now == 6.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.5


def test_zero_delay_timeout_is_legal():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.0)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run(until=3.5)
    assert sim.now == 3.5


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 42
    assert sim.now == 1.0


def test_run_until_unreachable_event_raises_deadlock():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(until=ev)


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    sim.timeout(1.0)
    assert sim.peek() == 1.0


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []

        def a(sim):
            for _ in range(3):
                yield sim.timeout(1.0)
                trace.append(("a", sim.now))

        def b(sim):
            for _ in range(3):
                yield sim.timeout(1.0)
                trace.append(("b", sim.now))

        sim.process(a(sim))
        sim.process(b(sim))
        sim.run()
        return trace

    assert build() == build()


def test_max_events_guard_catches_zero_delay_loop():
    sim = Simulator()

    def spinner(sim):
        while True:
            yield sim.timeout(0.0)

    sim.process(spinner(sim))
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=1000)


def test_max_events_guard_allows_normal_completion():
    sim = Simulator()

    def proc(sim):
        for _ in range(5):
            yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run(max_events=1000)
    assert sim.now == 5.0
