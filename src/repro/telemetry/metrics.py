"""The metrics registry: counters, gauges, histograms.

Deliberately small and dependency-free — the registry sits behind hook
sites inside the hottest DES loops, so instruments are plain Python
objects with one-attribute updates, and *all* derived statistics
(quantiles, means) are computed at snapshot time, never on the hot path.

Naming convention: dotted lowercase paths, ``subsystem.what[.unit]`` —
``sched.ready_depth``, ``ghost.bytes.sent``, ``dma.get.bytes``,
``kernel.seconds.<task>``.  The full catalog lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically increasing total (events, bytes, seconds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n=1) -> None:
        """Add ``n`` (int or float) to the total."""
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time level; remembers the last and the maximum set."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, v) -> None:
        self.value = v
        if v > self.max:
            self.max = v

    def snapshot(self) -> dict:
        return {"last": self.value, "max": self.max}


class Histogram:
    """A sample distribution with nearest-rank quantiles.

    Samples are kept raw (appended on observe, sorted lazily at query
    time) — runs are bounded to tens of thousands of samples, and exact
    quantiles beat bucketing error for the analyzer's p95 claims.
    """

    __slots__ = ("samples", "_sorted")

    def __init__(self) -> None:
        self.samples: list[float] = []
        self._sorted = True

    def observe(self, x: float) -> None:
        """Record one sample."""
        if self._sorted and self.samples and x < self.samples[-1]:
            self._sorted = False
        self.samples.append(x)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean; 0.0 on an empty histogram."""
        return self.total / len(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile ``q`` in [0, 1]; 0.0 when empty.

        A single sample is every quantile of itself; ``q=0`` is the
        minimum, ``q=1`` the maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        if not self._sorted:
            self.samples.sort()
            self._sorted = True
        rank = max(math.ceil(q * len(self.samples)), 1)
        return self.samples[rank - 1]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "max": self.quantile(1.0),
        }


class MetricsRegistry:
    """Named instruments, created on first touch.

    One name maps to exactly one instrument kind; asking for the same
    name as a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls()
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"not {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- hot-path conveniences -----------------------------------------------
    def inc(self, name: str, n=1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, x: float) -> None:
        self.histogram(name).observe(x)

    def set_gauge(self, name: str, v) -> None:
        self.gauge(name).set(v)

    # -- reporting -----------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """All instruments as plain JSON-able values, sorted by name."""
        out = {}
        for name in self.names():
            m = self._metrics[name]
            out[name] = {"kind": type(m).__name__.lower(), "value": m.snapshot()}
        return out
