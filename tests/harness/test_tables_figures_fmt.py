"""Tests for table/figure generators and the report formatter.

Shape assertions at paper scale live in benchmarks/; these tests check
the generators' structure quickly (1-step runs, subset of problems).
"""

import pytest

from repro.harness import figures, tables
from repro.harness.problems import PROBLEMS, problem_by_name
from repro.harness.reportfmt import mem, pct, render_table, seconds

SMALL = [problem_by_name("16x16x512")]


# -- reportfmt -----------------------------------------------------------------

def test_render_table_alignment():
    text = render_table("T", ["a", "bb"], [["1", "222"], ["33", "4"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert set(lines[1]) == {"="}
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1  # all rows equal width


def test_pct():
    assert pct(0.317) == "31.7%"
    assert pct(0.0117, 2) == "1.17%"


def test_seconds_units():
    assert seconds(2.5) == "2.500s"
    assert seconds(0.0025) == "2.50ms"
    assert seconds(2.5e-6) == "2.5us"


def test_mem_binary_units():
    assert mem(256 * 1024**2) == "256MB"
    assert mem(16 * 1024**3) == "16GB"
    assert mem(1536) == "1.5KB"
    assert mem(512) == "512B"


# -- static tables --------------------------------------------------------------

def test_table1_text_has_all_problems():
    text = tables.table1()
    for p in PROBLEMS:
        assert p.name in text


def test_table2_text():
    assert "Interconnect Latency" in tables.table2()


def test_table3_text_stars_none():
    # the text form marks min CGs; the starred problems carry "CGs"
    text = tables.table3()
    assert "8CGs" in text and "1CG" in text


def test_table4_lists_modes():
    text = tables.table4()
    assert "MPE-only" in text and "asynchronous MPE+CPE" in text


# -- swept tables/figures on a reduced scale -------------------------------------------

def test_table5_reduced():
    rows = tables.table5_data(problems=SMALL, nsteps=1)
    assert len(rows) == 1
    r = rows[0]
    for v in ("acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async"):
        assert 0.0 < r[v] <= 1.0
    text = tables.table5(problems=SMALL, nsteps=1)
    assert "16x16x512" in text


def test_table6_7_reduced():
    for fn in (tables.table6_data, tables.table7_data):
        rows = fn(problems=SMALL, nsteps=1)
        assert set(rows[0]) == {"problem", 1, 2, 4, 8, 16, 32, 64, 128}


def test_fig5_reduced():
    data = figures.fig5_data(problems=SMALL, nsteps=1)
    series = data["16x16x512"]["acc.async"]
    assert list(sorted(series)) == [1, 2, 4, 8, 16, 32, 64, 128]
    assert all(t > 0 for t in series.values())
    assert "Fig. 5" in figures.fig5(problems=SMALL, nsteps=1)


def test_boost_data_reduced():
    small = problem_by_name("16x16x512")
    data = figures.boost_data(small, nsteps=1)
    assert set(data) == {"acc.async", "acc_simd.async"}
    assert all(b > 1.0 for b in data["acc.async"].values())


def test_fig9_10_reduced():
    g = figures.fig9_data(problems=SMALL, nsteps=1)
    e = figures.fig10_data(problems=SMALL, nsteps=1)
    for cgs, gf in g["16x16x512"].items():
        assert e["16x16x512"][cgs] == pytest.approx(gf * 1e9 / (cgs * 765.6e9), rel=1e-9)


def test_report_sections_cover_all_tables_and_figures():
    from repro.harness.report import SECTIONS

    titles = [t for t, _ in SECTIONS]
    assert titles == [
        "Table I", "Table II", "Table III", "Table IV", "Figure 5",
        "Table V", "Table VI", "Table VII", "Figures 6-8", "Figure 9",
        "Figure 10",
    ]
