"""Grid variables: per-patch cell-centred arrays with ghost layers.

A :class:`CCVariable` owns the storage for one label on one patch,
including ``ghosts`` layers of halo cells on every side.  Storage is
Fortran-ordered with axes ``(x, y, z)`` so the x direction is contiguous
in memory — matching the paper's Fortran kernels, its x-direction SIMD
vectorization and the DMA chunking geometry of tiles.
"""

from __future__ import annotations

import numpy as np

from repro.core.patch import Patch, Region
from repro.core.varlabel import VarLabel


class CCVariable:
    """Cell-centred data of one label on one patch (plus ghost halo).

    Indexing helpers translate *global* cell indices into the local
    ghosted array, so kernels and ghost exchange never do offset
    arithmetic by hand.
    """

    def __init__(self, label: VarLabel, patch: Patch, ghosts: int = 1, fill: float = 0.0):
        if ghosts < 0:
            raise ValueError(f"ghosts must be >= 0, got {ghosts}")
        if label.is_reduction:
            raise TypeError(f"reduction label {label.name!r} cannot back a grid variable")
        self.label = label
        self.patch = patch
        self.ghosts = ghosts
        shape = tuple(e + 2 * ghosts for e in patch.extent)
        self.data = np.full(shape, fill, dtype=np.float64, order="F")

    # -- geometry -------------------------------------------------------------
    @property
    def ghosted_region(self) -> Region:
        """The global-index region covered by the array, halo included."""
        return self.patch.region.grown(self.ghosts)

    def _local_slices(self, region: Region) -> tuple[slice, slice, slice]:
        gr = self.ghosted_region
        slices = []
        for axis in range(3):
            lo = region.low[axis] - gr.low[axis]
            hi = region.high[axis] - gr.low[axis]
            if lo < 0 or hi > self.data.shape[axis]:
                raise IndexError(
                    f"region {region.low}..{region.high} outside ghosted patch "
                    f"{gr.low}..{gr.high} on axis {axis}"
                )
            slices.append(slice(lo, hi))
        return tuple(slices)  # type: ignore[return-value]

    # -- access ----------------------------------------------------------------
    @property
    def interior(self) -> np.ndarray:
        """Writable view of the patch's interior cells (no halo)."""
        return self.region_view(self.patch.region)

    def region_view(self, region: Region) -> np.ndarray:
        """Writable view of a global-index region (must lie in the array)."""
        return self.data[self._local_slices(region)]

    def get_region(self, region: Region) -> np.ndarray:
        """A packed (contiguous) copy of a region — MPI pack."""
        return np.ascontiguousarray(self.region_view(region))

    def set_region(self, region: Region, values: np.ndarray) -> None:
        """Write packed data into a region — MPI unpack."""
        view = self.region_view(region)
        if values.shape != view.shape:
            raise ValueError(f"unpack shape {values.shape} != region shape {view.shape}")
        view[...] = values

    def copy(self) -> "CCVariable":
        """Deep copy (used by serial reference runs in tests)."""
        out = CCVariable(self.label, self.patch, self.ghosts)
        out.data[...] = self.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CCVariable {self.label.name} patch={self.patch.patch_id} g={self.ghosts}>"
