"""Simulated MPI over the Sunway interconnect model.

Uintah drives inter-node progress with non-blocking MPI (`Sec. V-C`_ of
the paper: post receives early, test sends/receives from the scheduler
loop, reductions as tasks).  This package provides exactly the API surface
the schedulers need, shaped after ``mpi4py`` naming, on top of the
discrete-event simulator:

* :class:`~repro.simmpi.network.Fabric` — the interconnect: per-message
  time = ``latency + software overhead + bytes / bandwidth`` once *both*
  sides have posted; message matching by ``(source, dest, tag)``.
* :class:`~repro.simmpi.comm.Comm` — per-rank communicator with
  ``isend`` / ``irecv`` / ``test`` / ``wait`` and non-blocking
  collectives (``iallreduce``, ``ibarrier``).

Progression semantics: the paper stresses (citing Denis & Trahay) that
non-blocking transfers "do not progress without the help of the host
processor".  Completion *times* are computed by the fabric, but a
scheduler only *observes* completion at its polling points — which is
precisely why the synchronous MPE+CPE mode (which spins on the kernel
flag without testing MPI) loses to the asynchronous mode.

.. _Sec. V-C: the MPE task scheduler steps in the paper
"""

from repro.simmpi.network import Fabric, FabricConfig
from repro.simmpi.comm import Comm
from repro.simmpi.request import Request, SendRequest, RecvRequest, CollectiveRequest

__all__ = [
    "Fabric",
    "FabricConfig",
    "Comm",
    "Request",
    "SendRequest",
    "RecvRequest",
    "CollectiveRequest",
]
