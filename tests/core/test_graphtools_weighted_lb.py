"""Tests for graph export/analysis and weighted load balancing."""

import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.core.graphtools import critical_path, graph_stats, to_dot, to_networkx
from repro.core.grid import Grid
from repro.core.loadbalancer import LoadBalancer
from repro.core.task import Task, TaskKind
from repro.core.taskgraph import TaskGraph
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

U, V, NORM = VarLabel("u"), VarLabel("v"), VarLabel("n", vartype="reduction")
COST = KernelCost(stencil_flops=10, exp_calls=0)


def chain_graph(num_ranks=2):
    """advance -> smooth -> norm: a three-stage graph."""
    t1 = Task("advance", kind=TaskKind.CPE_KERNEL, kernel_cost=COST)
    t1.requires_(U, dw="old", ghosts=1).computes_(U)
    t2 = Task("smooth", kind=TaskKind.CPE_KERNEL, kernel_cost=COST)
    t2.requires_(U, dw="new", ghosts=1).computes_(V)
    t3 = Task("norm", kind=TaskKind.REDUCTION, reduction_op=max)
    t3.requires_(V, dw="new").computes_(NORM)
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    assignment = LoadBalancer("sfc").assign(grid, num_ranks)
    return TaskGraph(grid, [t1, t2, t3], assignment, num_ranks), grid


# -- dot export -------------------------------------------------------------------

def test_dot_contains_every_task_and_rank_cluster():
    graph, _ = chain_graph()
    dot = to_dot(graph)
    assert dot.startswith("digraph")
    for dt in graph.detailed_tasks:
        assert f"dt{dt.dt_id}" in dot
    assert "cluster_rank0" in dot and "cluster_rank1" in dot
    assert "->" in dot


def test_dot_truncation():
    graph, _ = chain_graph()
    dot = to_dot(graph, max_tasks=3)
    assert dot.count("label=") <= 3 + graph.num_ranks + 1  # nodes + cluster labels


def test_dot_marks_messages_dashed_or_dotted():
    graph, _ = chain_graph()
    dot = to_dot(graph)
    assert "style=dashed" in dot or "style=dotted" in dot


# -- critical path ------------------------------------------------------------------

def test_critical_path_of_chain():
    graph, _ = chain_graph(num_ranks=1)
    cp = critical_path(graph)
    names = [dt.task.name for dt in cp.tasks]
    # longest hop chain: advance (x8 converge on smooth?) -> smooth -> norm
    assert names[0] == "advance"
    assert names[-1] == "norm"
    assert cp.length == 3.0


def test_critical_path_weighted():
    graph, _ = chain_graph(num_ranks=1)
    cp = critical_path(graph, weight=lambda dt: 5.0 if dt.task.name == "smooth" else 1.0)
    assert cp.length == 7.0


def test_critical_path_empty_graph():
    grid = Grid(extent=(4, 4, 4))
    graph = TaskGraph(grid, [], {0: 0}, 1)
    assert critical_path(graph).length == 0.0


# -- stats / networkx ---------------------------------------------------------------

def test_graph_stats_consistency():
    graph, _ = chain_graph(num_ranks=2)
    stats = graph_stats(graph)
    assert stats["detailed_tasks"] == len(graph.detailed_tasks)
    assert sum(stats["per_rank_tasks"]) == stats["detailed_tasks"]
    assert sum(stats["per_rank_recvs"]) == stats["messages"]
    assert sum(stats["per_rank_sends"]) == stats["messages"]
    assert stats["message_bytes"] == sum(m.nbytes for m in graph.messages)


def test_networkx_agrees_its_a_dag():
    graph, _ = chain_graph()
    g = to_networkx(graph)
    assert nx.is_directed_acyclic_graph(g)
    assert g.number_of_nodes() == len(graph.detailed_tasks)
    # networkx longest path (hop count) matches ours
    ours = critical_path(graph).length
    theirs = nx.dag_longest_path_length(g) + 1  # edges -> nodes
    assert ours == theirs


# -- weighted load balancing -------------------------------------------------------------

GRID = Grid(extent=(16, 16, 16), layout=(4, 4, 2))


def test_weighted_balancing_evens_out_cost():
    """One heavy corner (AMR-style refinement hotspot): weighted cuts
    give much better balance than count-based cuts."""
    weights = {}
    for p in GRID.patches():
        hot = p.index[0] < 2 and p.index[1] < 2
        weights[p.patch_id] = 10.0 if hot else 1.0

    lb = LoadBalancer("sfc")
    unweighted = lb.assign(GRID, 4)
    weighted = lb.assign(GRID, 4, weights=weights)

    def imbalance(assignment):
        load = [0.0] * 4
        for pid, r in assignment.items():
            load[r] += weights[pid]
        return max(load) / (sum(load) / 4)

    assert imbalance(weighted) < imbalance(unweighted)
    assert imbalance(weighted) < 1.5


def test_weighted_covers_all_patches_and_ranks():
    weights = {p.patch_id: float(1 + p.patch_id % 7) for p in GRID.patches()}
    assignment = LoadBalancer("block").assign(GRID, 8, weights=weights)
    assert set(assignment) == {p.patch_id for p in GRID.patches()}
    assert set(assignment.values()) == set(range(8))


def test_weighted_validation():
    lb = LoadBalancer("sfc")
    with pytest.raises(ValueError, match="missing"):
        lb.assign(GRID, 2, weights={0: 1.0})
    bad = {p.patch_id: 1.0 for p in GRID.patches()}
    bad[3] = 0.0
    with pytest.raises(ValueError, match="positive"):
        lb.assign(GRID, 2, weights=bad)


def test_uniform_weights_match_unweighted_counts():
    lb = LoadBalancer("sfc")
    uniform = {p.patch_id: 1.0 for p in GRID.patches()}
    a = lb.assign(GRID, 4)
    b = lb.assign(GRID, 4, weights=uniform)
    counts_a = LoadBalancer.load_counts(a, 4)
    counts_b = LoadBalancer.load_counts(b, 4)
    assert counts_a == counts_b == [8, 8, 8, 8]


@settings(deadline=None, max_examples=30)
@given(
    num_ranks=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
def test_property_weighted_every_rank_nonempty(num_ranks, seed):
    import random

    rng = random.Random(seed)
    weights = {p.patch_id: rng.uniform(0.1, 10.0) for p in GRID.patches()}
    assignment = LoadBalancer("sfc").assign(GRID, num_ranks, weights=weights)
    counts = LoadBalancer.load_counts(assignment, num_ranks)
    assert all(c >= 1 for c in counts)
    assert sum(counts) == GRID.num_patches
