"""Coarse tasks and detailed (task x patch) instances.

Users describe their problem "as a collection of dependent coarse tasks"
(paper Sec. II): each :class:`Task` declares the variables it *requires*
(with how many ghost cells, from which data warehouse) and those it
*computes*.  The task-graph compiler instantiates one
:class:`DetailedTask` per (task, patch) — plus one per rank for
reductions — and derives every dependency and MPI message from these
declarations; user code never touches communication.

The Sunway port splits a task's body in two (paper Sec. V-C):

* an optional **MPE part** (boundary conditions, small serial fix-ups),
  executed on the management core before offload, and
* the **kernel part**, offloaded to the CPE cluster for ``CPE_KERNEL``
  tasks or executed on the MPE otherwise.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.core.patch import Patch
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.datawarehouse import DataWarehouse
    from repro.core.grid import Grid


class TaskKind(enum.Enum):
    """Where a task's kernel part executes."""

    #: Compute-intensive numerical kernel, offloadable to the CPE cluster.
    CPE_KERNEL = "cpe_kernel"
    #: Small task executed on the MPE (control, fix-ups, initialization).
    MPE = "mpe"
    #: Per-rank reduction combined across ranks with MPI allreduce.
    REDUCTION = "reduction"


@dataclasses.dataclass(frozen=True)
class Dependency:
    """One ``requires`` declaration."""

    label: VarLabel
    dw: str  # "old" or "new"
    ghosts: int = 0

    def __post_init__(self) -> None:
        if self.dw not in ("old", "new"):
            raise ValueError(f"dw must be 'old' or 'new', got {self.dw!r}")
        if self.ghosts < 0:
            raise ValueError(f"ghosts must be >= 0, got {self.ghosts}")


@dataclasses.dataclass
class TaskContext:
    """Everything a task action may touch, Uintah-callback style."""

    grid: "Grid"
    patch: Patch | None
    old_dw: "DataWarehouse | None"
    new_dw: "DataWarehouse"
    #: Simulation time at the *start* of the timestep.
    time: float
    dt: float
    step: int
    #: Free-form per-problem parameters (viscosity, etc.).
    params: dict = dataclasses.field(default_factory=dict)


class Task:
    """A user-declared coarse task.

    Parameters
    ----------
    name:
        Unique task name within a graph.
    kind:
        Execution placement, see :class:`TaskKind`.
    action:
        ``action(ctx: TaskContext)`` — the kernel part.  For
        ``REDUCTION`` tasks it is called once per local patch and must
        return that patch's partial value.  May be ``None`` for
        model-mode-only workloads.
    mpe_action:
        Optional MPE part run before the kernel part (e.g. boundary
        conditions), ``mpe_action(ctx)``.
    kernel_cost:
        Per-cell cost description used by the performance model
        (mandatory for ``CPE_KERNEL`` tasks).
    reduction_op:
        Binary operator combining reduction partials (``REDUCTION`` only).
    tile_fields_in / tile_fields_out:
        Arrays resident in LDM per tile with/without halo — sizes the
        tile working set (Burgers: 1 ghosted input + 1 output = 41.3 KB
        at 16x16x8).
    """

    def __init__(
        self,
        name: str,
        kind: TaskKind = TaskKind.CPE_KERNEL,
        action: _t.Callable[[TaskContext], _t.Any] | None = None,
        mpe_action: _t.Callable[[TaskContext], None] | None = None,
        kernel_cost: KernelCost | None = None,
        reduction_op: _t.Callable[[float, float], float] | None = None,
        tile_fields_in: int = 1,
        tile_fields_out: int = 1,
    ):
        if not name:
            raise ValueError("task needs a non-empty name")
        if kind is TaskKind.CPE_KERNEL and kernel_cost is None:
            raise ValueError(f"CPE kernel task {name!r} needs a kernel_cost")
        if kind is TaskKind.REDUCTION and reduction_op is None:
            raise ValueError(f"reduction task {name!r} needs a reduction_op")
        self.name = name
        self.kind = kind
        self.action = action
        self.mpe_action = mpe_action
        self.kernel_cost = kernel_cost
        self.reduction_op = reduction_op
        self.tile_fields_in = tile_fields_in
        self.tile_fields_out = tile_fields_out
        self.requires: list[Dependency] = []
        self.computes: list[VarLabel] = []

    # -- declaration builders ---------------------------------------------------
    def requires_(self, label: VarLabel, dw: str, ghosts: int = 0) -> "Task":
        """Declare an input; returns self for chaining."""
        self.requires.append(Dependency(label, dw, ghosts))
        return self

    def computes_(self, label: VarLabel) -> "Task":
        """Declare an output; returns self for chaining."""
        if any(existing.name == label.name for existing in self.computes):
            raise ValueError(f"task {self.name!r} already computes {label.name!r}")
        self.computes.append(label)
        return self

    @property
    def offloadable(self) -> bool:
        """Whether the kernel part goes to the CPE cluster."""
        return self.kind is TaskKind.CPE_KERNEL

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} kind={self.kind.value}>"


@dataclasses.dataclass
class DetailedTask:
    """One executable instance: a task bound to a patch (or, for
    reductions, to a whole rank)."""

    dt_id: int
    task: Task
    patch: Patch | None
    rank: int

    def __hash__(self) -> int:
        return self.dt_id

    @property
    def name(self) -> str:
        """Stable human-readable id used in traces."""
        where = f"p{self.patch.patch_id}" if self.patch is not None else f"r{self.rank}"
        return f"{self.task.name}@{where}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DetailedTask {self.dt_id}:{self.name} rank={self.rank}>"
