"""The invariant catalog: what a correct Sunway schedule must obey.

Every check the online :class:`~repro.verify.validator.ScheduleValidator`
performs has an entry here — a stable identifier, which layer it guards,
and a one-line statement of the invariant.  Violations reference catalog
entries by identifier, so reports, telemetry metrics, and repro bundles
all speak the same vocabulary (see ``docs/VERIFICATION.md``).

The invariants fall into four families, mirroring the runtime layers:

* **lifecycle** — the task state machine and its readiness contract
  (paper Sec. V-B scheduling algorithm, steps 3a–3d);
* **flag** — the ``faaw`` completion-flag protocol between MPE and CPEs
  (Sec. V-B: "sets up a completion flag in the main memory just before
  offloading a kernel");
* **dw** — data-warehouse access legality (single assignment, scrub
  accounting; Sec. II);
* **ldm** — the 64 KB scratchpad budget every offloaded tile plan must
  respect (Sec. VI-A).
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True)
class Invariant:
    """One catalog entry."""

    ident: str
    family: str
    statement: str


#: The full catalog, keyed by identifier.
CATALOG: dict[str, Invariant] = {
    inv.ident: inv
    for inv in [
        # -- lifecycle -------------------------------------------------
        Invariant(
            "illegal-transition",
            "lifecycle",
            "Task state moves must follow the lifecycle state machine "
            "(pending -> ready -> dispatched -> running -> retiring -> done; "
            "failed may re-enter ready or running).",
        ),
        Invariant(
            "unknown-task",
            "lifecycle",
            "Every lifecycle event must reference a task registered for "
            "the current timestep.",
        ),
        Invariant(
            "run-before-dep",
            "lifecycle",
            "A task may enter RUNNING only after every internal task-graph "
            "producer it depends on is DONE.",
        ),
        Invariant(
            "run-before-recv",
            "lifecycle",
            "A task may enter RUNNING only after every incoming ghost "
            "message it requires has been received and unpacked.",
        ),
        Invariant(
            "run-before-copy",
            "lifecycle",
            "A task may enter RUNNING only after every intra-rank ghost "
            "copy feeding it has been performed.",
        ),
        Invariant(
            "scrub-early",
            "dw",
            "An old-DW variable may be scrubbed only after every local "
            "task that reads it has retired.",
        ),
        # -- completion flag -------------------------------------------
        Invariant(
            "flag-nonmonotone",
            "flag",
            "The faaw completion counter must strictly increase between "
            "clears (fetch-and-add never decrements).",
        ),
        Invariant(
            "flag-overcount",
            "flag",
            "Completion-flag bumps within a timestep must not exceed the "
            "kernels actually offloaded to the CPE cluster.",
        ),
        Invariant(
            "flag-undercount",
            "flag",
            "At the end of a timestep, completion-flag bumps must equal "
            "the offloaded kernels that retired cleanly (a missing bump "
            "means a completion was lost).",
        ),
        # -- data warehouse --------------------------------------------
        Invariant(
            "dw-read-before-put",
            "dw",
            "A warehouse read must be preceded by the producing task's put "
            "(no read of a variable no task has computed).",
        ),
        Invariant(
            "dw-double-put",
            "dw",
            "A label/patch pair is single-assignment: exactly one put per "
            "warehouse generation.",
        ),
        Invariant(
            "dw-use-after-scrub",
            "dw",
            "A scrubbed variable must never be read again (the scrub "
            "accounting counted all consumers).",
        ),
        Invariant(
            "dw-double-scrub",
            "dw",
            "Each variable is scrubbed at most once per generation.",
        ),
        # -- LDM budget ------------------------------------------------
        Invariant(
            "ldm-overflow",
            "ldm",
            "The tile plan of every kernel offloaded to the CPEs must fit "
            "the per-CPE LDM budget (64 KB on SW26010).",
        ),
    ]
}


class VerificationError(RuntimeError):
    """Raised in strict mode the moment an invariant is violated."""


@dataclasses.dataclass
class Violation:
    """One observed breach of a catalog invariant."""

    invariant: str
    rank: int
    #: Timestep the breach occurred in (-1 when unknown, e.g. replay).
    step: int
    #: Offending task name (None for non-task invariants).
    task: str | None
    #: Simulated time of the breach.
    t: float
    #: Human-readable specifics (names, counts, budgets).
    detail: str

    def __post_init__(self) -> None:
        if self.invariant not in CATALOG:
            raise ValueError(f"unknown invariant {self.invariant!r}")

    @property
    def family(self) -> str:
        return CATALOG[self.invariant].family

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "invariant": self.invariant,
            "family": self.family,
            "rank": self.rank,
            "step": self.step,
            "task": self.task,
            "t": self.t,
            "detail": self.detail,
        }

    def render(self) -> str:
        who = f" task={self.task}" if self.task else ""
        return (
            f"[{self.invariant}] rank {self.rank} step {self.step}{who} "
            f"t={self.t:.6g}: {self.detail}"
        )
