"""A model of Uintah's Unified Scheduler — the paper's motivation.

Paper Sec. II: "The most efficient scheduler in Uintah ... is the
'Unified Scheduler' ... built upon a MPI+thread model, where only one MPI
process is started on each computing node, and multiple threads ... Each
thread controls a CPU core and executes serially a task fed by the
scheduler."  And the challenge: "the Sunway's SW26010 processor has only
one MPE on each CG, which would limit the scheduler to one thread.  Thus
the Unified Scheduler is not able to effectively overlap communications
with computations without a new design."

This module models that scheduler so the claim is measurable: a
:class:`~repro.core.schedulers.backends.HostThreadPoolBackend` pool of
``num_threads`` host worker threads executes ready tasks *and*
interleaved communication work (ghost packing/unpacking, sends, local
copies, reductions) from one shared run queue.  With several threads,
communication hides behind computation; with the single thread Sunway's
MPE affords, everything serializes — and the CPE cluster sits unused,
because the Unified Scheduler predates the offload design.

:class:`UnifiedHostScheduler` composes
:class:`~repro.core.schedulers.base.SchedulerCore` with that backend —
it shares the lifecycle/stats/trace wiring with
:class:`~repro.core.schedulers.scheduler.SunwayScheduler` but is *not* a
subclass of it (see ``docs/ARCHITECTURE.md``).  Use it through
:class:`~repro.core.controller.SimulationController` by passing
``scheduler_factory`` (see ``examples/unified_vs_sunway.py``).
"""

from __future__ import annotations

from repro.core.datawarehouse import DataWarehouse
from repro.core.schedulers.backends import HostThreadPoolBackend
from repro.core.schedulers.base import DeadlockError, SchedulerCore
from repro.core.schedulers.lifecycle import TaskState
from repro.core.task import DetailedTask, TaskKind
from repro.core.taskgraph import CopySpec, MessageSpec


class UnifiedHostScheduler(SchedulerCore):
    """MPI + host-threads scheduler (no CPE offload).

    Parameters are those of :class:`SchedulerCore` plus ``num_threads``
    — the host cores available to worker threads.  On SW26010 that is 1
    (the MPE); Uintah's production machines give it 16-64.  The ``mode``
    argument is ignored: this scheduler has exactly one behaviour,
    Uintah's.
    """

    def __init__(self, *args, num_threads: int = 1, **kwargs):
        kwargs["mode"] = "mpe_only"  # kernels run on host cores
        super().__init__(*args, **kwargs)
        self.backend = HostThreadPoolBackend(num_threads)

    @property
    def num_threads(self) -> int:
        return self.backend.num_threads

    def _host_fault_overhead(self, dt: DetailedTask, cost: float) -> float:
        """Extra host-core seconds an injected kernel fault costs here.

        Host threads have no CPE offload slot to abort, so every fault
        resolves by re-running on the same core: a slowdown stretches the
        kernel, a hang burns one completion timeout before the re-run, and
        a DMA-style error wastes the fraction already executed.  Fault-free
        runs draw nothing from the injector's stream.
        """
        if self.faults is None:
            return 0.0
        fault = self.faults.kernel_fault(self.rank, dt.name, cost, self.sim.now)
        if fault is None:
            return 0.0
        if fault.kind == "slowdown":
            if self.policy is not None and fault.factor >= self.policy.straggler_factor:
                self.lifecycle.emit("straggler", dt)
            return cost * (fault.factor - 1.0)
        wasted = cost if fault.kind == "stuck" else fault.error_frac * cost
        if self.policy is None:
            # fault-oblivious: the machine still lost that time, but
            # nothing detects or recovers the failure
            return wasted
        if fault.kind == "stuck":
            self.lifecycle.emit("kernel-timeout", dt)
            wasted = self.policy.kernel_timeout(cost)
        self.lifecycle.emit("kernel-retry", dt)
        return wasted

    # The Unified Scheduler replaces the whole per-timestep loop: the
    # worker pool drains one run queue of tasks and communication units.
    def execute_timestep(
        self,
        step: int,
        time: float,
        dt_value: float,
        old_dw: DataWarehouse | None,
        new_dw: DataWarehouse,
        bootstrap: bool = False,
    ):
        sim, graph, rank = self.sim, self.graph, self.rank
        st = self._begin_step(step, time, dt_value, old_dw, new_dw, bootstrap)
        tracker = st.tracker
        pool = self.backend.start_step(sim, rank)
        send_reqs: list = []

        # -- unit builders -------------------------------------------------
        def push_ready_tasks() -> None:
            while tracker.any_ready:
                dt = tracker.ready.pop(0)
                self.lifecycle.transition(dt, TaskState.DISPATCHED, backend="host")
                pool.push(("task", dt))

        def push_send(spec: MessageSpec, from_bootstrap: bool = False) -> None:
            if spec.cross_step and not from_bootstrap:
                pool.push(("send", spec, st.next_tag_base, "new"))
            else:
                pool.push(("send", spec, st.tag_base, "old" if spec.cross_step else spec.dw))

        def finish_task(dt: DetailedTask) -> None:
            self.lifecycle.retire(dt)
            st.remaining.discard(dt.dt_id)
            for spec in graph.sends_after(dt):
                push_send(spec)
            for spec in graph.copies_after(dt):
                pool.push(("copy", spec))
            for dep in graph.dependents_of(dt):
                tracker.release(dep.dt_id)
            push_ready_tasks()
            pool.maybe_finish(not st.remaining)

        # -- communication watchers (event-driven, zero host cost) ---------
        def recv_watcher(spec: MessageSpec, req):
            payload = yield req.event
            pool.push(("unpack", spec, payload))

        my_recvs = [m for d in st.local for m in graph.recvs_for(d)]
        for spec in my_recvs:
            req = self.comm.irecv(source=spec.from_rank, tag=st.tag_base + spec.tag)
            sim.process(recv_watcher(spec, req), name=f"recvw-r{rank}")

        for spec in graph.startup_sends(rank):
            push_send(spec)
        if bootstrap:
            for spec in graph.bootstrap_sends(rank):
                push_send(spec, from_bootstrap=True)
        for spec in graph.startup_copies(rank):
            pool.push(("copy", spec))
        self._carryover_sends = [r for r in self._carryover_sends if not r.complete]
        push_ready_tasks()

        # -- worker thread bodies ------------------------------------------
        def thread_mpe(tid: int, name: str, cost: float):
            cost = self._noise.mpe(cost)
            t0 = sim.now
            yield sim.timeout(cost)
            self.trace.record(rank, f"thread{tid}", name, t0, sim.now)

        def execute_task(tid: int, dt: DetailedTask):
            task = dt.task
            self.lifecycle.transition(
                dt,
                TaskState.RUNNING,
                backend="mpe" if task.kind is TaskKind.CPE_KERNEL else None,
            )
            yield from thread_mpe(tid, "select", self.costs.sched.task_select)
            mpe_cost = self.costs.mpe_part_time(task, dt.patch, graph.grid)
            if mpe_cost > 0:
                if self.real and task.mpe_action is not None:
                    task.mpe_action(self._ctx(dt.patch, st))
                yield from thread_mpe(tid, f"mpe-part:{dt.name}", mpe_cost)
            if task.kind is TaskKind.REDUCTION:
                partial = 0.0
                if self.real and task.action is not None:
                    vals = [
                        task.action(self._ctx(p, st)) for p in self._local_patches
                    ]
                    partial = vals[0] if vals else 0.0
                    for v in vals[1:]:
                        partial = task.reduction_op(partial, v)
                yield from thread_mpe(
                    tid,
                    f"reduce:{dt.name}",
                    self.costs.reduction_local_time(len(self._local_patches)),
                )
                req = self.comm.iallreduce(partial, op=task.reduction_op)

                def reduce_watcher(req=req, dt=dt):
                    value = yield req.event
                    st.new_dw.put_reduction(dt.task.computes[0], value)
                    self.lifecycle.emit("reduction", dt)
                    finish_task(dt)

                sim.process(reduce_watcher(), name=f"redw-r{rank}")
                return  # finish_task happens at allreduce completion
            # compute kernel on the host core
            if self.real and task.action is not None:
                task.action(self._ctx(dt.patch, st))
            if task.kind is TaskKind.CPE_KERNEL:
                cost = self.costs.mpe_kernel_time(task, dt.patch)
                self.lifecycle.emit("flops", dt, n=self.costs.kernel_flops(task, dt.patch))
                cost += self._host_fault_overhead(dt, cost)
            else:
                cost = self.costs.mpe_task_time(task, dt.patch)
            yield from thread_mpe(tid, f"kernel:{dt.name}", cost)
            finish_task(dt)

        def handle_unit(tid: int, unit):
            kind = unit[0]
            if kind == "task":
                yield from execute_task(tid, unit[1])
            elif kind == "copy":
                spec: CopySpec = unit[1]
                yield from thread_mpe(tid, "copy", self.costs.pack_time(spec.ncells, remote=False))
                self.lifecycle.emit("local-copy", spec.consumer)
                if self.real:
                    dw = st.dw_for(spec.dw)
                    dw.get(spec.label, spec.to_patch).set_region(
                        spec.region,
                        dw.get(spec.label, spec.from_patch).get_region(spec.region),
                    )
                tracker.release(spec.consumer.dt_id)
                push_ready_tasks()
            elif kind == "send":
                spec, tagb, src_dw = unit[1], unit[2], unit[3]
                yield from thread_mpe(
                    tid,
                    "pack-send",
                    self.costs.pack_time(spec.region.num_cells, remote=True)
                    + self.costs.sched.send_post,
                )
                payload = None
                if self.real:
                    payload = (
                        st.dw_for(src_dw)
                        .get(spec.label, spec.from_patch)
                        .get_region(spec.region)
                    )
                req = self.comm.isend(
                    dest=spec.to_rank,
                    tag=tagb + spec.tag,
                    nbytes=spec.nbytes,
                    payload=payload,
                )
                dest = self._carryover_sends if tagb == st.next_tag_base else send_reqs
                dest.append(req)
                self.lifecycle.emit("msg-sent", nbytes=spec.nbytes)
            elif kind == "unpack":
                spec, payload = unit[1], unit[2]
                yield from thread_mpe(
                    tid,
                    "unpack",
                    self.costs.pack_time(spec.region.num_cells, remote=True),
                )
                self.lifecycle.emit("msg-recv", spec.consumer, nbytes=spec.nbytes)
                if self.real:
                    dw = st.dw_for(spec.dw)
                    dw.get(spec.label, spec.to_patch).set_region(spec.region, payload)
                tracker.release(spec.consumer.dt_id)
                push_ready_tasks()

        pool.spawn_workers(handle_unit, lambda: not st.remaining)

        # -- coordinator: wait for completion, then shut workers down ------
        yield pool.done_event
        if pool.failure:
            raise pool.failure[0]
        if st.remaining:
            raise DeadlockError(
                f"unified scheduler rank {rank} step {step}: "
                f"{len(st.remaining)} tasks stuck"
            )
        pool.shutdown()
        unfinished = [r for r in send_reqs if not r.complete]
        if unfinished:
            yield sim.all_of([r.event for r in unfinished])
