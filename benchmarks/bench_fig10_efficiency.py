"""Figure 10: floating-point efficiency (fraction of theoretical peak).

Paper: best 1.17% of peak (64x64x512 on 2 CGs), ~1.0% at 128 CGs on the
largest problem, and "a clear trend that better FP efficiency is obtained
with larger problems".
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.figures import fig10, fig10_data


@pytest.mark.benchmark(group="fig10")
def test_fig10_floating_point_efficiency(benchmark, publish):
    data = run_once(benchmark, fig10_data)
    publish("fig10", fig10())

    best = max(v for series in data.values() for v in series.values())
    # paper's best is 1.17% of peak
    assert 0.009 <= best <= 0.016

    # larger problems are more efficient at every shared CG count
    problems = list(data)
    for a, b in zip(problems, problems[1:]):
        shared = set(data[a]) & set(data[b])
        for cgs in shared:
            assert data[b][cgs] >= data[a][cgs] * 0.98, (a, b, cgs)

    # efficiency declines as CGs grow (strong-scaling overheads)
    for pname, series in data.items():
        cgs = sorted(series)
        vals = [series[c] for c in cgs]
        assert all(x >= y * 0.98 for x, y in zip(vals, vals[1:])), pname
