"""Time accounting and critical-path analysis over a traced run.

Folds :class:`~repro.core.trace.Tracer` spans and the per-timestep
ledger into the questions a performance engineer actually asks:

* **Per-rank time accounting** — every MPE span classified into the
  scheduler's activity categories (pack+send / unpack / copy / MPI /
  select / mpe-part / reductions / kernels-on-MPE / recovery), plus the
  CPE kernel lane, event-wait time and the unaccounted residue against
  the rank's wall clock.  The category sums reproduce
  ``Tracer.busy_time`` exactly (each lane's spans are disjoint in a
  fault-free run), which is the table's correctness anchor.
* **Per-timestep critical path** — the serialized busy time of the
  worst rank (``cpe + mpe - overlap``): the lower bound the step could
  reach with perfect waiting removed.  ``slack = wall - critical path``
  is the headroom a scheduling PR can still claim.
* **Top-N activities** — the tracer summary ranked by total seconds.

Rendering goes through :func:`repro.harness.reportfmt.render_table` so
profile output matches the repo's paper-artifact tables.
"""

from __future__ import annotations

import dataclasses

from repro.core.trace import Tracer
from repro.harness.reportfmt import pct, render_table, seconds
from repro.telemetry.ledger import RunLedger

#: MPE span-name prefix -> accounting category.  Prefixes are matched on
#: the text before the first ``:`` (span names look like
#: ``mpe-part:timeAdvance@p3``); unknown names land in ``other``.
SPAN_CATEGORIES = {
    "send": "pack+send",
    "unpack": "unpack",
    "copy": "copy",
    "post-recvs": "mpi",
    "mpi-test": "mpi",
    "task-select": "select",
    "mpe-part": "mpe-part",
    "mpe-task": "mpe-kernel",
    "mpe-kernel": "mpe-kernel",
    "reduce-local": "reduction",
    "reduce-finish": "reduction",
    "recover-timeout": "recovery",
    "recover-fallback": "recovery",
}

#: Stable column order for the accounting table.
CATEGORY_ORDER = (
    "pack+send",
    "unpack",
    "copy",
    "mpi",
    "select",
    "mpe-part",
    "mpe-kernel",
    "reduction",
    "recovery",
    "other",
)


def categorize(span_name: str) -> str:
    """The accounting category of one MPE span name."""
    prefix = span_name.split(":", 1)[0]
    return SPAN_CATEGORIES.get(prefix, "other")


@dataclasses.dataclass
class RankBreakdown:
    """Where one rank's wall-clock went, in seconds."""

    rank: int
    #: Barrier release to this rank's finish.
    wall: float
    #: Sum of CPE-lane span durations (kernels + interference debt).
    cpe_kernel: float
    #: MPE seconds per category (sum of span durations).
    categories: dict[str, float]
    #: Seconds both lanes were busy at once.
    overlap: float
    #: Seconds the MPE blocked on events (MPI completion, kernel flags).
    event_wait: float
    #: Sync-mode completion-flag spinning.
    spin_wait: float

    @property
    def mpe_total(self) -> float:
        """All categorized MPE busy seconds."""
        return sum(self.categories.values())

    @property
    def unaccounted(self) -> float:
        """Wall seconds no span, wait or spin explains (should be ~0)."""
        return self.wall - self.mpe_total - self.event_wait - self.spin_wait


@dataclasses.dataclass
class RunAnalysis:
    """The analyzer's full output for one run."""

    breakdowns: list[RankBreakdown]
    ledger: RunLedger | None = None

    # ------------------------------------------------------------ rendering
    def render_time_accounting(self) -> str:
        """Per-rank accounting table (the `repro profile` centerpiece)."""
        used = [
            c
            for c in CATEGORY_ORDER
            if any(b.categories.get(c, 0.0) > 0 for b in self.breakdowns)
        ]
        headers = (
            ["Rank", "Wall", "CPE kernel"]
            + [c for c in used]
            + ["MPE total", "Wait", "Spin", "Overlap", "Ovl frac", "Unacct"]
        )
        rows = []
        for b in self.breakdowns:
            frac = b.overlap / b.cpe_kernel if b.cpe_kernel > 0 else 0.0
            rows.append(
                [b.rank, seconds(b.wall), seconds(b.cpe_kernel)]
                + [seconds(b.categories.get(c, 0.0)) for c in used]
                + [
                    seconds(b.mpe_total),
                    seconds(b.event_wait),
                    seconds(b.spin_wait),
                    seconds(b.overlap),
                    pct(frac),
                    seconds(b.unaccounted),
                ]
            )
        return render_table(
            "Per-rank time accounting (simulated seconds)", headers, rows
        )

    def render_critical_path(self) -> str:
        """Per-timestep wall vs serialized-busy critical-path estimate."""
        if self.ledger is None or not self.ledger.steps:
            return "(no ledger: critical-path table unavailable)"
        rows = []
        for s in self.ledger.steps:
            serial = [
                s.cpe_busy[r] + s.mpe_busy[r] - s.overlap[r]
                for r in range(len(s.mpe_busy))
            ]
            crit_rank = max(range(len(serial)), key=lambda r: serial[r])
            crit = serial[crit_rank]
            rows.append(
                (
                    s.step,
                    seconds(s.wall),
                    seconds(crit),
                    crit_rank,
                    seconds(max(s.wall - crit, 0.0)),
                    pct(s.overlap_fraction),
                )
            )
        return render_table(
            "Per-timestep critical path (serialized busy time of the worst rank)",
            ["Step", "Wall", "Critical path", "On rank", "Slack", "Overlap"],
            rows,
        )

    def render_ledger(self) -> str:
        """Per-timestep ledger summary table."""
        if self.ledger is None or not self.ledger.steps:
            return "(no ledger)"
        rows = []
        for s in self.ledger.steps:
            t = s.totals
            rows.append(
                (
                    s.step,
                    seconds(s.wall),
                    seconds(sum(s.mpe_busy)),
                    seconds(sum(s.cpe_busy)),
                    pct(s.overlap_fraction),
                    seconds(sum(s.comm_wait)),
                    f"{t.get('msgs_sent', 0):.0f}",
                    f"{t.get('bytes_sent', 0) / 1e6:.2f}",
                    f"{t.get('flops', 0) / 1e9:.2f}",
                )
            )
        return render_table(
            "Run ledger (per timestep, all ranks)",
            ["Step", "Wall", "MPE busy", "CPE busy", "Ovl frac", "Comm wait",
             "Msgs", "MB sent", "GFLOP"],
            rows,
        )


def analyze(result, telemetry=None, ledger: RunLedger | None = None) -> RunAnalysis:
    """Build the per-rank breakdowns (and attach the ledger) for a run.

    ``result`` must come from a run with tracing enabled; without spans
    every busy column reads zero and only wall/wait survive.
    """
    trace: Tracer = result.trace
    boundaries = result.rank_step_ends
    breakdowns: list[RankBreakdown] = []
    for r in range(result.num_ranks):
        if boundaries is not None:
            wall = boundaries[r][-1] - boundaries[r][0]
        else:
            wall = result.total_time
        categories: dict[str, float] = {}
        for s in trace.spans_for(r, "mpe"):
            cat = categorize(s.name)
            categories[cat] = categories.get(cat, 0.0) + s.duration
        cpe_kernel = sum(s.duration for s in trace.spans_for(r, "cpe"))
        stats = result.rank_stats[r]
        breakdowns.append(
            RankBreakdown(
                rank=r,
                wall=wall,
                cpe_kernel=cpe_kernel,
                categories=categories,
                overlap=trace.overlap_time(r),
                event_wait=stats.idle_wait,
                spin_wait=stats.spin_wait,
            )
        )
    return RunAnalysis(breakdowns=breakdowns, ledger=ledger)


def render_top_tasks(trace: Tracer, n: int = 10, rank: int | None = None) -> str:
    """The N most expensive activities, by total traced seconds."""
    summary = trace.summarize(rank=rank)
    ranked = sorted(summary.items(), key=lambda kv: kv[1]["total"], reverse=True)[:n]
    rows = [
        (name, lane, info["count"], seconds(info["total"]), seconds(info["mean"]))
        for (name, lane), info in ranked
    ]
    where = "all ranks" if rank is None else f"rank {rank}"
    return render_table(
        f"Top {len(rows)} activities by total time ({where})",
        ["Activity", "Lane", "Count", "Total", "Mean"],
        rows,
    )
