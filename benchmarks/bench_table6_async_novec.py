"""Table VI: async-over-sync improvement, non-vectorized kernel.

Paper: improvements up to 39.3%, average ~13.5% over both kernels, wins
in almost all cases, positive already at 1 CG, shrinking (and in the
paper occasionally negative, attributed to machine anomalies) at 128 CGs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import table6, table6_data


@pytest.mark.benchmark(group="table6")
def test_table6_async_improvement_novec(benchmark, publish):
    rows = run_once(benchmark, table6_data)
    publish("table6", table6())

    values = [v for r in rows for k, v in r.items() if k != "problem"]

    # async never loses in the deterministic model (paper: almost never)
    assert all(v >= -0.01 for v in values)
    # best improvement lands near the paper's 39.3%
    assert 0.30 <= max(values) <= 0.50
    # overall average in the paper's ~13.5% neighbourhood
    avg = sum(values) / len(values)
    assert 0.08 <= avg <= 0.22

    # single-CG runs already benefit (paper Sec. VII-C: "Even with only
    # one CG, performance improvements are still observed")
    one_cg = [r[1] for r in rows if 1 in r]
    assert all(v > 0.05 for v in one_cg)

    # at 128 CGs (one patch per CG) there is nothing left to overlap
    at_128 = [r[128] for r in rows if 128 in r]
    assert all(abs(v) < 0.05 for v in at_128)
