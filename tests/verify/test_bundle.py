"""Repro-bundle round-trip and rendering tests."""

from repro.verify import ReproBundle


def _bundle(**overrides):
    kwargs = dict(
        failure="run-before-recv",
        mode="async",
        select_policy="max_dependents",
        fault_seed=23,
        problem={"extent": [8, 8, 8], "layout": [2, 2, 1], "num_ranks": 2, "nsteps": 1},
        violation={
            "invariant": "run-before-recv",
            "family": "lifecycle",
            "rank": 0,
            "step": 0,
            "task": "advect",
            "t": 1.5,
            "detail": "advect started with 0/2 ghost message(s) unpacked",
        },
        window=[
            {"rank": 0, "t": 1.0, "kind": "step-begin", "step": 0},
            {"rank": 0, "t": 1.5, "kind": "RUNNING", "task": "advect"},
        ],
        detail="1 violation(s)",
    )
    kwargs.update(overrides)
    return ReproBundle(**kwargs)


def test_command_reconstructs_the_exact_case():
    cmd = _bundle().command
    assert cmd.startswith("repro verify")
    for flag in (
        "--modes async",
        "--policies max_dependents",
        "--seeds 23",
        "--nsteps 1",
        "--extent 8x8x8",
        "--cgs 2",
    ):
        assert flag in cmd


def test_fault_free_case_commands_seeds_none():
    assert "--seeds none" in _bundle(fault_seed=None).command


def test_write_read_round_trip(tmp_path):
    bundle = _bundle()
    path = tmp_path / "bundle.json"
    bundle.write(path)
    back = ReproBundle.read(path)
    assert back == bundle


def test_render_is_a_readable_failure_card():
    text = _bundle().render()
    assert "run-before-recv" in text
    assert "repro verify" in text
    assert "advect" in text
    # the event window is shown
    assert "step-begin" in text
