"""The Burgers simulation component: wiring the model problem into the runtime.

Uintah keeps applications and infrastructure decoupled: an application
declares labels and coarse tasks; the runtime does the rest.  This module
is the application side for the model problem, producing

* an ``initialize`` task (exact solution at t=0, paper Sec. III),
* the ``timeAdvance`` CPE-kernel task whose MPE part applies the exact-
  solution boundary conditions to the old DW's physical-boundary ghost
  cells,
* an optional ``uNorm`` reduction task (max |u|), giving the scheduler
  the "MPI reduce tasks" of paper step 3(d) to overlap.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.burgers import kernel as _kernel
from repro.burgers import kernel_simd as _kernel_simd
from repro.burgers.exact import exact_on_region
from repro.burgers.flops import BURGERS_KERNEL_COST
from repro.burgers.phi import NU
from repro.core.grid import Grid
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel
from repro.sunway.fastmath import exp_function

#: Kernel implementations selectable for real-numerics runs.
KERNEL_IMPLS = ("numpy", "cell_loop", "simd")


@dataclasses.dataclass
class BurgersProblem:
    """The model fluid-flow problem on a grid.

    Parameters
    ----------
    grid:
        Mesh and patch layout.
    nu:
        Viscosity (paper: 0.01).
    fast_exp:
        Use the fast non-IEEE exponential library (paper Sec. VI-C).
    kernel_impl:
        Which real-numerics kernel to run: ``"numpy"`` (production),
        ``"cell_loop"`` (literal Algorithm 1) or ``"simd"`` (tiled
        Algorithm 2).  All produce identical results.
    with_reduction:
        Include the ``uNorm`` reduction task each timestep.
    """

    grid: Grid
    nu: float = NU
    fast_exp: bool = False
    kernel_impl: str = "numpy"
    with_reduction: bool = True

    def __post_init__(self) -> None:
        if self.kernel_impl not in KERNEL_IMPLS:
            raise ValueError(f"kernel_impl must be one of {KERNEL_IMPLS}")
        self.u_label = VarLabel("u")
        self.norm_label = VarLabel("uNorm", vartype="reduction")
        self._exp = exp_function(self.fast_exp)

    # ------------------------------------------------------------- actions
    def _initialize(self, ctx: TaskContext) -> None:
        var = ctx.new_dw.allocate_and_put(self.u_label, ctx.patch, ghosts=1)
        var.interior[...] = exact_on_region(
            self.grid, ctx.patch.region, t=ctx.time, nu=self.nu, exp=self._exp
        )

    def _apply_bcs(self, ctx: TaskContext) -> None:
        """MPE part of timeAdvance: exact-solution BCs on physical faces,
        written into the *old* DW's ghost cells at the current time."""
        var = ctx.old_dw.get(self.u_label, ctx.patch)
        for axis, side in self.grid.boundary_faces(ctx.patch):
            region = ctx.patch.ghost_region(axis, side, width=1)
            var.set_region(
                region,
                exact_on_region(self.grid, region, t=ctx.time, nu=self.nu, exp=self._exp),
            )

    def _advance(self, ctx: TaskContext) -> None:
        u_old = ctx.old_dw.get(self.u_label, ctx.patch)
        u_new = ctx.new_dw.allocate_and_put(self.u_label, ctx.patch, ghosts=1)
        if self.kernel_impl == "numpy":
            _kernel.apply_kernel(
                u_old, u_new, self.grid, ctx.time, ctx.dt, self.nu, self._exp
            )
        elif self.kernel_impl == "cell_loop":
            _kernel.apply_kernel_cell_loop(
                u_old, u_new, self.grid, ctx.time, ctx.dt, self.nu, self._exp
            )
        else:
            _kernel_simd.apply_kernel_simd(
                u_old, u_new, self.grid, ctx.time, ctx.dt, self.nu, self._exp
            )

    def _norm(self, ctx: TaskContext) -> float:
        var = ctx.new_dw.get(self.u_label, ctx.patch)
        return float(np.abs(var.interior).max())

    # ------------------------------------------------------------- task wiring
    def init_tasks(self) -> list[Task]:
        """The initialization graph (no ghost requirements)."""
        init = Task(
            "initialize",
            kind=TaskKind.MPE,
            action=self._initialize,
        )
        init.computes_(self.u_label)
        return [init]

    def tasks(self) -> list[Task]:
        """The per-timestep graph."""
        advance = Task(
            "timeAdvance",
            kind=TaskKind.CPE_KERNEL,
            action=self._advance,
            mpe_action=self._apply_bcs,
            kernel_cost=BURGERS_KERNEL_COST,
            tile_fields_in=1,
            tile_fields_out=1,
        )
        advance.requires_(self.u_label, dw="old", ghosts=1)
        advance.computes_(self.u_label)
        out = [advance]
        if self.with_reduction:
            norm = Task(
                "uNorm",
                kind=TaskKind.REDUCTION,
                action=self._norm,
                reduction_op=max,
            )
            norm.requires_(self.u_label, dw="new", ghosts=0)
            norm.computes_(self.norm_label)
            out.append(norm)
        return out

    # ------------------------------------------------------------- numerics
    def stable_dt(self, safety: float = 0.5) -> float:
        """Forward-Euler stability bound: diffusion + advection CFL.

        phi is bounded by 1 (see :func:`repro.burgers.phi.phi_range`), so
        ``dt <= safety / (2 nu sum(1/dx_a^2) + sum(1/dx_a))``.
        """
        dx = self.grid.spacing
        diffusion = 2.0 * self.nu * sum(1.0 / (d * d) for d in dx)
        advection = sum(1.0 / d for d in dx)
        return safety / (diffusion + advection)
