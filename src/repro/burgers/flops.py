"""The analytic flop model of the Burgers kernel (paper Table I).

The paper counts ~311 flops per cell with precise hardware counters, 215
of which come from the six exponentials.  We derive the same budget from
the kernel structure, at the hoisting level a reasonable implementation
uses (per-timestep constants like ``dt`` products precomputed; per-cell
coordinate and exponent arithmetic counted):

Per phi call (stable form, Sec. III):

====================================  ====
coordinate ``x = i*dx``                  1
exponents a, b, c (3 x (mul+add+add))    9
max of three (2 compares)                2
subtract max from a, b, c                3
numerator  (2 mul + 2 add)               4
denominator (2 add)                      2
final divide                             1
**non-exp ops per phi**               **22**
exponentials per phi (largest is 1)    2
====================================  ====

Per cell (Algorithm 1): 3 phi calls = 66 non-exp ops + 6 exps; advection
terms 3 x (sub + mul + mul) = 9; diffusion terms 3 x (mul + 2 add + mul)
= 12; assembling ``du`` = 6; Euler update = 2 -> **stencil total 95**.

With the fast library's 36 flops per exponential: 95 + 6*36 = **311**
flops per interior cell — the paper's asymptotic Table I value, with
exponentials contributing 216 ~ the paper's 215.

Table I's "FLOPs per Cell" column divides by the grid size *including one
global ghost layer* — verifiable from the paper's own "Total Cells"
column: 130*130*1026 = 17,339,400 for the 128x128x1024 grid.  That
denominator is why the reported value rises from 299 to 311 with problem
size while the per-interior-cell cost stays constant.
"""

from __future__ import annotations

from repro.core.grid import Grid
from repro.sunway.corerates import KernelCost
from repro.sunway.fastmath import exp_flops
from repro.sunway.perfcounters import FlopCounter

#: Non-exponential ops per phi call (see table above).
PHI_NONEXP_FLOPS = 22
#: Exponentials per phi call (stable evaluation).
PHI_EXPS = 2
#: Phi calls per cell (one per axis).
PHI_CALLS_PER_CELL = 3
#: Non-phi stencil ops per cell (advection 9 + diffusion 12 + du 6 + update 2).
STENCIL_ONLY_FLOPS = 29
#: All non-exponential ops per cell.
NONEXP_FLOPS_PER_CELL = PHI_CALLS_PER_CELL * PHI_NONEXP_FLOPS + STENCIL_ONLY_FLOPS
#: Exponentials per cell.
EXPS_PER_CELL = PHI_CALLS_PER_CELL * PHI_EXPS
#: Bytes of compulsory memory traffic per cell (read u, write u_new).
BYTES_PER_CELL = 16

#: The kernel cost description used by the scheduler's performance model.
BURGERS_KERNEL_COST = KernelCost(
    stencil_flops=NONEXP_FLOPS_PER_CELL,
    exp_calls=EXPS_PER_CELL,
    bytes_read=8,
    bytes_written=8,
)


def flops_per_interior_cell(fast_exp: bool = True) -> int:
    """Counted flops per interior cell (311 with the fast library)."""
    return NONEXP_FLOPS_PER_CELL + EXPS_PER_CELL * exp_flops(fast_exp)


def count_kernel_flops(counter: FlopCounter, cells: int) -> None:
    """Register one kernel execution over ``cells`` cells on a counter."""
    # Exact per-category breakdown of the 95 non-exp ops:
    #   muls: coordinate(3) + exponent muls(9) + numerator muls(6) +
    #         advection muls(6) + diffusion muls(6) + du mul(1) + update mul(1) = 32
    #   adds/subs: exponent adds(18) + subtract-max(9) + numerator adds(6) +
    #         denominator adds(6) + advection subs(3) + diffusion adds(6) +
    #         du adds(5) + update add(1) = 54
    #   compares: max-of-three = 6
    #   divs: final phi divides = 3
    counter.count(muls=32, adds=54, compares=6, divs=3, exps=EXPS_PER_CELL, times=cells)


def grid_ghosted_cells(grid: Grid) -> int:
    """Table I's "Total Cells": the grid plus one global ghost layer."""
    nx, ny, nz = grid.extent
    return (nx + 2) * (ny + 2) * (nz + 2)


def table1_row(grid: Grid, fast_exp: bool = True) -> dict:
    """One row of Table I for a grid: counted totals and flops per cell."""
    counter = FlopCounter(fast_exp=fast_exp)
    count_kernel_flops(counter, grid.num_cells)
    total_cells = grid_ghosted_cells(grid)
    return {
        "total_cells": total_cells,
        "total_flops": counter.total,
        "flops_per_cell": counter.total / total_cells,
        "exp_share": counter.report().exp_share,
    }
