"""Communication engine: MPI recvs, ghost pack/send/unpack, copies,
reductions, and old-DW scrub accounting.

One :class:`CommEngine` lives for one timestep (paper steps 3a, 3c, 3d).
It owns the MPE work queue of communication items — local ghost copies,
pack+send, unpack — posts the step's non-blocking receives, watches
pending allreduces, and performs the data-warehouse effects when an item
executes.  The scheduler charges the MPE time (through ``sched._mpe``)
and asks the engine to apply the effects; all bookkeeping lands on the
lifecycle bus (``msg-sent`` / ``msg-recv`` / ``local-copy`` /
``reduction`` / ``scrubbed`` events), never directly on the stats.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.core.schedulers.lifecycle import TaskState
from repro.core.task import DetailedTask
from repro.core.taskgraph import CopySpec, MessageSpec


class CommEngine:
    """Per-timestep communication state and effects for one rank."""

    def __init__(self, sched, st):
        self.sched = sched
        self.st = st
        #: MPE work queue: (kind, payload, cost) items.
        self.work: collections.deque = collections.deque()
        #: Ghost slabs whose destination patch has no producer output yet.
        self.pending_unpacks: dict[tuple[str, str, int], list] = {}
        #: Posted receives not yet harvested: (spec, request).
        self.recv_watch: list[tuple[MessageSpec, object]] = []
        #: In-flight allreduces: (request, task, t_start).
        self.pending_reductions: list[tuple[object, DetailedTask, float]] = []
        #: This step's outgoing sends (drained at step end).
        self.send_reqs: list = []
        #: Old-DW variables die after their last consumer reads them.
        self.scrub_counts: dict[tuple[str, int], int] = (
            dict(sched.graph.old_dw_consumers(sched.rank)) if sched.scrub else {}
        )

    # ------------------------------------------------------------ queueing
    def queue_copy(self, spec: CopySpec) -> None:
        self.work.append(("copy", spec, self.sched.costs.pack_time(spec.ncells, remote=False)))

    def queue_send(self, spec: MessageSpec, from_bootstrap: bool = False) -> None:
        # cross-step slabs produced now are consumed next step; at
        # bootstrap they feed the current step from the init data
        st = self.st
        cost = self.sched.costs.pack_time(spec.region.num_cells, remote=True)
        cost += self.sched.costs.sched.send_post
        if spec.cross_step and not from_bootstrap:
            self.work.append(("send", (spec, st.next_tag_base, "new"), cost))
        else:
            src_dw = "old" if spec.cross_step else spec.dw
            self.work.append(("send", (spec, st.tag_base, src_dw), cost))

    def queue_unpack(self, spec: MessageSpec, payload) -> None:
        cost = self.sched.costs.pack_time(spec.region.num_cells, remote=True)
        self.work.append(("unpack", (spec, payload), cost))

    def queue_startup(self) -> None:
        """Startup sends and copies: old-DW ghost data (and bootstrap)."""
        sched, st = self.sched, self.st
        graph, rank = sched.graph, sched.rank
        for spec in graph.startup_sends(rank):
            self.queue_send(spec)
            if spec.dw == "old" and sched.scrub:
                self.count_old_reader(spec.label.name, spec.from_patch.patch_id)
        if st.bootstrap:
            for spec in graph.bootstrap_sends(rank):
                self.queue_send(spec, from_bootstrap=True)
                if sched.scrub:
                    self.count_old_reader(spec.label.name, spec.from_patch.patch_id)
        for spec in graph.startup_copies(rank):
            self.queue_copy(spec)

    # ------------------------------------------------------------ receives
    def post_recvs(self) -> _t.Generator:
        """Post non-blocking receives for every remote input (step 3a)."""
        sched, st = self.sched, self.st
        my_recvs = [m for d in st.local for m in sched.graph.recvs_for(d)]
        if my_recvs:
            yield from sched._mpe("post-recvs", sched.costs.sched.recv_post * len(my_recvs))
            for spec in my_recvs:
                req = sched.comm.irecv(source=spec.from_rank, tag=st.tag_base + spec.tag)
                self.recv_watch.append((spec, req))

    def harvest_recvs(self) -> list | None:
        """(3c) test MPI: collect completed receives (plain, no yields)."""
        still = []
        harvested = []
        for spec, req in self.recv_watch:
            if req.complete:
                harvested.append((spec, req.value))
            else:
                still.append((spec, req))
        if not harvested:
            return None
        self.recv_watch = still
        return harvested

    def unpack_harvested(self, harvested: list) -> _t.Generator:
        """Charge the MPI test and queue unpacks for harvested receives."""
        yield from self.sched._mpe("mpi-test", self.sched.costs.sched.mpi_test)
        for spec, payload in harvested:
            self.queue_unpack(spec, payload)

    # ------------------------------------------------------------ scrubbing
    def count_old_reader(self, label_name: str, pid: int) -> None:
        key = (label_name, pid)
        self.scrub_counts[key] = self.scrub_counts.get(key, 0) + 1

    def consume_old(self, label_name: str, pid: int) -> None:
        sched = self.sched
        if not sched.scrub:
            return
        key = (label_name, pid)
        left = self.scrub_counts.get(key)
        if left is None:
            return
        if left <= 1:
            del self.scrub_counts[key]
            if sched.real and self.st.old_dw is not None:
                self.st.old_dw.scrub_named(label_name, pid)
            sched.lifecycle.emit("scrubbed", label=label_name, patch=pid)
        else:
            self.scrub_counts[key] = left - 1

    # ------------------------------------------------------------ effects
    def apply_copy(self, spec: CopySpec) -> None:
        sched, st = self.sched, self.st
        sched.lifecycle.emit("local-copy", spec.consumer)
        if sched.real:
            dw = st.dw_for(spec.dw)
            data = dw.get(spec.label, spec.from_patch).get_region(spec.region)
            if dw.exists(spec.label, spec.to_patch):
                dw.get(spec.label, spec.to_patch).set_region(spec.region, data)
            else:
                # the destination patch's own producer has not run yet:
                # stash the slab; flush_stash applies it on completion
                key = (spec.dw, spec.label.name, spec.to_patch.patch_id)
                self.pending_unpacks.setdefault(key, []).append((spec.region, data))
        if spec.dw == "old":
            self.consume_old(spec.label.name, spec.from_patch.patch_id)

    def apply_send(self, spec: MessageSpec, tagb: int, src_dw: str) -> None:
        sched, st = self.sched, self.st
        payload = None
        if sched.real:
            dw = st.dw_for(src_dw)
            payload = dw.get(spec.label, spec.from_patch).get_region(spec.region)
        req = sched.comm.isend(
            dest=spec.to_rank,
            tag=tagb + spec.tag,
            nbytes=spec.nbytes,
            payload=payload,
        )
        if tagb == st.next_tag_base:
            # consumed by the next timestep: completion is tracked
            # across the step boundary, never blocking this step
            sched._carryover_sends.append(req)
        else:
            self.send_reqs.append(req)
        sched.lifecycle.emit("msg-sent", nbytes=spec.nbytes)
        if sched.telemetry is not None:
            sched.telemetry.on_ghost_send(sched.rank, spec.nbytes)
        if src_dw == "old":
            self.consume_old(spec.label.name, spec.from_patch.patch_id)

    def apply_unpack(self, spec: MessageSpec, payload) -> None:
        sched, st = self.sched, self.st
        sched.lifecycle.emit("msg-recv", spec.consumer, nbytes=spec.nbytes)
        if sched.telemetry is not None:
            sched.telemetry.on_ghost_unpack(sched.rank, spec.nbytes)
        if sched.real:
            dw = st.dw_for(spec.dw)
            if dw.exists(spec.label, spec.to_patch):
                dw.get(spec.label, spec.to_patch).set_region(spec.region, payload)
            else:
                # producer for this patch has not run yet: stash the slab
                key = (spec.dw, spec.label.name, spec.to_patch.patch_id)
                self.pending_unpacks.setdefault(key, []).append((spec.region, payload))
        st.tracker.release(spec.consumer.dt_id)

    def flush_stash(self, dt: DetailedTask) -> None:
        sched = self.sched
        if not sched.real or dt.patch is None:
            return
        for label in dt.task.computes:
            key = ("new", label.name, dt.patch.patch_id)
            for region, payload in self.pending_unpacks.pop(key, ()):
                self.st.new_dw.get(label, dt.patch).set_region(region, payload)

    def apply(self, kind: str, payload) -> None:
        """Apply one charged work item's effects (copy / send / unpack)."""
        if kind == "copy":
            self.apply_copy(payload)
            self.st.tracker.release(payload.consumer.dt_id)
        elif kind == "send":
            self.apply_send(*payload)
        elif kind == "unpack":
            self.apply_unpack(*payload)

    # ------------------------------------------------------------ reductions
    def start_reduction(self, dt: DetailedTask) -> _t.Generator:
        """Combine local patch values and post the allreduce (step 3d)."""
        sched, st = self.sched, self.st
        sched.lifecycle.transition(dt, TaskState.DISPATCHED)
        sched.lifecycle.transition(dt, TaskState.RUNNING)
        partial = 0.0
        if sched.real and dt.task.action is not None:
            values = [
                dt.task.action(sched._ctx(p, st)) for p in sched._local_patches
            ]
            partial = values[0] if values else 0.0
            for v in values[1:]:
                partial = dt.task.reduction_op(partial, v)
        yield from sched._mpe(
            f"reduce-local:{dt.name}",
            sched.costs.reduction_local_time(len(sched._local_patches)),
        )
        req = sched.comm.iallreduce(partial, op=dt.task.reduction_op)
        self.pending_reductions.append((req, dt, sched.sim.now))

    def finish_reductions(self) -> _t.Generator:
        """Finalize reduction tasks whose allreduce completed."""
        sched, st = self.sched, self.st
        done_reds = [t for t in self.pending_reductions if t[0].complete]
        if not done_reds:
            return False
        for req, dt, _t0 in done_reds:
            self.pending_reductions.remove((req, dt, _t0))
            label = dt.task.computes[0]
            st.new_dw.put_reduction(label, req.value)
            yield from sched._mpe(f"reduce-finish:{dt.name}", sched.costs.sched.mpi_test)
            sched.finish_task(st, self, dt)
            sched.lifecycle.emit("reduction")
        return True

    # ------------------------------------------------------------ waiting
    def wait_events(self) -> list:
        """Events an idle MPE can block on: receives and allreduces."""
        events = [req.event for _s, req in self.recv_watch if not req.complete]
        events.extend(req.event for req, _d, _t0 in self.pending_reductions)
        return events

    def drain_sends(self) -> _t.Generator:
        """Block until this step's outgoing sends completed (idle time)."""
        sched = self.sched
        unfinished = [r for r in self.send_reqs if not r.complete]
        if unfinished:
            t0 = sched.sim.now
            yield sched.sim.all_of([r.event for r in unfinished])
            sched.lifecycle.emit("idle", seconds=sched.sim.now - t0)
