"""Tests for the simulation controller itself."""

import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.task import Task, TaskKind
from repro.core.varlabel import VarLabel


def make_controller(real=True, mode="async", num_ranks=2, trace=False, grid=None, **kw):
    grid = grid or Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    return grid, prob, SimulationController(
        grid, prob.tasks(), prob.init_tasks(),
        num_ranks=num_ranks, mode=mode, real=real, trace_enabled=trace, **kw,
    )


def test_model_mode_times_equal_real_mode_times():
    """Real numerics add zero *virtual* time: the performance model and
    the real execution follow the identical schedule."""
    _, prob, ctl_real = make_controller(real=True)
    _, _, ctl_model = make_controller(real=False)
    dt = prob.stable_dt()
    r = ctl_real.run(nsteps=3, dt=dt)
    m = ctl_model.run(nsteps=3, dt=dt)
    assert r.time_per_step == m.time_per_step
    assert r.step_times == m.step_times
    assert r.stats.kernels_offloaded == m.stats.kernels_offloaded
    assert r.stats.messages_sent == m.stats.messages_sent


def test_step_times_sum_to_total():
    _, prob, ctl = make_controller()
    res = ctl.run(nsteps=4, dt=prob.stable_dt())
    assert sum(res.step_times) == pytest.approx(res.total_time)
    assert len(res.step_times) == 4
    assert all(t > 0 for t in res.step_times)


def test_nsteps_validation():
    _, prob, ctl = make_controller()
    with pytest.raises(ValueError):
        ctl.run(nsteps=0, dt=1e-3)


def test_init_with_ghost_requirements_rejected():
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    bad_init = Task("init", kind=TaskKind.MPE, action=lambda ctx: None)
    bad_init.requires_(VarLabel("u"), dw="old", ghosts=1)
    bad_init.computes_(VarLabel("u"))
    with pytest.raises(ValueError, match="must not require ghost"):
        SimulationController(grid, prob.tasks(), [bad_init], num_ranks=2)


def test_flops_per_step_counts_kernels():
    _, prob, ctl = make_controller(num_ranks=1)
    res = ctl.run(nsteps=2, dt=prob.stable_dt())
    # 16^3 cells x 311 flops per step (fast_exp=False still counts via
    # the cost model's fast_exp default True)
    assert res.flops_per_step == pytest.approx(16**3 * 311)


def test_gflops_zero_guard():
    from repro.core.controller import RunResult
    from repro.core.schedulers.base import SchedulerStats
    from repro.core.trace import Tracer

    r = RunResult(
        num_ranks=1, nsteps=1, total_time=0.0, time_per_step=0.0, step_times=[0.0],
        stats=SchedulerStats(), rank_stats=[], flops_per_step=0.0,
        messages_sent=0, bytes_sent=0, final_dws=[], trace=Tracer(False), sim_time=0.0,
    )
    assert r.gflops == 0.0


def test_params_reach_task_context():
    grid = Grid(extent=(8, 8, 8), layout=(1, 1, 1))
    seen = {}

    u = VarLabel("u")

    def init_action(ctx):
        ctx.new_dw.allocate_and_put(u, ctx.patch, ghosts=1)

    def advance(ctx):
        seen.update(ctx.params)
        var = ctx.new_dw.allocate_and_put(u, ctx.patch, ghosts=1)
        var.interior[...] = 0.0

    init = Task("init", kind=TaskKind.MPE, action=init_action)
    init.computes_(u)
    from repro.sunway.corerates import KernelCost

    adv = Task("advance", kind=TaskKind.CPE_KERNEL, action=advance,
               kernel_cost=KernelCost(stencil_flops=1, exp_calls=0))
    adv.requires_(u, dw="old", ghosts=0).computes_(u)

    ctl = SimulationController(
        grid, [adv], [init], num_ranks=1, real=True, params={"viscosity": 0.01}
    )
    ctl.run(nsteps=1, dt=1e-3)
    assert seen == {"viscosity": 0.01}


def test_trace_disabled_by_default():
    _, prob, ctl = make_controller(trace=False)
    res = ctl.run(nsteps=1, dt=prob.stable_dt())
    assert res.trace.spans == []


def test_rank_stats_per_rank():
    _, prob, ctl = make_controller(num_ranks=4)
    res = ctl.run(nsteps=2, dt=prob.stable_dt())
    assert len(res.rank_stats) == 4
    total = sum(s.kernels_offloaded for s in res.rank_stats)
    assert total == res.stats.kernels_offloaded == 2 * 8


def test_custom_balancer_changes_assignment():
    _, prob, ctl_sfc = make_controller(balancer="sfc", num_ranks=4)
    _, _, ctl_rr = make_controller(balancer="roundrobin", num_ranks=4)
    assert ctl_sfc.assignment != ctl_rr.assignment


def test_noise_reproducible_per_seed():
    """Same seed -> identical noisy timings; different seed -> different."""
    from repro.core.noise import NoiseModel

    def run_with(seed):
        _, prob, ctl = make_controller(
            real=False,
            scheduler_kwargs={"noise": NoiseModel(seed=seed, kernel_cv=0.15, mpe_cv=0.1)},
        )
        return ctl.run(nsteps=2, dt=1e-3).time_per_step

    assert run_with(3) == run_with(3)
    assert run_with(3) != run_with(4)


def test_noise_only_slows_down():
    from repro.core.noise import NoiseModel

    _, prob, quiet_ctl = make_controller(real=False)
    quiet = quiet_ctl.run(nsteps=2, dt=1e-3).time_per_step
    _, _, noisy_ctl = make_controller(
        real=False,
        scheduler_kwargs={"noise": NoiseModel(seed=1, kernel_cv=0.3, mpe_cv=0.3)},
    )
    noisy = noisy_ctl.run(nsteps=2, dt=1e-3).time_per_step
    assert noisy > quiet
