"""Mutation self-tests: planted schedule bugs must be flagged.

The live lifecycle raises :class:`IllegalTransition` before notifying
subscribers, so the validator's checks are exercised by replaying a
recorded clean event stream with one deliberate corruption each —
exactly the bugs the invariant catalog promises to catch.  Every test
asserts the validator flags its planted bug (and the planted bug only,
where the corruption is surgical enough to guarantee that).
"""

import pytest

from repro.core.schedulers.lifecycle import TaskState
from repro.verify import ReproBundle, ScheduleValidator, replay


def _replayed(run, events, **validator_kwargs):
    v = ScheduleValidator(**validator_kwargs)
    return replay(events, 0, run.graph, run.costs, validator=v)


def _transitions(events, state):
    return [
        (i, ev)
        for i, ev in enumerate(events)
        if ev.kind == "transition" and ev.state is state
    ]


def _has_later_running(events, idx, dt_id):
    return any(
        ev.kind == "transition"
        and ev.state is TaskState.RUNNING
        and ev.dt.dt_id == dt_id
        for ev in events[idx + 1 :]
    )


def test_clean_replay_is_clean(recorded_run):
    """Baseline: the unmutated stream replays with zero violations."""
    v = _replayed(recorded_run, recorded_run.copy_events())
    assert v.ok, v.report()


def test_dropped_ghost_receive_flags_run_before_recv(recorded_run):
    events = recorded_run.copy_events()
    idx = next(
        i
        for i, ev in enumerate(events)
        if ev.kind == "msg-recv"
        and ev.dt is not None
        and _has_later_running(events, i, ev.dt.dt_id)
    )
    del events[idx]
    v = _replayed(recorded_run, events)
    assert not v.ok
    assert "run-before-recv" in v.report()["per_invariant"]


def test_dropped_local_copy_flags_run_before_copy(recorded_run):
    events = recorded_run.copy_events()
    idx = next(
        i
        for i, ev in enumerate(events)
        if ev.kind == "local-copy"
        and ev.dt is not None
        and _has_later_running(events, i, ev.dt.dt_id)
    )
    del events[idx]
    v = _replayed(recorded_run, events)
    assert not v.ok
    assert "run-before-copy" in v.report()["per_invariant"]


def test_dropped_producer_retirement_flags_run_before_dep(recorded_run):
    events = recorded_run.copy_events()
    deps_of = {
        did: recorded_run.graph.internal_deps[did]
        for did in recorded_run.graph.internal_deps
    }
    # a consumer with at least one same-rank producer, and that
    # producer's DONE before the consumer's RUNNING: drop the DONE
    for i, ev in _transitions(events, TaskState.RUNNING):
        deps = deps_of.get(ev.dt.dt_id) or ()
        for j, done in _transitions(events[:i], TaskState.DONE):
            if done.dt.dt_id in deps:
                del events[j]
                v = _replayed(recorded_run, events)
                assert not v.ok
                assert "run-before-dep" in v.report()["per_invariant"]
                return
    pytest.fail("stream contains no producer-before-consumer pair")


def test_skipped_dispatch_flags_illegal_transition(recorded_run):
    events = recorded_run.copy_events()
    idx, _ = _transitions(events, TaskState.DISPATCHED)[0]
    del events[idx]
    v = _replayed(recorded_run, events)
    assert not v.ok
    report = v.report()
    assert report["per_invariant"] == {"illegal-transition": 1}
    assert "READY -> RUNNING" in report["violations"][0]["detail"]


def test_duplicated_completion_flags_illegal_transition(recorded_run):
    events = recorded_run.copy_events()
    idx, done = _transitions(events, TaskState.DONE)[0]
    events.insert(idx + 1, done)
    v = _replayed(recorded_run, events)
    assert not v.ok
    report = v.report()
    assert report["per_invariant"] == {"illegal-transition": 1}
    assert "DONE -> DONE" in report["violations"][0]["detail"]


def test_early_scrub_flags_scrub_early(recorded_run):
    events = recorded_run.copy_events()
    scrub_idx = next(i for i, ev in enumerate(events) if ev.kind == "scrubbed")
    step_idx = max(
        i for i, ev in enumerate(events[:scrub_idx]) if ev.kind == "step-begin"
    )
    # replay the scrub right after its step begins, before any reader ran
    events.insert(step_idx + 1, events.pop(scrub_idx))
    v = _replayed(recorded_run, events)
    assert not v.ok
    assert "scrub-early" in v.report()["per_invariant"]


def test_shrunk_ldm_budget_flags_every_offload(recorded_run):
    events = recorded_run.copy_events()
    offloads = [
        ev
        for _, ev in _transitions(events, TaskState.RUNNING)
        if ev.info.get("backend") == "cpe"
    ]
    assert offloads, "recorded run offloaded nothing"
    v = _replayed(recorded_run, events, ldm_bytes=128)
    assert not v.ok
    report = v.report()
    assert report["per_invariant"] == {"ldm-overflow": len(offloads)}


def test_first_violation_yields_a_working_repro_bundle(recorded_run):
    """A flagged mutation carries everything a repro bundle needs."""
    events = recorded_run.copy_events()
    idx, _ = _transitions(events, TaskState.DISPATCHED)[0]
    del events[idx]
    v = _replayed(recorded_run, events)
    violation = v.first_violation
    assert violation is not None
    bundle = ReproBundle(
        failure=violation.invariant,
        mode="async",
        select_policy="fifo",
        fault_seed=None,
        problem={"extent": [8, 8, 8], "layout": [2, 2, 1], "num_ranks": 2, "nsteps": 2},
        violation=violation.to_dict(),
        window=list(v.first_window or ()),
    )
    assert bundle.failure == "illegal-transition"
    assert bundle.window, "first_window snapshot is empty"
    assert "--modes async" in bundle.command
    rendered = bundle.render()
    assert "illegal-transition" in rendered
