"""Derived metrics of the evaluation (paper Sec. VII-B..E)."""

from __future__ import annotations

from repro.harness.runner import ExperimentResult


def scaling_efficiency(base: ExperimentResult, scaled: ExperimentResult) -> float:
    """Strong-scaling efficiency from ``base`` to ``scaled`` (Table V).

    ``efficiency = (T_base * P_base) / (T_scaled * P_scaled)`` — 1.0 is
    ideal speedup proportional to the CG count.
    """
    if base.problem != scaled.problem or base.variant != scaled.variant:
        raise ValueError("efficiency compares the same problem and variant")
    return (base.time_per_step * base.num_cgs) / (scaled.time_per_step * scaled.num_cgs)


def async_improvement(sync: ExperimentResult, asynchronous: ExperimentResult) -> float:
    """The paper's Sec. VII-C effectiveness metric:
    ``(T_sync - T_async) / T_async``."""
    if sync.problem != asynchronous.problem or sync.num_cgs != asynchronous.num_cgs:
        raise ValueError("improvement compares the same problem and CG count")
    return (sync.time_per_step - asynchronous.time_per_step) / asynchronous.time_per_step


def optimization_boost(baseline: ExperimentResult, optimized: ExperimentResult) -> float:
    """Sec. VII-D's performance boost: ``T_host / T_acc``."""
    if baseline.problem != optimized.problem or baseline.num_cgs != optimized.num_cgs:
        raise ValueError("boost compares the same problem and CG count")
    return baseline.time_per_step / optimized.time_per_step


def speedup(base: ExperimentResult, scaled: ExperimentResult) -> float:
    """Raw strong-scaling speedup ``T_base / T_scaled``."""
    return base.time_per_step / scaled.time_per_step
