"""Tests for the SW26010 / TaihuLight machine parameters (paper Table II, Sec. IV)."""

import pytest

from repro.sunway.config import SunwayMachine, CoreGroupConfig, SW26010, table2_rows


def test_cg_core_counts_match_paper():
    # "each CG is made up of one MPE and 64 CPEs"
    assert SW26010.num_cpes == 64
    # "an on-chip 64KB scratch pad memory ... attached to each CPE"
    assert SW26010.ldm_bytes == 64 * 1024


def test_cg_peak_rates_match_paper():
    # "Performance of the MPE is 23.2 Gflop/s, and that is 742.4 Gflop/s
    #  for the cluster of CPEs."
    assert SW26010.mpe_peak_flops == pytest.approx(23.2e9)
    assert SW26010.cpe_cluster_peak_flops == pytest.approx(742.4e9)
    assert SW26010.peak_flops == pytest.approx(765.6e9)
    # single CPE: 11.6 Gflop/s
    assert SW26010.cpe_peak_flops == pytest.approx(11.6e9)


def test_mpe_contributes_three_percent():
    # "the MPE only contributes 3% of the aggregated performance"
    share = SW26010.mpe_peak_flops / SW26010.peak_flops
    assert 0.025 < share < 0.035


def test_node_performance_matches_table2():
    # Table II: node (4 CGs) performance 3.06 Tflop/s
    assert 4 * SW26010.peak_flops == pytest.approx(3.0624e12)


def test_machine_aggregates():
    m = SunwayMachine(num_cgs=128)
    assert m.total_cores == 128 * 65  # 8320 cores, as in Sec. VII-A
    assert m.peak_flops == pytest.approx(128 * 765.6e9)
    assert m.total_memory_bytes == 128 * 8 * 1024**3


def test_machine_with_cgs_resize():
    m = SunwayMachine(num_cgs=128)
    m2 = m.with_cgs(4)
    assert m2.num_cgs == 4
    assert m2.core_group is m.core_group
    assert m.num_cgs == 128  # original unchanged (frozen)


def test_machine_rejects_zero_cgs():
    with pytest.raises(ValueError):
        SunwayMachine(num_cgs=0)


def test_interconnect_defaults():
    m = SunwayMachine()
    assert m.interconnect.p2p_bandwidth == pytest.approx(16e9)
    assert m.interconnect.latency == pytest.approx(1e-6)


def test_config_is_hashable_and_frozen():
    cfg = CoreGroupConfig()
    assert hash(cfg) == hash(CoreGroupConfig())
    with pytest.raises(Exception):
        cfg.num_cpes = 32  # type: ignore[misc]


def test_table2_rows_shape():
    rows = table2_rows()
    assert len(rows) == 6
    items = dict(rows)
    assert items["Node cores"] == "4 MPEs + 256 CPEs, 260 cores"
    assert "3.06" in items["Node Performance"]
