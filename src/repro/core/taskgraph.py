"""The distributed task-graph compiler.

"Uintah builds a distributed task graph and uses a scheduler to run
[tasks] in an out of order manner" (paper Sec. II).  Dependencies between
detailed tasks come from two sources: the coarse-task ``requires`` /
``computes`` declarations, and the neighbour-value (ghost cell)
dependencies among patches; remote dependencies become MPI messages.

This compiler produces, from ``(grid, tasks, patch->rank assignment)``:

* one :class:`~repro.core.task.DetailedTask` per (task, patch) — or per
  (task, rank) for reductions;
* **internal dependencies**: same-rank producer -> consumer edges;
* :class:`MessageSpec`\\ s: cross-rank ghost transfers with deterministic
  tags agreed on by both sides (sender and receiver hold the *same* spec
  object — in real Uintah both sides derive identical specs from the
  same global graph metadata);
* :class:`CopySpec`\\ s: intra-rank ghost copies the MPE performs.

Old-DW inputs (the previous step's results) are owned by the producing
rank's old data warehouse, so their messages have no producer task: the
owner packs and sends them at step start — exactly the paper's scheduler
step 3(a) posting receives "for tasks depending on remote data" right
away.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.grid import Grid
from repro.core.patch import Patch, Region, FACES
from repro.core.task import Task, TaskKind, DetailedTask
from repro.core.varlabel import VarLabel


@dataclasses.dataclass
class MessageSpec:
    """One cross-rank ghost-slab transfer feeding a timestep.

    ``cross_step`` messages carry old-DW data: the slab is produced by a
    task of timestep ``s`` and consumed in timestep ``s+1``.  The sender
    posts them as soon as the producer finishes (paper step 3(b)i), so
    packing and transfer overlap the remaining kernels of step ``s`` —
    the pipelining that gives the asynchronous scheduler its win at
    scale.  The first timestep's instances are instead sent at step
    start from the initialized old DW (bootstrap).
    """

    tag: int
    label: VarLabel
    dw: str  # "old" or "new"
    region: Region
    from_patch: Patch
    to_patch: Patch
    from_rank: int
    to_rank: int
    #: Producing detailed task (for cross-step messages: the previous
    #: step's instance of that task; None if no task computes the label).
    producer: DetailedTask | None
    consumer: DetailedTask
    #: True when produced in step s and consumed in step s+1 (old-DW data).
    cross_step: bool = False

    @property
    def nbytes(self) -> int:
        """Message payload size."""
        return self.region.num_cells * self.label.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Msg tag={self.tag} {self.label.name}/{self.dw} "
            f"p{self.from_patch.patch_id}(r{self.from_rank}) -> "
            f"p{self.to_patch.patch_id}(r{self.to_rank}) {self.region.num_cells} cells>"
        )


@dataclasses.dataclass
class CopySpec:
    """One intra-rank ghost-slab copy performed by the MPE."""

    label: VarLabel
    dw: str
    region: Region
    from_patch: Patch
    to_patch: Patch
    rank: int
    producer: DetailedTask | None
    consumer: DetailedTask

    @property
    def ncells(self) -> int:
        """Cells copied."""
        return self.region.num_cells


class TaskGraph:
    """The compiled graph for one timestep structure.

    The same graph object is executed every timestep until the patch
    distribution changes (Sec. II: "built at the first timestep, and
    remains unchanged"), with per-step MPI tags namespaced by
    ``step * graph.num_tags``.
    """

    def __init__(
        self,
        grid: Grid,
        tasks: _t.Sequence[Task],
        assignment: dict[int, int],
        num_ranks: int,
    ):
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in graph: {names}")
        missing = [p.patch_id for p in grid.patches() if p.patch_id not in assignment]
        if missing:
            raise ValueError(f"assignment misses patches {missing[:5]}...")
        if any(not 0 <= r < num_ranks for r in assignment.values()):
            raise ValueError("assignment references ranks outside range")
        self.grid = grid
        self.tasks = list(tasks)
        self.assignment = dict(assignment)
        self.num_ranks = num_ranks

        self.detailed_tasks: list[DetailedTask] = []
        self.internal_deps: dict[int, set[int]] = {}
        self.messages: list[MessageSpec] = []
        self.copies: list[CopySpec] = []
        self._compile()

    # -- compilation -------------------------------------------------------------
    def _compile(self) -> None:
        grid = self.grid
        patches = grid.patches()
        # Producer map: label name -> coarse task computing it (in order).
        producer_of: dict[str, Task] = {}
        for task in self.tasks:
            for label in task.computes:
                if label.name in producer_of:
                    raise ValueError(
                        f"label {label.name!r} computed by both "
                        f"{producer_of[label.name].name!r} and {task.name!r}"
                    )
                producer_of[label.name] = task

        # Detailed task instantiation, deterministic order.
        dt_of: dict[tuple[str, int], DetailedTask] = {}  # (task, patch) kinds
        red_dt: dict[tuple[str, int], DetailedTask] = {}  # (task, rank)
        task_index = {t.name: i for i, t in enumerate(self.tasks)}
        for task in self.tasks:
            if task.kind is TaskKind.REDUCTION:
                for rank in range(self.num_ranks):
                    dt = DetailedTask(len(self.detailed_tasks), task, None, rank)
                    self.detailed_tasks.append(dt)
                    red_dt[(task.name, rank)] = dt
            else:
                for patch in patches:
                    rank = self.assignment[patch.patch_id]
                    dt = DetailedTask(len(self.detailed_tasks), task, patch, rank)
                    self.detailed_tasks.append(dt)
                    dt_of[(task.name, patch.patch_id)] = dt
        self.internal_deps = {dt.dt_id: set() for dt in self.detailed_tasks}

        def producer_dt(label: VarLabel, patch: Patch) -> DetailedTask:
            ptask = producer_of.get(label.name)
            if ptask is None:
                raise ValueError(f"no task computes {label.name!r} required from new DW")
            return dt_of[(ptask.name, patch.patch_id)]

        def check_order(consumer_task: Task, label: VarLabel) -> None:
            ptask = producer_of.get(label.name)
            if ptask is not None and task_index[ptask.name] >= task_index[consumer_task.name]:
                raise ValueError(
                    f"task {consumer_task.name!r} requires {label.name!r} from the new DW "
                    f"but its producer {ptask.name!r} is declared later"
                )

        tag_counter = 0
        for task in self.tasks:
            if task.kind is TaskKind.REDUCTION:
                tag_counter = self._compile_reduction(task, producer_of, dt_of, red_dt)
                continue
            for patch in patches:
                consumer = dt_of[(task.name, patch.patch_id)]
                crank = consumer.rank
                for dep in task.requires:
                    if dep.label.is_reduction:
                        # depends on this rank's reduction detailed task
                        ptask = producer_of.get(dep.label.name)
                        if ptask is None:
                            raise ValueError(f"no task computes reduction {dep.label.name!r}")
                        if dep.dw == "new":
                            self.internal_deps[consumer.dt_id].add(
                                red_dt[(ptask.name, crank)].dt_id
                            )
                        continue
                    if dep.dw == "new":
                        check_order(task, dep.label)
                        self.internal_deps[consumer.dt_id].add(
                            producer_dt(dep.label, patch).dt_id
                        )
                    if dep.ghosts > 0:
                        for axis, side in FACES:
                            nb = grid.neighbor(patch, axis, side)
                            if nb is None:
                                continue  # physical boundary: BCs, not exchange
                            region = patch.ghost_region(axis, side, dep.ghosts)
                            prank = self.assignment[nb.patch_id]
                            if dep.dw == "new":
                                prod = producer_dt(dep.label, nb)
                                cross = False
                            else:
                                # old-DW data: produced by the previous
                                # step's instance of the producing task
                                ptask = producer_of.get(dep.label.name)
                                prod = (
                                    dt_of[(ptask.name, nb.patch_id)]
                                    if ptask is not None
                                    else None
                                )
                                cross = prod is not None
                            if prank == crank:
                                if prod is not None and dep.dw == "new":
                                    self.internal_deps[consumer.dt_id].add(prod.dt_id)
                                self.copies.append(
                                    CopySpec(
                                        label=dep.label,
                                        dw=dep.dw,
                                        region=region,
                                        from_patch=nb,
                                        to_patch=patch,
                                        rank=crank,
                                        # old-DW local copies run at step
                                        # start (data already present)
                                        producer=prod if dep.dw == "new" else None,
                                        consumer=consumer,
                                    )
                                )
                            else:
                                self.messages.append(
                                    MessageSpec(
                                        tag=tag_counter,
                                        label=dep.label,
                                        dw=dep.dw,
                                        region=region,
                                        from_patch=nb,
                                        to_patch=patch,
                                        from_rank=prank,
                                        to_rank=crank,
                                        producer=prod,
                                        consumer=consumer,
                                        cross_step=cross,
                                    )
                                )
                                tag_counter += 1
        self.num_tags = max(tag_counter, 1)
        self._index_views()

    def _compile_reduction(self, task, producer_of, dt_of, red_dt) -> int:
        """Reduction tasks depend on every local producer of their inputs."""
        for rank in range(self.num_ranks):
            consumer = red_dt[(task.name, rank)]
            for dep in task.requires:
                if dep.ghosts:
                    raise ValueError(
                        f"reduction task {task.name!r} cannot require ghost cells"
                    )
                if dep.dw != "new" or dep.label.is_reduction:
                    continue
                ptask = producer_of.get(dep.label.name)
                if ptask is None:
                    raise ValueError(
                        f"reduction task {task.name!r} requires {dep.label.name!r} "
                        "which no task computes"
                    )
                for pid, prank in self.assignment.items():
                    if prank == rank:
                        self.internal_deps[consumer.dt_id].add(
                            dt_of[(ptask.name, pid)].dt_id
                        )
        # reductions use collectives, not tagged messages
        return len(self.messages)

    # -- per-rank views ------------------------------------------------------------
    def _index_views(self) -> None:
        self._local: dict[int, list[DetailedTask]] = {r: [] for r in range(self.num_ranks)}
        for dt in self.detailed_tasks:
            self._local[dt.rank].append(dt)
        self._recvs: dict[int, list[MessageSpec]] = {dt.dt_id: [] for dt in self.detailed_tasks}
        self._sends_startup: dict[int, list[MessageSpec]] = {
            r: [] for r in range(self.num_ranks)
        }
        self._bootstrap_sends: dict[int, list[MessageSpec]] = {
            r: [] for r in range(self.num_ranks)
        }
        self._sends_after: dict[int, list[MessageSpec]] = {
            dt.dt_id: [] for dt in self.detailed_tasks
        }
        for msg in self.messages:
            self._recvs[msg.consumer.dt_id].append(msg)
            if msg.producer is None:
                self._sends_startup[msg.from_rank].append(msg)
            else:
                self._sends_after[msg.producer.dt_id].append(msg)
                if msg.cross_step:
                    # the first timestep has no previous step: its old-DW
                    # slabs are sent at step start from the init data
                    self._bootstrap_sends[msg.from_rank].append(msg)
        self._copies_startup: dict[int, list[CopySpec]] = {r: [] for r in range(self.num_ranks)}
        self._copies_after: dict[int, list[CopySpec]] = {
            dt.dt_id: [] for dt in self.detailed_tasks
        }
        self._copies_for: dict[int, list[CopySpec]] = {
            dt.dt_id: [] for dt in self.detailed_tasks
        }
        for cp in self.copies:
            if cp.producer is None:
                self._copies_startup[cp.rank].append(cp)
            else:
                self._copies_after[cp.producer.dt_id].append(cp)
            self._copies_for[cp.consumer.dt_id].append(cp)

    def local_tasks(self, rank: int) -> list[DetailedTask]:
        """Detailed tasks owned by ``rank`` (declaration order)."""
        return self._local[rank]

    def recvs_for(self, dt: DetailedTask) -> list[MessageSpec]:
        """Incoming messages the task must see before running."""
        return self._recvs[dt.dt_id]

    def startup_sends(self, rank: int) -> list[MessageSpec]:
        """Producerless messages ``rank`` sends at the start of every step."""
        return self._sends_startup[rank]

    def bootstrap_sends(self, rank: int) -> list[MessageSpec]:
        """Cross-step messages sent at step start on the *first* timestep
        only (their producers ran in the initialization graph)."""
        return self._bootstrap_sends[rank]

    def sends_after(self, dt: DetailedTask) -> list[MessageSpec]:
        """Messages that become sendable once ``dt`` completes."""
        return self._sends_after[dt.dt_id]

    def startup_copies(self, rank: int) -> list[CopySpec]:
        """Old-DW intra-rank ghost copies performed at step start."""
        return self._copies_startup[rank]

    def copies_after(self, dt: DetailedTask) -> list[CopySpec]:
        """Intra-rank copies unlocked by ``dt`` completing."""
        return self._copies_after[dt.dt_id]

    def copies_for(self, dt: DetailedTask) -> list[CopySpec]:
        """Intra-rank copies that must land before ``dt`` may run."""
        return self._copies_for[dt.dt_id]

    def old_dw_consumers(self, rank: int) -> dict[tuple[str, int], int]:
        """Steady-state consumer counts of old-DW grid variables on ``rank``.

        The scheduler decrements these as tasks read their own patch's
        old data and as intra-rank ghost copies read their source; when a
        count hits zero the variable is scrubbed from the old DW —
        Uintah's scrubbing memory reclamation.  Bootstrap-step sends add
        their own counts at runtime (they also read the old DW).
        """
        counts: dict[tuple[str, int], int] = {}
        for dt in self._local[rank]:
            if dt.patch is None:
                continue
            for dep in dt.task.requires:
                if dep.dw == "old" and not dep.label.is_reduction:
                    key = (dep.label.name, dt.patch.patch_id)
                    counts[key] = counts.get(key, 0) + 1
        for cp in self.copies:
            if cp.rank == rank and cp.dw == "old":
                key = (cp.label.name, cp.from_patch.patch_id)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def dependents_of(self, dt: DetailedTask) -> list[DetailedTask]:
        """Same-rank tasks with an internal edge from ``dt``."""
        return [
            other
            for other in self._local[dt.rank]
            if dt.dt_id in self.internal_deps[other.dt_id]
        ]

    # -- invariants (used by tests and controller asserts) ----------------------------
    def validate_acyclic(self) -> None:
        """Internal dependencies must form a DAG (they do by construction;
        this re-checks after any manual graph surgery)."""
        state: dict[int, int] = {}

        def visit(node: int) -> None:
            state[node] = 1
            for dep in self.internal_deps[node]:
                s = state.get(dep, 0)
                if s == 1:
                    raise ValueError(f"cycle through detailed task {node}")
                if s == 0:
                    visit(dep)
            state[node] = 2

        for dt in self.detailed_tasks:
            if state.get(dt.dt_id, 0) == 0:
                visit(dt.dt_id)
