"""Shared plumbing for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper.
The pytest-benchmark fixture measures the *host* cost of regenerating it
(the DES is deterministic, so one round suffices); the regenerated
artifact itself — the paper-shaped table — is printed and written under
``benchmarks/results/`` for EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a regenerated artifact and persist it under results/."""

    def _publish(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _publish


@pytest.fixture
def publish_json():
    """Write a benchmark's machine-readable result as BENCH_<name>.json
    at the repo root, where CI and regression tooling pick it up."""

    def _publish(name: str, data: dict) -> None:
        path = REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    return _publish


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic regeneration exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
