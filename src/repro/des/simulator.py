"""The event loop and virtual clock."""

from __future__ import annotations

import heapq
import typing as _t

from repro.des.event import Event, Timeout, all_of, any_of
from repro.des.process import Process


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Deterministic discrete-event simulator.

    Time is a ``float`` in seconds of *simulated* machine time.  Events
    scheduled for the same instant fire in scheduling (FIFO) order, which
    makes every run bit-reproducible — a property the scheduler
    distribution-invariance tests rely on.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, object]] = []
        self._seq = 0
        self._active_process: Process | None = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self, name: str | None = None) -> Event:
        """A fresh untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> Event:
        """Event firing when all of ``events`` fired."""
        return all_of(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> Event:
        """Event firing when any of ``events`` fired."""
        return any_of(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, item: object, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, self._seq, item))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event."""
        try:
            when, _, item = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no events scheduled") from None
        assert when >= self._now, "event queue went backwards"
        self._now = when
        item._process()  # type: ignore[attr-defined]

    def run(
        self, until: float | Event | None = None, max_events: int | None = None
    ) -> object:
        """Run until the queue drains, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to queue exhaustion;
            a ``float`` — run until the clock would pass that time
            (the clock is then set to exactly that time);
            an :class:`Event` — run until that event has been processed,
            returning its value (or raising its exception).
        max_events:
            Optional runaway guard: abort with ``RuntimeError`` after
            processing this many events (catches processes stuck in
            zero-delay loops, which never drain the queue).
        """
        budget = max_events

        def tick() -> None:
            nonlocal budget
            self.step()
            if budget is not None:
                budget -= 1
                if budget < 0:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events} at t={self._now} "
                        "(zero-delay loop?)"
                    )

        if until is None:
            while self._queue:
                tick()
            return None
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._queue:
                    raise RuntimeError(
                        f"simulation ran out of events before {target!r} fired (deadlock?)"
                    )
                tick()
            if not target.ok:
                raise _t.cast(BaseException, target.value)
            return target.value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            tick()
        self._now = horizon
        return None
