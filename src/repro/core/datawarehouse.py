"""Old/new data warehouses.

"The *old* data warehouse holds the data calculated in the previous
timestep.  The coarse task takes what it needs from the old data
warehouse and produces results that then populate the *new* data
warehouse ... after the timestep is completed, the new data warehouse
becomes the old data warehouse for the next timestep." (paper Sec. II)

Each simulated rank owns one old and one new :class:`DataWarehouse` per
timestep, holding only its local patches' variables (plus whatever ghost
data has been unpacked into their halos).  Reduction variables live in
the warehouse as scalars.

Access accounting: a warehouse remembers which keys were scrubbed, so
the three classic lifecycle bugs surface with precise diagnostics
instead of bare ``KeyError``/silent ``False``:

* *read-before-put* — ``get`` of a key no task has produced;
* *use-after-scrub* — ``get`` of a key whose last consumer already
  retired it;
* *double-put* / *double-scrub* — violations of the single-assignment
  and scrub-once contracts.

An optional ``observer`` (the ``repro.verify`` schedule validator's
access audit) is notified of each of these *before* the error is
raised, so an online checker can attribute the violation to the running
schedule even when the raise is swallowed upstream.  The observer hooks
charge no simulated time and are ``None`` by default: an unobserved
warehouse behaves byte-identically to the unhooked implementation.
"""

from __future__ import annotations

import typing as _t

from repro.core.patch import Patch
from repro.core.variables import CCVariable
from repro.core.varlabel import VarLabel


class DataWarehouse:
    """Variable storage for one rank and one timestep generation."""

    def __init__(self, step: int, rank: int = 0, observer=None):
        self.step = step
        self.rank = rank
        #: Access-audit hook (``on_dw_double_put`` / ``on_dw_bad_get`` /
        #: ``on_dw_double_scrub``); set by the verification subsystem.
        self.observer = observer
        self._grid_vars: dict[tuple[str, int], CCVariable] = {}
        self._reductions: dict[str, float] = {}
        #: Keys removed by :meth:`scrub_named` (for use-after-scrub
        #: diagnostics; scrubbing reclaims the data, not the history).
        self._scrubbed: set[tuple[str, int]] = set()

    # -- grid variables ----------------------------------------------------------
    def put(self, var: CCVariable) -> None:
        """Store a grid variable; a label/patch pair may only be computed once
        per timestep (Uintah's single-assignment rule)."""
        key = (var.label.name, var.patch.patch_id)
        if key in self._grid_vars or key in self._scrubbed:
            if self.observer is not None:
                self.observer.on_dw_double_put(self, key)
            was = "already scrubbed" if key in self._scrubbed else "already computed"
            raise KeyError(
                f"{var.label.name!r} on patch {var.patch.patch_id} {was} "
                f"in DW step {self.step} (variables are single-assignment)"
            )
        self._grid_vars[key] = var

    def get(self, label: VarLabel, patch: Patch) -> CCVariable:
        """Fetch a grid variable.

        Raises :class:`KeyError` with a precise diagnosis when the task
        graph never produced it (read-before-put) or when it was already
        scrubbed after its last counted consumer (use-after-scrub).
        """
        key = (label.name, patch.patch_id)
        var = self._grid_vars.get(key)
        if var is None:
            scrubbed = key in self._scrubbed
            if self.observer is not None:
                self.observer.on_dw_bad_get(self, key, scrubbed)
            if scrubbed:
                raise KeyError(
                    f"{label.name!r} on patch {patch.patch_id} was already scrubbed "
                    f"in DW step {self.step} (rank {self.rank}): use-after-scrub"
                )
            raise KeyError(
                f"{label.name!r} on patch {patch.patch_id} not in DW step {self.step} "
                f"(rank {self.rank})"
            )
        return var

    def exists(self, label: VarLabel, patch: Patch) -> bool:
        """Whether a grid variable is present."""
        return (label.name, patch.patch_id) in self._grid_vars

    def allocate_and_put(self, label: VarLabel, patch: Patch, ghosts: int = 1) -> CCVariable:
        """Create a zeroed variable, register it, return it (Uintah's
        ``allocateAndPut``)."""
        var = CCVariable(label, patch, ghosts)
        self.put(var)
        return var

    def scrub(self, label: VarLabel, patch: Patch) -> bool:
        """Drop a variable whose consumers have all run (memory reclaim).

        Returns whether the variable was actually present.  Delegates to
        :meth:`scrub_named` so both entry points share one removal path
        (the scheduler counts *logical* scrubs on the lifecycle bus,
        identically in real and model mode — not removals here).
        """
        return self.scrub_named(label.name, patch.patch_id)

    def scrub_named(self, label_name: str, patch_id: int) -> bool:
        """Scrub by key — what the scheduler's scrub machinery uses.

        Scrubbing is a once-only operation: scrubbing a key that was
        already scrubbed raises :class:`KeyError` naming the label,
        patch and step (the scheduler's consumer counting guarantees
        exactly one scrub per key — a second one is a runtime bug, not
        an idempotent no-op).  Scrubbing a key that was never present
        returns ``False``.
        """
        key = (label_name, patch_id)
        if key in self._scrubbed:
            if self.observer is not None:
                self.observer.on_dw_double_scrub(self, key)
            raise KeyError(
                f"{label_name!r} on patch {patch_id} already scrubbed "
                f"in DW step {self.step} (rank {self.rank}): double-scrub"
            )
        if self._grid_vars.pop(key, None) is None:
            return False
        self._scrubbed.add(key)
        return True

    def was_scrubbed(self, label_name: str, patch_id: int) -> bool:
        """Whether a key has been scrubbed from this warehouse."""
        return (label_name, patch_id) in self._scrubbed

    # -- reductions -----------------------------------------------------------------
    def put_reduction(self, label: VarLabel, value: float) -> None:
        """Store a reduced scalar (overwrites: reductions are idempotent)."""
        if not label.is_reduction:
            raise TypeError(f"{label.name!r} is not a reduction label")
        self._reductions[label.name] = float(value)

    def get_reduction(self, label: VarLabel) -> float:
        """Fetch a reduced scalar."""
        if not label.is_reduction:
            raise TypeError(f"{label.name!r} is not a reduction label")
        try:
            return self._reductions[label.name]
        except KeyError:
            raise KeyError(f"reduction {label.name!r} not in DW step {self.step}") from None

    def has_reduction(self, label: VarLabel) -> bool:
        """Whether a reduced scalar is present."""
        return label.name in self._reductions

    # -- inventory -------------------------------------------------------------------
    def grid_variables(self) -> _t.Iterator[CCVariable]:
        """Iterate stored grid variables (deterministic order)."""
        for key in sorted(self._grid_vars):
            yield self._grid_vars[key]

    def __len__(self) -> int:
        return len(self._grid_vars) + len(self._reductions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DataWarehouse step={self.step} rank={self.rank} "
            f"{len(self._grid_vars)} grid vars, {len(self._reductions)} reductions>"
        )
