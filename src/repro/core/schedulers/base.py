"""Shared scheduler plumbing: stats, errors, readiness, step context.

:class:`SchedulerCore` is the common trunk of both scheduler families
(:class:`~repro.core.schedulers.scheduler.SunwayScheduler` and
:class:`~repro.core.schedulers.unified.UnifiedHostScheduler`): it owns
the construction-time wiring — cost model, noise stream, selection
policy, fault/resilience hooks, and the task-lifecycle event bus with
its stats/trace/retry subscribers.  Concrete schedulers add a backend
and the per-timestep orchestration; see ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import dataclasses

from repro.core.schedulers.lifecycle import (
    RetryGovernor,
    StatsSubscriber,
    TaskLifecycle,
    TaskState,
    TraceSubscriber,
)
from repro.core.schedulers.selection import make_policy
from repro.core.task import TaskContext
from repro.core.trace import Tracer


class DeadlockError(RuntimeError):
    """The scheduler ran out of runnable work with tasks still pending.

    Indicates a task-graph bug (missing producer, wrong assignment) — the
    runtime refuses to hang silently.
    """


@dataclasses.dataclass
class SchedulerStats:
    """Counters accumulated by one rank's scheduler across a run."""

    tasks_run: int = 0
    kernels_offloaded: int = 0
    kernels_on_mpe: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    local_copies: int = 0
    reductions: int = 0
    #: Simulated seconds the MPE spent blocked with nothing runnable.
    idle_wait: float = 0.0
    #: Simulated seconds the sync mode spent spinning on the flag.
    spin_wait: float = 0.0
    #: Old-DW variables scrubbed after their last consumer (memory reclaim).
    scrubbed: int = 0
    #: Counted kernel flops (perf-counter convention).
    kernel_flops: int = 0
    # -- resilience counters (all zero in a fault-free run) ---------------
    #: Offloaded kernels the completion-timeout watchdog gave up on.
    kernel_timeouts: int = 0
    #: Kernel re-offloads after a timeout or DMA error.
    kernel_retries: int = 0
    #: Kernels executed on the MPE after exhausting re-offload attempts.
    mpe_fallbacks: int = 0
    #: Retransmissions of dropped MPI messages (attributed to the sender).
    mpi_retries: int = 0
    #: Completed kernels slower than the policy's straggler threshold.
    stragglers_detected: int = 0
    #: Whole-rank failures recovered from a checkpoint (recovery runner).
    rank_recoveries: int = 0
    #: Timesteps re-executed because a failure discarded them.
    steps_replayed: int = 0

    def merge(self, other: "SchedulerStats") -> None:
        """Fold another rank's counters into this one."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


class ReadinessTracker:
    """Blocker counting for one timestep's local detailed tasks.

    A task becomes ready when its internal producers have completed,
    every incoming message has been unpacked, and every intra-rank ghost
    copy feeding it has been performed.  ``on_ready`` (optional) fires
    once per task the moment it enters the ready queue — the lifecycle
    layer uses it for the PENDING → READY transition.
    """

    def __init__(self, local_tasks, graph, on_ready=None):
        self.blockers: dict[int, int] = {}
        self.ready: list = []
        self._tasks = {dt.dt_id: dt for dt in local_tasks}
        self._on_ready = on_ready
        for dt in local_tasks:
            n = len(graph.internal_deps[dt.dt_id])
            n += len(graph.recvs_for(dt))
            n += len(graph.copies_for(dt))
            self.blockers[dt.dt_id] = n
            if n == 0:
                self.ready.append(dt)
                if on_ready is not None:
                    on_ready(dt)

    def release(self, dt_id: int) -> None:
        """One blocker of ``dt_id`` resolved; enqueue when count hits zero."""
        if dt_id not in self.blockers:
            return  # consumer lives on another rank
        self.blockers[dt_id] -= 1
        if self.blockers[dt_id] == 0:
            dt = self._tasks[dt_id]
            self.ready.append(dt)
            if self._on_ready is not None:
                self._on_ready(dt)
        elif self.blockers[dt_id] < 0:
            raise RuntimeError(f"blocker count of task {dt_id} went negative")

    def pop_ready(self, predicate, key=None) -> object | None:
        """Remove and return a ready task matching ``predicate``.

        ``key`` (optional) selects among the matches: the highest-scoring
        one is taken (ties keep queue order).  Without it, FIFO.
        """
        ready = self.ready
        if key is None:
            for i, dt in enumerate(ready):
                if predicate(dt):
                    ready.pop(i)
                    return dt
            return None
        matches = [(i, dt) for i, dt in enumerate(ready) if predicate(dt)]
        if not matches:
            return None
        i, dt = max(matches, key=lambda pair: key(pair[1]))
        ready.pop(i)
        return dt

    @property
    def any_ready(self) -> bool:
        """Whether any task is currently runnable."""
        return bool(self.ready)


@dataclasses.dataclass
class StepContext:
    """Everything one timestep's engines share: DWs, tags, readiness.

    Built afresh by ``execute_timestep`` and handed to the comm/offload
    engines and the backend, so no per-step state leaks onto the
    scheduler object itself.
    """

    step: int
    time: float
    dt_value: float
    old_dw: object | None
    new_dw: object
    bootstrap: bool
    local: list
    tracker: ReadinessTracker
    remaining: set
    tag_base: int
    next_tag_base: int
    #: dt_ids whose MPE part already ran (prefetch dedup).
    prepared: set = dataclasses.field(default_factory=set)

    def dw_for(self, which: str):
        if which == "old":
            if self.old_dw is None:
                raise RuntimeError("graph requires old-DW data but there is no old DW")
            return self.old_dw
        return self.new_dw


class SchedulerCore:
    """Construction-time wiring shared by every scheduler implementation."""

    def __init__(
        self,
        sim,
        rank: int,
        graph,
        comm,
        athread,
        cost_model,
        mode: str = "async",
        real: bool = True,
        trace: Tracer | None = None,
        interference_scalar: float = 0.04,
        interference_simd: float = 0.50,
        scrub: bool = True,
        select_policy: str = "fifo",
        noise=None,
        faults=None,
        resilience=None,
        telemetry=None,
        validator=None,
    ):
        self.sim = sim
        self.rank = rank
        self.graph = graph
        self.comm = comm
        self.athread = athread
        self.costs = cost_model
        self.mode = mode
        self.real = real
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self.stats = SchedulerStats()
        self.interference = (
            interference_simd if getattr(cost_model, "simd", False) else interference_scalar
        )
        self._local_patches = [
            p for p in graph.grid.patches() if graph.assignment[p.patch_id] == rank
        ]
        #: Cross-step sends still in flight from previous timesteps.
        self._carryover_sends: list = []
        #: Fault injector and resilience policy (both optional; the
        #: fault-free fast path must stay byte-identical to the seed).
        self.faults = faults
        self.policy = resilience
        #: Scrub old-DW variables once their last consumer has read them.
        self.scrub = scrub
        #: Machine-noise stream (paper Sec. VII-A instabilities); quiet
        #: by default.
        from repro.core.noise import NO_NOISE

        self._noise = (noise if noise is not None else NO_NOISE).for_rank(rank)
        #: Ready-queue ordering strategy for step 3(b)ii "select a ready
        #: offloadable task" — see :mod:`repro.core.schedulers.selection`.
        self.select = make_policy(select_policy, graph, rank)
        self.select_policy = select_policy
        #: The task-lifecycle event bus; stats, tracing and the retry
        #: governor observe the run through it (never hand-threaded).
        #: Inert observers are not subscribed at all — a disabled tracer
        #: or absent resilience policy must not tax every event.
        self.lifecycle = TaskLifecycle(clock=sim)
        self.retry_governor = RetryGovernor(resilience)
        self.lifecycle.subscribe(StatsSubscriber(self.stats))
        if self.trace.enabled:
            self.lifecycle.subscribe(TraceSubscriber(self.trace, rank))
        if resilience is not None:
            self.lifecycle.subscribe(self.retry_governor)
        #: Observability sink (:class:`repro.telemetry.collect.RunTelemetry`);
        #: like the other observers it is only subscribed when present, so
        #: the default run pays nothing for it.
        self.telemetry = telemetry
        if telemetry is not None:
            self.lifecycle.subscribe(telemetry.subscriber_for(rank))
        #: Online schedule validator (:class:`repro.verify.ScheduleValidator`);
        #: a pure observer of the lifecycle bus — off by default and, when
        #: on, provably non-perturbing (it charges no simulated time).
        self.validator = validator
        if validator is not None:
            self.lifecycle.subscribe(
                validator.subscriber_for(rank, graph, cost_model)
            )

    def _mark_ready(self, dt) -> None:
        """ReadinessTracker ``on_ready`` hook: PENDING → READY."""
        self.lifecycle.transition(dt, TaskState.READY)

    def _begin_step(
        self, step: int, time: float, dt_value: float, old_dw, new_dw, bootstrap: bool
    ) -> StepContext:
        """Fault hook, lifecycle reset, and a fresh :class:`StepContext`."""
        graph, rank = self.graph, self.rank
        if self.faults is not None:
            # Whole-rank failure strikes at timestep boundaries; the
            # raised RankFailure propagates through the driver process
            # and aborts Simulator.run for checkpoint recovery.
            self.faults.on_step_begin(rank, step)
        local = graph.local_tasks(rank)
        self.lifecycle.begin_step(local, step=step)
        return StepContext(
            step=step,
            time=time,
            dt_value=dt_value,
            old_dw=old_dw,
            new_dw=new_dw,
            bootstrap=bootstrap,
            local=local,
            tracker=ReadinessTracker(local, graph, on_ready=self._mark_ready),
            remaining={d.dt_id for d in local},
            tag_base=step * graph.num_tags,
            next_tag_base=(step + 1) * graph.num_tags,
        )

    def _ctx(self, patch, st: StepContext) -> TaskContext:
        return TaskContext(
            grid=self.graph.grid,
            patch=patch,
            old_dw=st.old_dw,
            new_dw=st.new_dw,
            time=st.time,
            dt=st.dt_value,
            step=st.step,
            params=getattr(self, "params", {}),
        )
