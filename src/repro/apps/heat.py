"""The 3-D heat equation as a library application component.

Solves ``u_t = alpha * Laplacian(u)`` on the unit box with homogeneous
Dirichlet boundaries, using the same second-order central differences and
forward Euler as the model problem's diffusion term.  The manufactured
exact solution

.. math::

    u(x, y, z, t) = e^{-3 \\pi^2 \\alpha t}
                    \\sin(\\pi x) \\sin(\\pi y) \\sin(\\pi z)

satisfies both the PDE and the boundary conditions exactly, so this
component gets the same end-to-end numerical validation as the Burgers
problem — and proves the runtime carries applications it was not built
around.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.grid import Grid
from repro.core.patch import Region
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

#: 7-point Laplacian + Euler update, no exponentials:
#: 3 axes x (2 add + 1 mul + 1 mul) + 2-add combine + nu mul + update 2.
HEAT_KERNEL_COST = KernelCost(stencil_flops=17, exp_calls=0, bytes_read=8, bytes_written=8)


def heat_exact(grid: Grid, region: Region, t: float, alpha: float) -> np.ndarray:
    """The manufactured solution on a region's cell centres."""
    def axis(a: int) -> np.ndarray:
        d = grid.spacing[a]
        x = grid.domain_low[a] + (
            np.arange(region.low[a], region.high[a], dtype=np.float64) + 0.5
        ) * d
        return np.sin(np.pi * x)

    amp = np.exp(-3.0 * np.pi**2 * alpha * t)
    out = amp * (
        axis(0)[:, None, None] * axis(1)[None, :, None] * axis(2)[None, None, :]
    )
    return np.asfortranarray(out)


@dataclasses.dataclass
class HeatProblem:
    """Heat-equation component: labels, tasks, stability, validation.

    API mirrors :class:`~repro.burgers.component.BurgersProblem` so the
    two components are interchangeable in the controller and harness.
    """

    grid: Grid
    alpha: float = 0.1
    with_reduction: bool = True

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        self.t_label = VarLabel("temperature")
        self.energy_label = VarLabel("thermalEnergy", vartype="reduction")

    # -- actions -----------------------------------------------------------
    def _initialize(self, ctx: TaskContext) -> None:
        var = ctx.new_dw.allocate_and_put(self.t_label, ctx.patch, ghosts=1)
        var.interior[...] = heat_exact(self.grid, ctx.patch.region, ctx.time, self.alpha)

    def _apply_bcs(self, ctx: TaskContext) -> None:
        """Dirichlet walls: ghost cells take the exact (zero-wall) field.

        Filling ghosts with the exact solution sampled at their centres
        keeps the discrete operator second-order at the boundary.
        """
        var = ctx.old_dw.get(self.t_label, ctx.patch)
        for axis, side in self.grid.boundary_faces(ctx.patch):
            region = ctx.patch.ghost_region(axis, side, width=1)
            var.set_region(region, heat_exact(self.grid, region, ctx.time, self.alpha))

    def _diffuse(self, ctx: TaskContext) -> None:
        old = ctx.old_dw.get(self.t_label, ctx.patch)
        new = ctx.new_dw.allocate_and_put(self.t_label, ctx.patch, ghosts=1)
        dx, dy, dz = self.grid.spacing
        u = old.data
        c = u[1:-1, 1:-1, 1:-1]
        lap = (
            (u[:-2, 1:-1, 1:-1] - 2.0 * c + u[2:, 1:-1, 1:-1]) / (dx * dx)
            + (u[1:-1, :-2, 1:-1] - 2.0 * c + u[1:-1, 2:, 1:-1]) / (dy * dy)
            + (u[1:-1, 1:-1, :-2] - 2.0 * c + u[1:-1, 1:-1, 2:]) / (dz * dz)
        )
        new.interior[...] = c + ctx.dt * self.alpha * lap

    def _energy(self, ctx: TaskContext) -> float:
        var = ctx.new_dw.get(self.t_label, ctx.patch)
        cell_volume = 1.0
        for d in self.grid.spacing:
            cell_volume *= d
        return float(var.interior.sum()) * cell_volume

    # -- task wiring ----------------------------------------------------------
    def init_tasks(self) -> list[Task]:
        """The initialization graph."""
        init = Task("heatInit", kind=TaskKind.MPE, action=self._initialize)
        init.computes_(self.t_label)
        return [init]

    def tasks(self) -> list[Task]:
        """The per-timestep graph: diffuse (+ optional energy reduction)."""
        diffuse = Task(
            "heatAdvance",
            kind=TaskKind.CPE_KERNEL,
            action=self._diffuse,
            mpe_action=self._apply_bcs,
            kernel_cost=HEAT_KERNEL_COST,
        )
        diffuse.requires_(self.t_label, dw="old", ghosts=1)
        diffuse.computes_(self.t_label)
        out: list[Task] = [diffuse]
        if self.with_reduction:
            energy = Task(
                "thermalEnergy",
                kind=TaskKind.REDUCTION,
                action=self._energy,
                reduction_op=lambda a, b: a + b,
            )
            energy.requires_(self.t_label, dw="new").computes_(self.energy_label)
            out.append(energy)
        return out

    # -- numerics -----------------------------------------------------------------
    def stable_dt(self, safety: float = 0.5) -> float:
        """Forward-Euler diffusion bound: ``dt <= safety / (2 a sum 1/dx^2)``."""
        return safety / (2.0 * self.alpha * sum(1.0 / (d * d) for d in self.grid.spacing))

    def solution_errors(self, final_dws, t: float) -> dict[str, float]:
        """Linf / L2 error of a finished run against the exact solution."""
        linf = 0.0
        sq = 0.0
        cells = 0
        for dw in final_dws:
            for var in dw.grid_variables():
                if var.label.name != self.t_label.name:
                    continue
                err = np.abs(
                    var.interior - heat_exact(self.grid, var.patch.region, t, self.alpha)
                )
                linf = max(linf, float(err.max()))
                sq += float((err**2).sum())
                cells += var.patch.num_cells
        if cells == 0:
            raise ValueError("no temperature patches in the final warehouses")
        return {"linf": linf, "l2": float(np.sqrt(sq / cells))}
