"""Tests for the SIMD intrinsics emulation and the flop counters."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sunway import simd
from repro.sunway.perfcounters import FlopCounter
from repro.sunway.fastmath import FAST_EXP_FLOPS, IEEE_EXP_FLOPS


# -- SIMD ---------------------------------------------------------------------

def test_vec4_requires_four_lanes():
    with pytest.raises(ValueError):
        simd.Vec4([1.0, 2.0, 3.0])


def test_vec4_copies_input():
    src = np.ones(4)
    v = simd.Vec4(src)
    src[0] = 99
    assert v.lanes[0] == 1.0


def test_simd_set_and_loade():
    v = simd.simd_set(1, 2, 3, 4)
    assert v.lanes.tolist() == [1, 2, 3, 4]
    b = simd.simd_loade(7.5)
    assert b.lanes.tolist() == [7.5] * 4


def test_loadu_storeu_roundtrip():
    row = np.arange(10, dtype=np.float64)
    v = simd.simd_loadu(row, 3)
    assert v.lanes.tolist() == [3, 4, 5, 6]
    simd.simd_storeu(row, 0, v)
    assert row[:4].tolist() == [3, 4, 5, 6]


def test_loadu_bounds_checked():
    row = np.arange(6, dtype=np.float64)
    with pytest.raises(IndexError):
        simd.simd_loadu(row, 3)
    with pytest.raises(IndexError):
        simd.simd_storeu(row, -1, simd.simd_loade(0))
    with pytest.raises(ValueError):
        simd.simd_loadu(np.zeros((2, 4)), 0)


def test_arithmetic_intrinsics():
    a = simd.simd_set(1, 2, 3, 4)
    b = simd.simd_set(10, 20, 30, 40)
    c = simd.simd_loade(1.0)
    assert simd.simd_vadd(a, b).lanes.tolist() == [11, 22, 33, 44]
    assert simd.simd_vsub(b, a).lanes.tolist() == [9, 18, 27, 36]
    assert simd.simd_vmuld(a, b).lanes.tolist() == [10, 40, 90, 160]
    assert simd.simd_vmad(a, b, c).lanes.tolist() == [11, 41, 91, 161]
    assert simd.simd_vdiv(b, a).lanes.tolist() == [10, 10, 10, 10]


@given(st.lists(st.floats(-1e6, 1e6), min_size=4, max_size=4),
       st.lists(st.floats(-1e6, 1e6), min_size=4, max_size=4))
def test_property_vmad_matches_scalar(xs, ys):
    """VMAD lanes equal elementwise a*b+c — vectorized == scalar numerics."""
    a, b = simd.Vec4(xs), simd.Vec4(ys)
    c = simd.simd_loade(0.5)
    out = simd.simd_vmad(a, b, c)
    expect = np.array(xs) * np.array(ys) + 0.5
    assert np.array_equal(out.lanes, expect)


def test_paper_listing_d2udz2_snippet():
    """Replicate Algorithm 2's d2udz2 computation against plain numpy."""
    rng = np.random.default_rng(42)
    u_k = rng.random(8)
    u_km = rng.random(8)
    u_kp = rng.random(8)
    z_dx = 0.25
    i = 2
    v0 = simd.simd_set(-2.0, -2.0, -2.0, -2.0)
    v1 = simd.simd_loadu(u_k, i)
    v2 = simd.simd_loadu(u_km, i)
    v3 = simd.simd_loadu(u_kp, i)
    v0 = simd.simd_vmad(v0, v1, v2)
    v0 = simd.simd_vadd(v0, v3)
    v2 = simd.simd_loade(z_dx * z_dx)
    v_d2udz2 = simd.simd_vmuld(v0, v2)
    expect = (-2 * u_k[i:i+4] + u_km[i:i+4] + u_kp[i:i+4]) * (z_dx * z_dx)
    assert np.allclose(v_d2udz2.lanes, expect, rtol=1e-15)


# -- FlopCounter ----------------------------------------------------------------

def test_counter_basic_accumulation():
    c = FlopCounter()
    c.count(adds=3, muls=2, divs=1, times=10)
    assert c.total == 60
    r = c.report()
    assert (r.adds, r.muls, r.divs) == (30, 20, 10)


def test_div_sqrt_count_as_one():
    """SW26010 counter convention (paper Sec. VII-E)."""
    c = FlopCounter()
    c.count(divs=1, sqrts=1)
    assert c.total == 2


def test_exp_expands_to_library_flops():
    fast = FlopCounter(fast_exp=True)
    fast.count(exps=6)
    assert fast.total == 6 * FAST_EXP_FLOPS
    assert fast.report().exp_calls == 6

    ieee = FlopCounter(fast_exp=False)
    ieee.count(exps=6)
    assert ieee.total == 6 * IEEE_EXP_FLOPS


def test_fma_counts_two():
    c = FlopCounter()
    c.count_fma(times=5)
    assert c.total == 10


def test_exp_share():
    c = FlopCounter()
    c.count(adds=95, exps=6)
    share = c.report().exp_share
    assert share == pytest.approx(216 / 311, abs=0.01)


def test_reset_and_merge():
    a = FlopCounter()
    a.count(adds=5)
    b = FlopCounter()
    b.count(muls=7, exps=1)
    a.merge(b)
    assert a.report().muls == 7
    assert a.report().exp_calls == 1
    a.reset()
    assert a.total == 0


def test_negative_times_rejected():
    with pytest.raises(ValueError):
        FlopCounter().count(adds=1, times=-1)


def test_report_is_snapshot():
    c = FlopCounter()
    c.count(adds=1)
    snap = c.report()
    c.count(adds=1)
    assert snap.adds == 1
    assert c.report().adds == 2
