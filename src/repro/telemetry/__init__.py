"""Runtime-wide observability: metrics, per-timestep ledger, analysis.

The paper's whole argument (Sec. VII-C) is that the asynchronous MPE+CPE
scheduler wins by *overlap* — so the runtime must be able to answer
"where did the time go, per timestep, per lane, per task?" on any run,
not just inside the test suite.  This package is that answer:

* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` of counters,
  gauges and histograms (p50/p95/max), fed by lifecycle-bus subscribers
  plus explicit hooks in the comm/offload engines, the DMA cost model
  and the simulated fabric;
* :mod:`repro.telemetry.collect` — :class:`RunTelemetry`, one run's
  collection state: the registry plus per-``(rank, step)`` counter
  buckets attributed by the per-rank :class:`TelemetrySubscriber`;
* :mod:`repro.telemetry.ledger` — :class:`RunLedger`, the per-timestep
  JSONL record (wall/sim time, lane busy seconds, overlap fraction,
  comm-wait, metric deltas) with a provenance manifest, plus
  :func:`compare_ledgers` for regression gating;
* :mod:`repro.telemetry.analyzer` — folds :class:`~repro.core.trace.
  Tracer` spans and the ledger into per-rank time accounting
  (kernel / pack / unpack / MPI-wait / idle) and a per-timestep
  critical-path estimate, rendered as text tables.

Everything is opt-in: a run without a :class:`RunTelemetry` attached
executes the exact same code path as before this package existed (the
golden-equivalence oracles pin that), and the only cost of the disabled
state is an ``is not None`` test at each hook site.

See ``docs/OBSERVABILITY.md`` for the metric catalog and ledger schema.
"""

from repro.telemetry.analyzer import RunAnalysis, analyze
from repro.telemetry.collect import RunTelemetry, TelemetrySubscriber
from repro.telemetry.ledger import LedgerStep, RunLedger, build_ledger, compare_ledgers
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "TelemetrySubscriber",
    "RunLedger",
    "LedgerStep",
    "build_ledger",
    "compare_ledgers",
    "RunAnalysis",
    "analyze",
]
