"""Regenerate every table of the paper's evaluation.

Each ``table*_data`` function returns structured rows; each ``table*``
function renders them as aligned text.  Benchmarks call the data
functions (and print the rendered form); EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from repro.burgers.flops import table1_row
from repro.harness import metrics
from repro.harness.problems import PROBLEMS
from repro.harness.reportfmt import mem, pct, render_table
from repro.harness.runner import run_experiment
from repro.harness.variants import VARIANTS, variant_by_name
from repro.sunway.config import table2_rows


# -- Table I: FLOPs per cell ------------------------------------------------------

def table1_data(problems=PROBLEMS) -> list[dict]:
    """Counted flops per cell for each problem's grid."""
    out = []
    for p in problems:
        row = table1_row(p.grid())
        row["problem"] = p.name
        out.append(row)
    return out


def table1(problems=PROBLEMS) -> str:
    rows = [
        (
            r["problem"],
            r["total_cells"],
            r["total_flops"],
            f"{r['flops_per_cell']:.0f}",
        )
        for r in table1_data(problems)
    ]
    return render_table(
        "Table I: FLOP per cell for the model problem",
        ["Problem Size", "Total Cells", "Total FLOPs", "FLOPs per Cell"],
        rows,
    )


# -- Table II: system parameters -----------------------------------------------------

def table2() -> str:
    return render_table(
        "Table II: Major system parameters of Sunway TaihuLight",
        ["Item", "Description"],
        table2_rows(),
    )


# -- Table III: problem settings ------------------------------------------------------

def table3_data(problems=PROBLEMS) -> list[dict]:
    return [
        {
            "problem": p.name,
            "patch_size": p.name,
            "grid_size": "x".join(str(e) for e in p.grid_extent),
            "memory_bytes": p.memory_bytes,
            "min_cgs": p.min_cgs,
        }
        for p in problems
    ]


def table3(problems=PROBLEMS) -> str:
    rows = [
        (
            r["problem"],
            r["patch_size"],
            r["grid_size"],
            mem(r["memory_bytes"]),
            f"{r['min_cgs']}CG" + ("s" if r["min_cgs"] > 1 else ""),
        )
        for r in table3_data(problems)
    ]
    return render_table(
        "Table III: Problem settings in the evaluations",
        ["Problem", "Patch Size", "Grid Size", "Mem", "Min"],
        rows,
    )


# -- Table IV: variants -----------------------------------------------------------------

def table4() -> str:
    rows = [
        (v.name, v.scheduler_label, "Yes" if v.tiling else "No", "Yes" if v.simd else "No")
        for v in VARIANTS.values()
    ]
    return render_table(
        "Table IV: Experimental variants in the evaluations",
        ["Variant", "Scheduler Mode", "Tiling", "Vectorization"],
        rows,
    )


# -- Table V: strong-scaling efficiency ------------------------------------------------------

#: Table V's column order (paper names the simd columns without 'acc_').
TABLE5_VARIANTS = ("acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async")


def table5_data(problems=PROBLEMS, nsteps=10) -> list[dict]:
    """Strong-scaling efficiency from each problem's min CGs to 128 CGs."""
    out = []
    for p in problems:
        row: dict = {"problem": p.name, "min_cgs": p.min_cgs}
        for vname in TABLE5_VARIANTS:
            v = variant_by_name(vname)
            base = run_experiment(p, v, p.min_cgs, nsteps=nsteps)
            top = run_experiment(p, v, 128, nsteps=nsteps)
            row[vname] = metrics.scaling_efficiency(base, top)
        out.append(row)
    return out


def table5(problems=PROBLEMS, nsteps=10) -> str:
    rows = [
        (
            r["problem"] + ("*" if r["min_cgs"] > 1 else ""),
            pct(r["acc.sync"]),
            pct(r["acc.async"]),
            pct(r["acc_simd.sync"]),
            pct(r["acc_simd.async"]),
        )
        for r in table5_data(problems, nsteps)
    ]
    return render_table(
        "Table V: Strong scaling efficiency of different problems",
        ["Problem", "acc.sync", "acc.async", "simd.sync", "simd.async"],
        rows,
    )


# -- Tables VI / VII: async-over-sync improvement ---------------------------------------------

def _improvement_data(sync_name: str, async_name: str, problems, nsteps) -> list[dict]:
    sync_v, async_v = variant_by_name(sync_name), variant_by_name(async_name)
    out = []
    for p in problems:
        row: dict = {"problem": p.name}
        for cgs in p.cg_counts():
            s = run_experiment(p, sync_v, cgs, nsteps=nsteps)
            a = run_experiment(p, async_v, cgs, nsteps=nsteps)
            row[cgs] = metrics.async_improvement(s, a)
        out.append(row)
    return out


def table6_data(problems=PROBLEMS, nsteps=10) -> list[dict]:
    """Async improvement, non-vectorized kernel (Table VI)."""
    return _improvement_data("acc.sync", "acc.async", problems, nsteps)


def table7_data(problems=PROBLEMS, nsteps=10) -> list[dict]:
    """Async improvement, vectorized kernel (Table VII)."""
    return _improvement_data("acc_simd.sync", "acc_simd.async", problems, nsteps)


def _improvement_table(title: str, data: list[dict]) -> str:
    from repro.harness.problems import CG_COUNTS

    rows = []
    for r in data:
        rows.append(
            (r["problem"],)
            + tuple(pct(r[c]) if c in r else "-" for c in CG_COUNTS)
        )
    return render_table(title, ("Problem",) + tuple(str(c) for c in CG_COUNTS), rows)


def table6(problems=PROBLEMS, nsteps=10) -> str:
    return _improvement_table(
        "Table VI: Performance improvement of the asynchronous mode "
        "for the non-vectorized kernel",
        table6_data(problems, nsteps),
    )


def table7(problems=PROBLEMS, nsteps=10) -> str:
    return _improvement_table(
        "Table VII: Performance improvement of the asynchronous mode "
        "for the vectorized kernel",
        table7_data(problems, nsteps),
    )
