"""Tests for the Unified Scheduler model (the paper's Sec. II motivation)."""

import functools

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.schedulers.unified import UnifiedHostScheduler
from repro.harness import calibration
from repro.harness.problems import problem_by_name


def run_unified(num_threads, num_ranks=2, nsteps=3, extent=(16, 16, 16),
                layout=(2, 2, 2), real=True, trace=False):
    grid = Grid(extent=extent, layout=layout)
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(),
        num_ranks=num_ranks, real=real, trace_enabled=trace,
        scheduler_factory=functools.partial(UnifiedHostScheduler, num_threads=num_threads),
    )
    return ctl.run(nsteps=nsteps, dt=prob.stable_dt())


def collect(res):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in res.final_dws
        for v in dw.grid_variables()
    }


def test_results_match_sunway_scheduler_bitwise():
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=2, mode="async", real=True
    )
    ref = collect(ctl.run(nsteps=3, dt=prob.stable_dt()))
    for threads in (1, 4):
        got = collect(run_unified(threads))
        for pid in ref:
            assert np.array_equal(ref[pid], got[pid]), (threads, pid)


def test_more_threads_is_faster():
    t1 = run_unified(1).time_per_step
    t2 = run_unified(2).time_per_step
    t8 = run_unified(8).time_per_step
    assert t2 < t1
    assert t8 <= t2


def test_thread_lanes_overlap_with_multiple_threads():
    res = run_unified(4, trace=True)
    lanes = {s.lane for s in res.trace.spans}
    assert {"thread0", "thread1"} <= lanes
    # two worker lanes busy at the same time
    assert res.trace.overlap_time(0, "thread0", "thread1") > 0


def test_single_thread_never_overlaps_itself():
    res = run_unified(1, trace=True)
    lanes = {s.lane for s in res.trace.spans}
    assert lanes <= {"thread0"}


def test_reductions_complete():
    res = run_unified(2)
    grid_prob = BurgersProblem(Grid(extent=(16, 16, 16), layout=(2, 2, 2)))
    assert res.final_dws[0].has_reduction(grid_prob.norm_label)
    assert res.stats.reductions > 0


def test_validation():
    with pytest.raises(ValueError):
        run_unified(0)


def test_paper_motivation_sunway_async_beats_unified_single_thread():
    """The quantitative form of Sec. II's challenge: on Sunway, the
    Unified Scheduler is limited to the MPE's single thread and cannot
    use the CPEs; the paper's async MPE+CPE scheduler wins by the
    offload factor (2.7-6.0x)."""
    problem = problem_by_name("16x16x512")
    grid = problem.grid()
    prob = BurgersProblem(grid)

    unified = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=8, real=False,
        cost_model=calibration.cost_model(),
        fabric_config=calibration.FABRIC,
        scheduler_factory=functools.partial(UnifiedHostScheduler, num_threads=1),
    ).run(nsteps=2, dt=1e-5)

    sunway = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=8, real=False,
        mode="async",
        cost_model=calibration.cost_model(),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    ).run(nsteps=2, dt=1e-5)

    boost = unified.time_per_step / sunway.time_per_step
    assert 2.0 < boost < 8.0
