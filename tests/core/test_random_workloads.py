"""Property tests: randomized multi-stage workloads through the full stack.

Hypothesis generates task pipelines (random stage counts, ghost widths,
optional reductions) via the shared strategies module
(``tests/strategies.py``), random rank counts, balancer strategies and
scheduler modes; every combination must complete without deadlock and —
in real mode — produce results identical to a single-rank reference.
This is the out-of-order-execution safety net for the whole runtime.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.loadbalancer import LoadBalancer

from tests.strategies import SCHEDULER_MODES, build_pipeline, pipelines, run_workload


@settings(deadline=None, max_examples=25)
@given(
    pipeline=pipelines(),
    num_ranks=st.sampled_from([2, 4, 8]),
    mode=st.sampled_from(SCHEDULER_MODES),
    balancer=st.sampled_from(LoadBalancer.STRATEGIES),
)
def test_property_random_pipeline_matches_serial_reference(
    pipeline, num_ranks, mode, balancer
):
    tasks, init, labels = build_pipeline(**pipeline)
    ref, ref_res = run_workload(tasks, init, 1, "async", "block", nsteps=2)
    # fresh task objects for the second controller (tasks are stateless,
    # but build again to rule out shared-state artefacts)
    tasks2, init2, _ = build_pipeline(**pipeline)
    got, got_res = run_workload(tasks2, init2, num_ranks, mode, balancer, nsteps=2)
    assert set(got) == set(ref)
    for key in ref:
        assert np.array_equal(ref[key], got[key]), key
    # kernel executions are distribution-invariant (reduction detailed
    # tasks are per-rank, so total tasks_run is not)
    got_kernels = got_res.stats.kernels_offloaded + got_res.stats.kernels_on_mpe
    ref_kernels = ref_res.stats.kernels_offloaded + ref_res.stats.kernels_on_mpe
    assert got_kernels == ref_kernels


@settings(deadline=None, max_examples=10)
@given(
    num_stages=st.integers(1, 3),
    num_ranks=st.sampled_from([2, 4]),
)
def test_property_async_never_slower_than_sync(num_stages, num_ranks):
    tasks, init, _ = build_pipeline(num_stages, [1], with_reduction=True)
    _, sync_res = run_workload(tasks, init, num_ranks, "sync", "sfc", nsteps=2)
    tasks2, init2, _ = build_pipeline(num_stages, [1], with_reduction=True)
    _, async_res = run_workload(tasks2, init2, num_ranks, "async", "sfc", nsteps=2)
    assert async_res.time_per_step <= sync_res.time_per_step * 1.001
