"""Reproduction of "A Preliminary Port and Evaluation of the Uintah AMT
Runtime on Sunway TaihuLight" (IPDPS Workshops 2018).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.des` — discrete-event simulation kernel
* :mod:`repro.sunway` — SW26010 architectural model
* :mod:`repro.simmpi` — simulated MPI fabric
* :mod:`repro.core` — the Uintah-style AMT runtime (grid, tasks,
  data warehouses, schedulers, controller)
* :mod:`repro.burgers` — the model fluid-flow problem
* :mod:`repro.harness` — the paper's evaluation, regenerated
* :mod:`repro.io` — UDA-style checkpoint archives

Quick start::

    from repro import Grid, SimulationController, BurgersProblem

    grid = Grid(extent=(32, 32, 32), layout=(2, 2, 2))
    problem = BurgersProblem(grid)
    controller = SimulationController(
        grid, problem.tasks(), problem.init_tasks(),
        num_ranks=4, mode="async", real=True,
    )
    result = controller.run(nsteps=10, dt=problem.stable_dt())
"""

from repro.burgers.component import BurgersProblem
from repro.core.controller import RunResult, SimulationController
from repro.core.grid import Grid
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel

__version__ = "1.0.0"

__all__ = [
    "BurgersProblem",
    "Grid",
    "RunResult",
    "SimulationController",
    "Task",
    "TaskContext",
    "TaskKind",
    "VarLabel",
    "__version__",
]
