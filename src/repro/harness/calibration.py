"""Calibrated cost-model constants and their provenance.

The reproduction does not run on Sunway hardware; every effective rate
below is calibrated against numbers the paper itself reports, so the
simulated evaluation reproduces the paper's *shapes* (who wins, by what
rough factor, where crossovers fall), not its absolute seconds.

Provenance of each constant:

``CPE_SCALAR_FLOPS`` (70 Mflop/s per CPE)
    Sec. VII-E: the best configuration reaches 1.17% of peak; the SIMD
    kernel at ~2.2x over scalar then implies a scalar cluster rate of
    ~4.5 Gflop/s per CG = 70 Mflop/s per CPE (0.6% of a CPE's 11.6
    Gflop/s peak — scalar, cacheless, software exponentials).

``SIMD_STENCIL_SPEEDUP`` / ``SIMD_EXP_SPEEDUP`` (3.6 / 2.0)
    The 4-wide SIMD pipelines speed the stencil arithmetic close to
    ideal, but the software exponentials vectorize poorly; blended over
    the 95/216 flop split this yields the compute-only ~2.3x that,
    after DMA and per-task overheads, lands in the paper's observed
    1.3-2.2x (Sec. VII-D).

``MPE_FLOPS_CACHED`` / ``MPE_FLOPS_STREAMING`` (1.05 / 0.62 Gflop/s)
    Chosen so the host.sync -> acc offload boost spans the paper's
    2.7-6.0x across patch sizes (Sec. VII-D): small patches keep the
    3-plane stencil working set in the MPE's L2 and run faster.

``MPE_PACK_S_PER_CELL`` (200 ns) / ``MPE_LOCAL_COPY_S_PER_CELL`` (70 ns)
    Back-computed from Tables V-VII: per-patch MPE-side ghost handling
    must be ~20% of the scalar kernel time (fully serial in sync mode,
    hidden in async mode) to reproduce both the async improvement
    (~13.5% average, up to ~39%) and the strong-scaling efficiencies
    (31.7%..97.7%).  Uintah data-warehouse operations per ghost cell
    are genuinely heavyweight on the slow MPE.

``INTERFERENCE_SCALAR`` / ``INTERFERENCE_SIMD`` (0.04 / 0.50)
    MPE bulk traffic overlapped under the async scheduler contends with
    CPE DMA on the shared memory controller.  The scalar kernel is
    compute-bound and barely notices; the vectorized kernel is close to
    memory-bound and loses most of the overlap benefit — reproducing
    the paper's "smaller improvements ... with the vectorized kernel"
    (best 39.3% non-vectorized vs 22.8% vectorized).

``DMA_*``
    SW26010 aggregate per-CG DMA bandwidth is ~28 GB/s for packed
    transfers; strided tile rows pay per-descriptor costs (the paper's
    "pack the tiles" future work).

``FABRIC_*``
    Table II: 16 GB/s bidirectional P2P, ~1 us latency, plus an MPI
    software overhead per message typical of Sunway's MPI.
"""

from __future__ import annotations

from repro.core.costs import SchedulerCosts, SunwayCostModel
from repro.simmpi.network import FabricConfig
from repro.sunway.config import CoreGroupConfig
from repro.sunway.corerates import CoreRates
from repro.sunway.dma import DMAEngine

# -- CPE cluster -----------------------------------------------------------------
CPE_SCALAR_FLOPS = 70e6
SIMD_STENCIL_SPEEDUP = 3.6
SIMD_EXP_SPEEDUP = 2.0

# -- MPE ---------------------------------------------------------------------------
MPE_FLOPS_CACHED = 1.05e9
MPE_FLOPS_STREAMING = 0.62e9
MPE_PACK_S_PER_CELL = 200e-9
MPE_LOCAL_COPY_S_PER_CELL = 70e-9

# -- async-mode memory interference --------------------------------------------------
INTERFERENCE_SCALAR = 0.04
INTERFERENCE_SIMD = 0.50

# -- DMA -----------------------------------------------------------------------------
DMA_PER_CPE_BANDWIDTH = 28e9 / 64
DMA_STARTUP = 1.2e-6
DMA_CHUNK_PENALTY = 0.25

# -- network --------------------------------------------------------------------------
FABRIC = FabricConfig(bandwidth=16e9, latency=1e-6, sw_overhead=6e-6)

# -- offload ---------------------------------------------------------------------------
LAUNCH_LATENCY = 15e-6


def default_rates() -> CoreRates:
    """The calibrated :class:`~repro.sunway.corerates.CoreRates`."""
    return CoreRates(
        cpe_scalar_flops=CPE_SCALAR_FLOPS,
        simd_stencil_speedup=SIMD_STENCIL_SPEEDUP,
        simd_exp_speedup=SIMD_EXP_SPEEDUP,
        mpe_flops_cached=MPE_FLOPS_CACHED,
        mpe_flops_streaming=MPE_FLOPS_STREAMING,
        mpe_pack_s_per_cell=MPE_PACK_S_PER_CELL,
        mpe_local_copy_s_per_cell=MPE_LOCAL_COPY_S_PER_CELL,
    )


def default_dma() -> DMAEngine:
    """The calibrated DMA engine."""
    return DMAEngine(
        bandwidth=DMA_PER_CPE_BANDWIDTH,
        startup=DMA_STARTUP,
        chunk_penalty=DMA_CHUNK_PENALTY,
    )


def cost_model(
    simd: bool = False,
    fast_exp: bool = True,
    async_dma: bool = False,
    cpe_groups: int = 1,
    pack_tiles: bool = False,
) -> SunwayCostModel:
    """A fully calibrated cost model for one experimental variant."""
    return SunwayCostModel(
        rates=default_rates(),
        dma=default_dma(),
        sched=SchedulerCosts(),
        core_group=CoreGroupConfig(),
        simd=simd,
        fast_exp=fast_exp,
        async_dma=async_dma,
        cpe_groups=cpe_groups,
        pack_tiles=pack_tiles,
        launch_latency=LAUNCH_LATENCY,
    )


def scheduler_kwargs() -> dict:
    """Interference constants handed to the scheduler."""
    return {
        "interference_scalar": INTERFERENCE_SCALAR,
        "interference_simd": INTERFERENCE_SIMD,
    }
