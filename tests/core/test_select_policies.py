"""Tests for ready-queue selection policies (out-of-order task choice)."""

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid

POLICIES = ("fifo", "max_dependents", "most_messages", "critical_path")


def run(policy, num_ranks=4, nsteps=3):
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=num_ranks, real=True,
        scheduler_kwargs={"select_policy": policy},
    )
    res = ctl.run(nsteps=nsteps, dt=prob.stable_dt())
    field = {
        v.patch.patch_id: v.interior.copy()
        for dw in res.final_dws
        for v in dw.grid_variables()
    }
    return field, res


def test_all_policies_complete_with_identical_results():
    """Out-of-order selection must never change the physics."""
    ref, ref_res = run("fifo")
    for policy in POLICIES[1:]:
        got, got_res = run(policy)
        for pid in ref:
            assert np.array_equal(ref[pid], got[pid]), (policy, pid)
        assert got_res.stats.kernels_offloaded == ref_res.stats.kernels_offloaded


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="select_policy"):
        run("fastest_first")


def test_policies_can_change_execution_order():
    """most_messages prioritizes boundary patches: traces differ from
    fifo even though the results don't."""
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    orders = {}
    for policy in ("fifo", "most_messages"):
        prob = BurgersProblem(grid)
        ctl = SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=2, real=True,
            trace_enabled=True,
            scheduler_kwargs={"select_policy": policy},
        )
        ctl.run(nsteps=1, dt=prob.stable_dt())
        orders[policy] = [
            s.name for s in ctl.trace.spans_for(0, "cpe") if "timeAdvance" in s.name
        ]
    assert len(orders["fifo"]) == len(orders["most_messages"]) > 0
    # with 2 SFC ranks every patch has remote faces of different sizes, so
    # the message-driven order differs from queue order... unless they
    # coincide by construction; assert only when scores differ:
    if orders["fifo"] != orders["most_messages"]:
        assert sorted(orders["fifo"]) == sorted(orders["most_messages"])


def test_critical_path_dispatches_deep_chain_first():
    """A kernel heading a 3-deep chain beats a shallow one under
    critical_path, even when the shallow one is first in queue order."""
    from repro.core.task import Task, TaskKind
    from repro.core.varlabel import VarLabel
    from repro.sunway.corerates import KernelCost

    def kernel(name, reads, dw, writes):
        t = Task(
            name, kind=TaskKind.CPE_KERNEL,
            kernel_cost=KernelCost(stencil_flops=1, exp_calls=0),
        )
        t.requires_(VarLabel(reads), dw=dw, ghosts=0).computes_(VarLabel(writes))
        return t

    def tasks():
        # registration order puts the shallow task first: fifo runs it
        # first, critical_path defers it behind the chain head
        return [
            kernel("shallow", "u", "old", "d"),
            kernel("chain1", "u", "old", "a"),
            kernel("chain2", "a", "new", "b"),
            kernel("chain3", "b", "new", "c"),
        ]

    grid = Grid(extent=(8, 8, 8), layout=(1, 1, 1))
    orders = {}
    for policy in ("fifo", "critical_path"):
        prob = BurgersProblem(grid)  # init graph produces the initial u
        ctl = SimulationController(
            grid, tasks(), prob.init_tasks(), num_ranks=1, real=False,
            mode="async", trace_enabled=True,
            scheduler_kwargs={"select_policy": policy},
        )
        ctl.run(nsteps=1, dt=1e-4)
        names = {"shallow", "chain1", "chain2", "chain3"}
        orders[policy] = [
            s.name.split("@")[0]
            for s in ctl.trace.spans_for(0, "cpe")
            if s.name.split("@")[0] in names
        ]
    assert orders["fifo"] == ["shallow", "chain1", "chain2", "chain3"]
    # depths: chain1=3, chain2=2, shallow=chain3=1 — the final tie keeps
    # queue order, so shallow slots in right before chain3
    assert orders["critical_path"] == ["chain1", "chain2", "shallow", "chain3"]
