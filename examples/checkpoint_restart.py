#!/usr/bin/env python
"""Checkpoint a run to a UDA-style archive and restart it bit-exactly.

Uintah persists state in UDA archives and restarts from any archived
timestep; this example does the same on the reproduction — including a
restart onto a *different* number of core-groups, which redistributes
the patches without changing the physics.

Usage::

    python examples/checkpoint_restart.py [archive-dir]
"""

import sys
import tempfile

import numpy as np

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.io.uda import load_checkpoint, restart_tasks, save_checkpoint


def collect(result):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in result.final_dws
        for v in dw.grid_variables()
    }


def main() -> None:
    root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(suffix=".uda")
    grid = Grid(extent=(24, 24, 24), layout=(2, 2, 2))
    problem = BurgersProblem(grid)
    dt = problem.stable_dt()

    # phase 1: 5 steps on 2 CGs, then checkpoint
    first = SimulationController(
        grid, problem.tasks(), problem.init_tasks(), num_ranks=2, real=True
    ).run(nsteps=5, dt=dt)
    step_dir = save_checkpoint(root, grid, first.final_dws, step=5, time=first.sim_time)
    print(f"checkpointed step 5 to {step_dir}")

    # phase 2: restart from the archive on 4 CGs, 5 more steps
    ck = load_checkpoint(root)
    problem2 = BurgersProblem(ck.grid)
    resumed = SimulationController(
        ck.grid, problem2.tasks(), restart_tasks(ck, problem2.u_label),
        num_ranks=4, real=True,
    ).run(nsteps=5, dt=dt, start_step=ck.step)

    # reference: 10 uninterrupted steps
    straight = SimulationController(
        grid, problem.tasks(), problem.init_tasks(), num_ranks=2, real=True
    ).run(nsteps=10, dt=dt)

    a, b = collect(resumed), collect(straight)
    identical = all(np.array_equal(a[p], b[p]) for p in b)
    print(f"restart (2 CGs -> 4 CGs) vs uninterrupted run: "
          f"{'bit-identical' if identical else 'MISMATCH'}")
    assert identical
    print(f"archive: {root}")


if __name__ == "__main__":
    main()
