"""Property test: network faults never perturb the physics.

Message drops, duplicates, delays and brownouts only move completion
times — channel pairing is fixed when the receive is matched, unpacks
write disjoint ghost regions, and reductions combine in rank order.  So
whatever the injector deals to the interconnect, the final fields must be
bit-identical to the fault-free run.  Hypothesis searches the fault-
configuration space (via the shared ``tests/strategies.py`` generators)
for a counterexample.
"""

import numpy as np
from hypothesis import given, settings

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.faults import FaultInjector, ResiliencePolicy

from tests.strategies import fault_plans

GRID = Grid(extent=(12, 12, 12), layout=(2, 1, 1))
_PROBLEM = BurgersProblem(GRID)
_DT = _PROBLEM.stable_dt()


def run(faults=None):
    problem = BurgersProblem(GRID)
    controller = SimulationController(
        GRID,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=2,
        real=True,
        faults=faults,
        resilience=ResiliencePolicy() if faults is not None else None,
    )
    return controller.run(nsteps=3, dt=_DT)


def fields(result):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in result.final_dws
        for v in dw.grid_variables()
    }


_REFERENCE = fields(run())


@settings(deadline=None, max_examples=15)
@given(cfg=fault_plans())
def test_message_faults_keep_physics_bit_identical(cfg):
    got = fields(run(faults=FaultInjector(cfg)))
    assert set(got) == set(_REFERENCE)
    for pid, ref in _REFERENCE.items():
        assert np.array_equal(got[pid], ref), f"patch {pid} diverged"
