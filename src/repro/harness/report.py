"""One-shot evaluation report: every table and figure in a single text.

Used by ``python -m repro report`` and by anyone wanting the whole
Sec. VII evaluation regenerated into a file::

    from repro.harness.report import full_report
    print(full_report(nsteps=10))

The heavy sweeps share the runner's memoization, so the report costs the
same as its most expensive table.
"""

from __future__ import annotations

import time as _time

from repro.harness import figures, tables


#: The report's sections in paper order: (title, callable(nsteps) -> str).
SECTIONS = (
    ("Table I", lambda nsteps: tables.table1()),
    ("Table II", lambda nsteps: tables.table2()),
    ("Table III", lambda nsteps: tables.table3()),
    ("Table IV", lambda nsteps: tables.table4()),
    ("Figure 5", lambda nsteps: figures.fig5(nsteps=nsteps)),
    ("Table V", lambda nsteps: tables.table5(nsteps=nsteps)),
    ("Table VI", lambda nsteps: tables.table6(nsteps=nsteps)),
    ("Table VII", lambda nsteps: tables.table7(nsteps=nsteps)),
    ("Figures 6-8", lambda nsteps: figures.fig678(nsteps=nsteps)),
    ("Figure 9", lambda nsteps: figures.fig9(nsteps=nsteps)),
    ("Figure 10", lambda nsteps: figures.fig10(nsteps=nsteps)),
)


def full_report(nsteps: int = 10, progress=None) -> str:
    """Regenerate the complete evaluation.

    ``progress`` (optional) is called with a status line before each
    section — the CLI passes ``print``.
    """
    banner = (
        "Reproduction of 'A Preliminary Port and Evaluation of the Uintah "
        "AMT Runtime\non Sunway TaihuLight' (IPDPS Workshops 2018) — full "
        f"evaluation, {nsteps} timesteps/case.\n"
        "All times are simulated Sunway time from the calibrated model; "
        "see EXPERIMENTS.md."
    )
    parts = [banner]
    for title, fn in SECTIONS:
        if progress is not None:
            progress(f"[report] generating {title} ...")
        t0 = _time.perf_counter()
        body = fn(nsteps)
        elapsed = _time.perf_counter() - t0
        if progress is not None:
            progress(f"[report] {title} done in {elapsed:.1f}s")
        parts.append(body)
    return "\n\n\n".join(parts) + "\n"
