"""Smoke tests: every shipped example runs to completion.

Examples double as executable documentation; these tests keep them from
rotting.  The slower studies are exercised with a stricter timeout and
marked so `-m "not slow"` can skip them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_example_files_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "scheduler_comparison.py",
        "heat_equation.py",
        "tile_explorer.py",
        "strong_scaling_mini.py",
        "unified_vs_sunway.py",
        "checkpoint_restart.py",
        "fault_tolerance.py",
    } <= present


def test_quickstart():
    out = run_example("quickstart.py")
    assert "error vs exact" in out
    assert "timeline" in out


def test_heat_equation():
    out = run_example("heat_equation.py")
    assert "OK: heat spread" in out


def test_tile_explorer():
    out = run_example("tile_explorer.py")
    assert "16x16x8" in out and "41.3 KB" in out


def test_checkpoint_restart():
    out = run_example("checkpoint_restart.py")
    assert "bit-identical" in out


def test_fault_tolerance():
    out = run_example("fault_tolerance.py")
    assert "Resilience report" in out
    assert "recovered on 3 of 4 CGs" in out
    assert "bit-identical" in out


@pytest.mark.slow
def test_scheduler_comparison():
    out = run_example("scheduler_comparison.py")
    assert "async improvement over sync" in out


@pytest.mark.slow
def test_strong_scaling_mini():
    out = run_example("strong_scaling_mini.py")
    assert "Strong scaling" in out


@pytest.mark.slow
def test_unified_vs_sunway():
    out = run_example("unified_vs_sunway.py")
    assert "Unified, 1 thread" in out


def test_performance_analysis(tmp_path):
    import json

    out = tmp_path / "trace.json"
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "performance_analysis.py"), str(out)],
        capture_output=True, text=True, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "activity breakdown" in proc.stdout
    assert "hidden under kernels" in proc.stdout
    events = json.loads(out.read_text())
    assert any(e.get("ph") == "X" for e in events)
