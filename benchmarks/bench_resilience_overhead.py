"""Resilience machinery overhead when no faults fire.

The fault-injection hooks live on hot paths — every offload, every
matched message, every timestep boundary.  The design contract is that a
run with the machinery *attached but silent* (injector with all
probabilities zero, policy armed) costs **< 2 % extra host time** over a
run with no injector at all, and produces bit-identical simulated time.
This benchmark measures both and publishes the numbers.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.faults import FaultConfig, FaultInjector, ResiliencePolicy
from repro.harness import calibration
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import pct, render_table, seconds


def run_case(with_hooks: bool):
    problem = problem_by_name("32x32x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid)
    kwargs = {}
    if with_hooks:
        kwargs["faults"] = FaultInjector(FaultConfig())
        kwargs["resilience"] = ResiliencePolicy()
    ctl = SimulationController(
        grid, burgers.tasks(), burgers.init_tasks(),
        num_ranks=8, mode="async", real=False,
        cost_model=calibration.cost_model(),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
        **kwargs,
    )
    t0 = time.perf_counter()
    res = ctl.run(nsteps=5, dt=1e-5)
    host = time.perf_counter() - t0
    return res, host


def measure(repeats: int = 5):
    """Best-of-N host times for the silent-hooks and no-hooks runs."""
    base = hooked = float("inf")
    base_res = hook_res = None
    for _ in range(repeats):
        r, t = run_case(with_hooks=False)
        if t < base:
            base, base_res = t, r
        r, t = run_case(with_hooks=True)
        if t < hooked:
            hooked, hook_res = t, r
    return base, base_res, hooked, hook_res


def test_bench_resilience_overhead(benchmark, publish):
    base, base_res, hooked, hook_res = run_once(benchmark, measure)
    overhead = hooked / base - 1.0
    rows = [
        ("host time, no injector (best of 5)", seconds(base)),
        ("host time, silent injector + policy", seconds(hooked)),
        ("host overhead", pct(overhead)),
        ("target", "< 2%"),
        ("simulated time, no injector", seconds(base_res.time_per_step)),
        ("simulated time, silent injector", seconds(hook_res.time_per_step)),
        (
            "simulated times identical",
            "yes" if base_res.time_per_step == hook_res.time_per_step else "NO",
        ),
    ]
    publish(
        "resilience_overhead",
        render_table("Resilience hooks: fault-free overhead", ["Metric", "Value"], rows),
    )
    # bit-identical simulated schedule is a hard invariant; the host-time
    # target is asserted loosely (CI machines are noisy)
    assert base_res.time_per_step == hook_res.time_per_step
    assert overhead < 0.10
