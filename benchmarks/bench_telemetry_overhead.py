"""Host-side cost of the telemetry subsystem, off and on.

Two contracts protect the seed's performance and determinism:

1. **Disabled telemetry is free.**  The default run (``telemetry=None``)
   executes the pre-telemetry code path plus a handful of ``is not
   None`` branches; its wall-clock must stay within 2 % of the committed
   pre-telemetry scheduler baseline
   (``results/scheduler_overhead_baseline.json``).  Like the scheduler
   benchmark, the wall-clock gate only fires when the stored machine
   fingerprint matches; the numbers are published either way.

2. **Enabled telemetry never perturbs the DES.**  A run with a
   :class:`~repro.telemetry.collect.RunTelemetry` attached must charge
   *exactly* the same simulated seconds as the uninstrumented run — the
   observer reads the simulation, it does not appear in it.  This is a
   hard equality assert on every machine.

The enabled-path host cost is measured and published too (no gate: it
pays for histograms and buckets by design — the contract is only that
you don't pay when you didn't ask).
"""

from __future__ import annotations

import json
import time

from repro.harness.reportfmt import pct, render_table, seconds
from repro.telemetry import RunTelemetry

from benchmarks.bench_scheduler_overhead import (
    BASELINE_PATH,
    NSTEPS,
    _fingerprint,
    measure,
)

REPEATS = 5
DISABLED_TOLERANCE = 0.02


def measure_enabled(repeats: int = REPEATS) -> dict:
    """Best-of-N wall-clock of the DES loop with telemetry attached."""
    best = float("inf")
    sim_time = None
    for _ in range(repeats):
        # telemetry must be threaded at construction time (the lifecycle
        # subscribers are wired in the scheduler constructors)
        ctl = _build_with_telemetry(RunTelemetry())
        t0 = time.perf_counter()
        res = ctl.run(nsteps=NSTEPS, dt=1e-5)
        best = min(best, time.perf_counter() - t0)
        sim_time = res.total_time
    return {
        "host_seconds": best,
        "nsteps": NSTEPS,
        "simulated_seconds": sim_time,
        "fingerprint": _fingerprint(),
    }


def _build_with_telemetry(tele: RunTelemetry):
    from repro.burgers.component import BurgersProblem
    from repro.core.controller import SimulationController
    from repro.harness import calibration
    from repro.harness.problems import problem_by_name

    problem = problem_by_name("16x16x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid)
    return SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=8,
        mode="async",
        real=False,
        cost_model=calibration.cost_model(),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
        telemetry=tele,
    )


def test_telemetry_overhead(publish, publish_json):
    disabled = measure(repeats=REPEATS)
    enabled = measure_enabled()

    # Contract 2 first — it must hold everywhere, fingerprints be damned:
    # the instrumented schedule is the uninstrumented schedule.
    assert enabled["simulated_seconds"] == disabled["simulated_seconds"], (
        "telemetry perturbed the DES: "
        f"{enabled['simulated_seconds']!r} != {disabled['simulated_seconds']!r}"
    )

    enabled_ratio = enabled["host_seconds"] / disabled["host_seconds"]
    rows = [
        ("telemetry off (best of %d)" % REPEATS, seconds(disabled["host_seconds"])),
        ("telemetry on (best of %d)" % REPEATS, seconds(enabled["host_seconds"])),
        ("enabled/disabled host ratio", f"{enabled_ratio:.3f}x"),
        ("simulated seconds (both)", seconds(disabled["simulated_seconds"])),
    ]
    baseline = None
    disabled_ratio = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        disabled_ratio = disabled["host_seconds"] / baseline["host_seconds"]
        rows.append(("pre-telemetry baseline", seconds(baseline["host_seconds"])))
        rows.append(
            (
                "disabled vs baseline",
                f"{disabled_ratio:.3f}x (gate {pct(DISABLED_TOLERANCE, 0)})",
            )
        )
    publish(
        "telemetry_overhead",
        render_table("Telemetry overhead", ["Metric", "Value"], rows),
    )
    publish_json(
        "telemetry_overhead",
        {
            "disabled": disabled,
            "enabled": enabled,
            "enabled_ratio": enabled_ratio,
            "baseline": baseline,
            "disabled_ratio": disabled_ratio,
            "disabled_tolerance": DISABLED_TOLERANCE,
        },
    )

    assert baseline is not None, "no committed baseline; run bench_scheduler_overhead --rebaseline"
    # identical schedule to the pre-telemetry code: the hooks must not
    # have changed what the DES charges
    assert disabled["simulated_seconds"] == baseline["simulated_seconds"]
    if baseline["fingerprint"] != _fingerprint():
        import pytest

        pytest.skip("baseline from a different machine; wall-clock not comparable")
    assert disabled["host_seconds"] <= baseline["host_seconds"] * (1 + DISABLED_TOLERANCE), (
        f"disabled telemetry costs {disabled['host_seconds']:.3f}s vs baseline "
        f"{baseline['host_seconds']:.3f}s — more than {DISABLED_TOLERANCE:.0%} overhead"
    )
