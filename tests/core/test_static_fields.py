"""Tests for static-field forwarding across the data-warehouse swap.

A coefficient field computed once at initialization and *required* (but
never recomputed) by every timestep is a standard Uintah pattern; the
controller forwards such variables from old to new warehouses.
"""

import numpy as np

from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

U = VarLabel("u")
KAPPA = VarLabel("kappa")  # the static coefficient field
COST = KernelCost(stencil_flops=5, exp_calls=0)


def build_problem():
    def init_action(ctx: TaskContext) -> None:
        u = ctx.new_dw.allocate_and_put(U, ctx.patch, ghosts=1)
        u.interior[...] = 1.0
        kappa = ctx.new_dw.allocate_and_put(KAPPA, ctx.patch, ghosts=1)
        kappa.interior[...] = 0.5 + 0.1 * ctx.patch.patch_id

    def advance(ctx: TaskContext) -> None:
        u_old = ctx.old_dw.get(U, ctx.patch)
        kappa = ctx.old_dw.get(KAPPA, ctx.patch)
        u_new = ctx.new_dw.allocate_and_put(U, ctx.patch, ghosts=1)
        u_new.interior[...] = (
            u_old.data[1:-1, 1:-1, 1:-1] * kappa.data[1:-1, 1:-1, 1:-1]
        )

    init = Task("init", kind=TaskKind.MPE, action=init_action)
    init.computes_(U).computes_(KAPPA)
    adv = Task("advance", kind=TaskKind.CPE_KERNEL, action=advance, kernel_cost=COST)
    adv.requires_(U, dw="old", ghosts=0)
    adv.requires_(KAPPA, dw="old", ghosts=0)  # static: nobody recomputes it
    adv.computes_(U)
    return [adv], [init]


def run(num_ranks=2, nsteps=3, mode="async"):
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    tasks, init = build_problem()
    ctl = SimulationController(
        grid, tasks, init, num_ranks=num_ranks, mode=mode, real=True
    )
    assert ctl._static_labels == ["kappa"]
    return ctl.run(nsteps=nsteps, dt=1e-3)


def test_static_field_survives_many_steps():
    res = run(nsteps=4)
    for dw in res.final_dws:
        for var in dw.grid_variables():
            if var.label.name == "u":
                k = 0.5 + 0.1 * var.patch.patch_id
                assert np.allclose(var.interior, k**4)
            if var.label.name == "kappa":
                assert np.allclose(
                    var.interior, 0.5 + 0.1 * var.patch.patch_id
                )


def test_static_field_distribution_invariance():
    ref = {
        (v.label.name, v.patch.patch_id): v.interior.copy()
        for dw in run(1).final_dws
        for v in dw.grid_variables()
    }
    for num_ranks, mode in [(4, "sync"), (2, "mpe_only")]:
        got = {
            (v.label.name, v.patch.patch_id): v.interior.copy()
            for dw in run(num_ranks, mode=mode).final_dws
            for v in dw.grid_variables()
        }
        for key in ref:
            assert np.array_equal(ref[key], got[key]), key


def test_no_static_labels_for_burgers():
    from repro.burgers import BurgersProblem

    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    ctl = SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=1, real=True
    )
    assert ctl._static_labels == []
