"""Extension study: weak scaling (not in the paper).

The paper evaluates strong scaling only (fixed 128-patch grids).  This
extension holds the per-CG workload constant — 4 patches of 32x32x512
per core-group — and grows the grid with the machine, the complementary
question a user sizing a production run asks.  Expected shape on the
model: near-flat time per step (efficiency stays high), since per-rank
compute, MPE ghost work and neighbour counts are all constant; only the
allreduce's log(P) term and pipeline skew grow.
"""

import pytest

from benchmarks.conftest import run_once
from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.harness import calibration
from repro.harness.reportfmt import pct, render_table, seconds

#: Patches per rank (2x2x1 blob of 32x32x512 patches).
PATCH = (32, 32, 512)


def run_weak(num_cgs: int, nsteps: int = 5) -> float:
    # grid grows with the machine: layout 2*sx x 2*sy x 1 blobs
    sx = 1
    sy = num_cgs
    # factor num_cgs into a near-square xy rank grid
    for f in range(int(num_cgs**0.5), 0, -1):
        if num_cgs % f == 0:
            sx, sy = f, num_cgs // f
            break
    layout = (2 * sx, 2 * sy, 1)
    extent = tuple(p * l for p, l in zip(PATCH, layout))
    grid = Grid(extent=extent, layout=layout)
    burgers = BurgersProblem(grid)
    controller = SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=num_cgs,
        mode="async",
        real=False,
        cost_model=calibration.cost_model(simd=True),
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    )
    return controller.run(nsteps=nsteps, dt=1e-5).time_per_step


def sweep():
    return {cgs: run_weak(cgs) for cgs in (1, 2, 4, 8, 16, 32, 64)}


@pytest.mark.benchmark(group="weak-scaling")
def test_extension_weak_scaling(benchmark, publish):
    data = run_once(benchmark, sweep)
    base = data[1]
    rows = [
        (cgs, seconds(t), pct(base / t))
        for cgs, t in data.items()
    ]
    publish(
        "extension_weakscaling",
        render_table(
            "Extension: weak scaling, 4x 32x32x512 patches per CG, "
            "acc_simd.async",
            ["CGs", "Time/step", "Weak efficiency"],
            rows,
        ),
    )

    # weak efficiency stays high out to 64 CGs
    for cgs, t in data.items():
        assert base / t > 0.60, (cgs, base / t)
    # and decays (or stays flat) monotonically-ish: 64 CGs is the worst
    assert data[64] == max(data.values())
