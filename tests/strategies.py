"""Shared Hypothesis strategies and workload builders for the test suite.

One home for the generators the property tests draw from, so the suites
(``tests/core``, ``tests/simmpi``, ``tests/faults``, ``tests/verify``)
compose the same vocabulary instead of each re-rolling its own:

* :func:`grids` / :func:`patch_layouts` — meshes with valid patch
  decompositions;
* :func:`pipelines` — random multi-stage stencil workloads (stage
  count, ghost pattern, optional reduction), built by
  :func:`build_pipeline`;
* :func:`fault_plans` — seeded :class:`~repro.faults.FaultConfig`
  instances (message-level by default, kernel faults opt-in);
* :func:`comm_ops` — random send/recv programs for the MPI fabric.

The module also hosts the concrete builders (:func:`build_pipeline`,
:func:`run_workload`) so scenario tests can construct the same workloads
deterministically without Hypothesis.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel
from repro.faults import FaultConfig
from repro.sunway.corerates import KernelCost

#: Flat stencil cost used by every generated pipeline stage.
PIPELINE_COST = KernelCost(stencil_flops=20, exp_calls=0)

SCHEDULER_MODES = ("async", "sync", "mpe_only")


# ---------------------------------------------------------------- grids
def patch_layouts(max_per_axis: int = 2):
    """Patch decompositions: one or two patches per axis by default."""
    axis = st.integers(1, max_per_axis)
    return st.tuples(axis, axis, axis)


@st.composite
def grids(draw, min_cells: int = 4, max_cells: int = 16, max_per_axis: int = 2):
    """A :class:`Grid` whose extent divides evenly into its layout."""
    layout = draw(patch_layouts(max_per_axis))
    extent = tuple(
        draw(
            st.integers(min_cells, max_cells).map(lambda n, k=k: n - n % k or k)
        )
        for k in layout
    )
    return Grid(extent=extent, layout=layout)


# ---------------------------------------------------------------- pipelines
def build_pipeline(num_stages: int, ghost_pattern: list[int], with_reduction: bool):
    """A circular chain u0 -> u1 -> ... -> u0 of stencil-ish stages.

    The last stage writes u0 again so the next timestep's old-DW
    requirement is satisfied — the same closure property every real
    Uintah timestep graph has.  Returns ``(tasks, init_tasks, labels)``.
    """
    labels = [VarLabel(f"u{i}") for i in range(num_stages)]
    labels.append(labels[0])  # circular: stage n-1 recomputes u0

    def make_action(src: VarLabel, dst: VarLabel, ghosts: int, stage: int):
        def action(ctx: TaskContext) -> None:
            prev_dw = ctx.old_dw if stage == 0 else ctx.new_dw
            old = prev_dw.get(src, ctx.patch)
            new = ctx.new_dw.allocate_and_put(dst, ctx.patch, ghosts=1)
            u = old.data
            if ghosts:
                # average with the -x neighbour: exercises halo data
                new.interior[...] = 0.5 * (u[1:-1, 1:-1, 1:-1] + u[:-2, 1:-1, 1:-1])
            else:
                new.interior[...] = u[1:-1, 1:-1, 1:-1] * 1.03125 + float(stage)
        return action

    def make_bc(src: VarLabel, stage: int):
        def bc(ctx: TaskContext) -> None:
            dw = ctx.old_dw if stage == 0 else ctx.new_dw
            var = dw.get(src, ctx.patch)
            for axis, side in ctx.grid.boundary_faces(ctx.patch):
                var.region_view(ctx.patch.ghost_region(axis, side))[...] = 0.25
        return bc

    tasks = []
    for stage in range(num_stages):
        src, dst = labels[stage], labels[stage + 1]
        ghosts = ghost_pattern[stage % len(ghost_pattern)]
        task = Task(
            f"stage{stage}",
            kind=TaskKind.CPE_KERNEL,
            action=make_action(src, dst, ghosts, stage),
            mpe_action=make_bc(src, stage) if ghosts else None,
            kernel_cost=PIPELINE_COST,
        )
        task.requires_(src, dw="old" if stage == 0 else "new", ghosts=ghosts)
        task.computes_(dst)
        tasks.append(task)

    if with_reduction:
        norm = VarLabel("norm", vartype="reduction")
        red = Task(
            "norm",
            kind=TaskKind.REDUCTION,
            action=lambda ctx: float(ctx.new_dw.get(labels[-1], ctx.patch).interior.sum()),
            reduction_op=lambda a, b: a + b,
        )
        red.requires_(labels[-1], dw="new").computes_(norm)
        tasks.append(red)

    def init_action(ctx: TaskContext) -> None:
        var = ctx.new_dw.allocate_and_put(labels[0], ctx.patch, ghosts=1)
        lo = ctx.patch.low
        var.interior[...] = (
            np.arange(var.interior.size, dtype=np.float64).reshape(var.interior.shape)
            * 1e-3
            + lo[0] + 2 * lo[1] + 3 * lo[2]
        )

    init = Task("init", kind=TaskKind.MPE, action=init_action)
    init.computes_(labels[0])
    return tasks, [init], labels


def run_workload(
    tasks,
    init,
    num_ranks,
    mode,
    balancer,
    nsteps,
    extent=(8, 8, 8),
    layout=(2, 2, 2),
    **controller_kwargs,
):
    """Run a generated pipeline; return ``(fields, RunResult)``."""
    grid = Grid(extent=extent, layout=layout)
    ctl = SimulationController(
        grid, tasks, init, num_ranks=num_ranks, mode=mode,
        balancer=balancer, real=True, **controller_kwargs,
    )
    res = ctl.run(nsteps=nsteps, dt=1e-3)
    out = {}
    for dw in res.final_dws:
        for var in dw.grid_variables():
            out[(var.label.name, var.patch.patch_id)] = var.interior.copy()
    return out, res


@st.composite
def pipelines(draw, max_stages: int = 3):
    """Parameters for :func:`build_pipeline` as a dict."""
    return {
        "num_stages": draw(st.integers(1, max_stages)),
        "ghost_pattern": draw(st.lists(st.integers(0, 1), min_size=1, max_size=3)),
        "with_reduction": draw(st.booleans()),
    }


# ---------------------------------------------------------------- faults
@st.composite
def fault_plans(
    draw,
    max_drop: float = 0.4,
    max_dup: float = 0.3,
    max_delay: float = 0.3,
    kernel_faults: bool = False,
):
    """A seeded :class:`FaultConfig` (message faults; kernels opt-in)."""
    kwargs = dict(
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        msg_drop_prob=draw(st.floats(min_value=0.0, max_value=max_drop)),
        msg_dup_prob=draw(st.floats(min_value=0.0, max_value=max_dup)),
        msg_delay_prob=draw(st.floats(min_value=0.0, max_value=max_delay)),
    )
    if kernel_faults:
        kwargs.update(
            kernel_slowdown_prob=draw(st.floats(0.0, 0.2)),
            kernel_stuck_prob=draw(st.floats(0.0, 0.1)),
            dma_error_prob=draw(st.floats(0.0, 0.1)),
        )
    return FaultConfig(**kwargs)


# ---------------------------------------------------------------- comm ops
def comm_ops(num_ranks: int = 3, max_tag: int = 2, max_ops: int = 40):
    """Random send/recv programs for the simulated MPI fabric.

    Each op is ``(kind, src, dst, tag, nbytes)`` with kind in
    {"send", "recv"}; nbytes applies to sends only.
    """
    r = st.integers(0, num_ranks - 1)
    return st.lists(
        st.tuples(
            st.sampled_from(["send", "recv"]),
            r,
            r,
            st.integers(0, max_tag),
            st.integers(0, 100_000),
        ),
        max_size=max_ops,
    )
