"""Tests for the athread offload runtime and completion flags."""

import pytest

from repro.des import Simulator
from repro.sunway.athread import AthreadRuntime, CompletionFlag


def test_flag_faaw_semantics():
    sim = Simulator()
    flag = CompletionFlag(sim)
    assert flag.value == 0
    assert flag.faaw() == 0  # returns old value
    assert flag.value == 1
    assert flag.faaw(3) == 1
    assert flag.value == 4
    flag.clear()
    assert flag.value == 0


def test_flag_reached_event():
    sim = Simulator()
    flag = CompletionFlag(sim)

    def proc(sim, flag):
        val = yield flag.reached(2)
        return (val, sim.now)

    p = sim.process(proc(sim, flag))

    def bumper(sim, flag):
        yield sim.timeout(1)
        flag.faaw()
        yield sim.timeout(1)
        flag.faaw()

    sim.process(bumper(sim, flag))
    sim.run()
    assert p.value == (2, 2.0)


def test_flag_reached_already_satisfied():
    sim = Simulator()
    flag = CompletionFlag(sim, initial=5)
    ev = flag.reached(3)
    assert ev.triggered


def test_spawn_completes_after_launch_plus_duration():
    sim = Simulator()
    rt = AthreadRuntime(sim, launch_latency=1e-5)
    handle = rt.spawn(duration=1e-3, name="k0")
    assert not handle.done
    sim.run(until=handle.event)
    assert handle.done
    assert sim.now == pytest.approx(1e-3 + 1e-5)
    assert handle.flag.value == 1


def test_spawn_while_busy_raises():
    sim = Simulator()
    rt = AthreadRuntime(sim)
    rt.spawn(duration=1.0)
    with pytest.raises(RuntimeError, match="busy"):
        rt.spawn(duration=1.0)
    sim.run()
    # after completion, group is free again
    rt.spawn(duration=1.0)
    sim.run()
    assert rt.spawn_count == 2


def test_on_complete_runs_at_completion_time():
    sim = Simulator()
    rt = AthreadRuntime(sim, launch_latency=0.0)
    seen = []
    rt.spawn(duration=2.0, on_complete=lambda: seen.append(sim.now))
    assert seen == []  # not yet
    sim.run()
    assert seen == [2.0]


def test_cpe_grouping_extension():
    sim = Simulator()
    rt = AthreadRuntime(sim, num_groups=4)
    assert rt.cpes_per_group == 16
    # groups are independent engines
    h0 = rt.spawn(duration=1.0, group=0)
    h1 = rt.spawn(duration=2.0, group=1)
    with pytest.raises(RuntimeError):
        rt.spawn(duration=1.0, group=0)
    sim.run()
    assert h0.done and h1.done


def test_grouping_must_divide_cpes():
    sim = Simulator()
    with pytest.raises(ValueError):
        AthreadRuntime(sim, num_groups=3)
    with pytest.raises(ValueError):
        AthreadRuntime(sim, num_groups=0)


def test_unknown_group_rejected():
    sim = Simulator()
    rt = AthreadRuntime(sim, num_groups=2)
    with pytest.raises(ValueError):
        rt.spawn(duration=1.0, group=5)


def test_negative_duration_rejected():
    sim = Simulator()
    rt = AthreadRuntime(sim)
    with pytest.raises(ValueError):
        rt.spawn(duration=-1.0)
    with pytest.raises(ValueError):
        AthreadRuntime(sim, launch_latency=-1e-6)


def test_shared_flag_counts_multiple_kernels():
    """The scheduler clears one flag and reuses it across offloads."""
    sim = Simulator()
    rt = AthreadRuntime(sim, num_groups=2, launch_latency=0.0)
    flag = CompletionFlag(sim)
    rt.spawn(duration=1.0, group=0, flag=flag)
    rt.spawn(duration=2.0, group=1, flag=flag)
    sim.run()
    assert flag.value == 2


def test_payload_carried_on_handle():
    sim = Simulator()
    rt = AthreadRuntime(sim)
    marker = object()
    h = rt.spawn(duration=0.5, payload=marker)
    sim.run()
    assert h.payload is marker
    assert h.event.value is h
