"""The Sunway-specific task scheduler (paper Sec. V).

One rank's scheduler drives one timestep of the compiled task graph as a
DES process, implementing the MPE task scheduler of Sec. V-C: post
receives (3a), send locally-owned old-DW ghost slabs, then loop retiring
completed kernels, dispatching ready work onto the execution backend and
interleaving MPI tests, ghost copies, unpacks and reductions (3b-3d).

This module is only the *orchestrator*; the machinery lives in layered
engines (see ``docs/ARCHITECTURE.md`` for the full picture):

* :mod:`~repro.core.schedulers.lifecycle` — the task state machine and
  event bus that stats, tracing and resilience subscribe to;
* :mod:`~repro.core.schedulers.commengine` — recv posting, ghost
  pack/send/unpack, local copies, reductions, scrub accounting;
* :mod:`~repro.core.schedulers.offload` — CPE flight tracking, the
  watchdog/retry/MPE-fallback recovery ladder, and the
  memory-interference debt model of Sec. VII-C;
* :mod:`~repro.core.schedulers.selection` — ready-queue ordering
  strategies (``fifo`` / ``max_dependents`` / ``most_messages`` /
  ``critical_path``);
* :mod:`~repro.core.schedulers.backends` — where kernels execute.

The paper's modes (Sec. V-C last paragraph) map one-to-one onto
backends, resolved once at construction — the only place a mode string
is interpreted:

* ``async``  — non-blocking :class:`CPEBackend`; MPE work overlaps the
  kernel and is charged interference debt on retirement.
* ``sync``   — blocking :class:`CPEBackend`; the MPE spins on the
  completion flag, nothing overlaps, debt is structurally zero.
* ``mpe_only`` — :class:`MPEBackend`; kernels run on the management
  core.
"""

from __future__ import annotations

import typing as _t

from repro.core.datawarehouse import DataWarehouse
from repro.core.schedulers.backends import CPEBackend, MPEBackend
from repro.core.schedulers.base import DeadlockError, SchedulerCore, StepContext
from repro.core.schedulers.commengine import CommEngine
from repro.core.schedulers.lifecycle import TaskState
from repro.core.schedulers.offload import InterferenceModel, OffloadEngine
from repro.core.task import DetailedTask, TaskKind

MODES = ("async", "sync", "mpe_only")

_BACKENDS = {
    "async": lambda: CPEBackend(blocking=False),
    "sync": lambda: CPEBackend(blocking=True),
    "mpe_only": MPEBackend,
}


def _is_mpe_kind(d: DetailedTask) -> bool:
    return d.task.kind is TaskKind.MPE


def _is_reduction(d: DetailedTask) -> bool:
    return d.task.kind is TaskKind.REDUCTION


class SunwayScheduler(SchedulerCore):
    """Executes one rank's share of a task graph, timestep by timestep."""

    def __init__(self, *args, **kwargs):
        mode = kwargs.get("mode", args[6] if len(args) > 6 else "async")
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        super().__init__(*args, **kwargs)
        #: The watchdog only arms when a kernel can actually hang —
        #: timeout events per wait iteration are not free.
        self._watchdog = (
            self.policy is not None and self.faults is not None and self.faults.can_hang
        )
        #: Shared-memory-controller interference debt (persists across
        #: steps; structurally idle outside async mode).
        self.interference_model = InterferenceModel(self.interference)
        #: Kernel execution strategy — the only mode-string resolution.
        self.backend = _BACKENDS[mode]()

    # ------------------------------------------------------------------ helpers
    def _mpe(self, name: str, cost: float) -> _t.Generator:
        """Charge MPE time and trace it.

        While a kernel is in flight (async mode), MPE bulk work competes
        with CPE DMA for the shared memory controller: the busy time
        feeds the :class:`InterferenceModel`'s debt pool.  Spans here are
        traced directly (not via lifecycle events): this is the hottest
        path in the DES loop and carries no task-state information.
        """
        cost = self._noise.mpe(cost)
        t0 = self.sim.now
        yield self.sim.timeout(cost)
        im = self.interference_model
        if im.kernel_inflight:
            im.overlap_busy += cost
        self.trace.record(self.rank, "mpe", name, t0, self.sim.now)

    def run_mpe_part(self, st: StepContext, dt: DetailedTask) -> _t.Generator:
        """Run a task's serial MPE preparation part once (step 3b iii)."""
        cost = self.costs.mpe_part_time(dt.task, dt.patch, self.graph.grid)
        if cost > 0:
            if self.real and dt.task.mpe_action is not None:
                dt.task.mpe_action(self._ctx(dt.patch, st))
            yield from self._mpe(f"mpe-part:{dt.name}", cost)
        st.prepared.add(dt.dt_id)

    def kernel_action(self, st: StepContext, dt: DetailedTask):
        """The task's real numeric action bound to this step's context."""
        if not self.real or dt.task.action is None:
            return None
        ctx = self._ctx(dt.patch, st)
        return lambda: dt.task.action(ctx)

    def finish_task(self, st: StepContext, comm: CommEngine, dt: DetailedTask) -> None:
        """Retire a completed task: publish effects, release dependents."""
        self.lifecycle.retire(dt)
        st.remaining.discard(dt.dt_id)
        comm.flush_stash(dt)
        for spec in self.graph.sends_after(dt):
            comm.queue_send(spec)
        for spec in self.graph.copies_after(dt):
            comm.queue_copy(spec)
        for dep in self.graph.dependents_of(dt):
            st.tracker.release(dep.dt_id)
        if dt.patch is not None:
            for dep in dt.task.requires:
                if dep.dw == "old" and not dep.label.is_reduction:
                    comm.consume_old(dep.label.name, dt.patch.patch_id)

    def _run_mpe_task(self, st, comm, nxt: DetailedTask) -> _t.Generator:
        """(3d) small MPE-kind task: select, prepare, execute, finish."""
        self.lifecycle.transition(nxt, TaskState.DISPATCHED)
        yield from self._mpe("task-select", self.costs.sched.task_select)
        if nxt.dt_id not in st.prepared:
            yield from self.run_mpe_part(st, nxt)
        self.lifecycle.transition(nxt, TaskState.RUNNING)
        action = self.kernel_action(st, nxt)
        if action is not None:
            action()
        yield from self._mpe(f"mpe-task:{nxt.name}", self.costs.mpe_task_time(nxt.task, nxt.patch))
        self.finish_task(st, comm, nxt)

    def _idle_wait(self, st, comm, offload) -> _t.Generator:
        """Nothing runnable: block on the next interesting event."""
        events = offload.wait_events()
        events.extend(comm.wait_events())
        # a stuck kernel's event never fires — wake at the nearest
        # watchdog deadline instead of sleeping forever
        deadline = offload.deadline_event()
        if deadline is not None:
            events.append(deadline)
        if not events:
            raise DeadlockError(
                f"rank {self.rank} step {st.step}: {len(st.remaining)} tasks stuck, "
                f"no events to wait on (task-graph bug?)"
            )
        t0 = self.sim.now
        yield self.sim.any_of(events)
        self.lifecycle.emit("idle", seconds=self.sim.now - t0)

    # ------------------------------------------------------------------ timestep
    def execute_timestep(
        self,
        step: int,
        time: float,
        dt_value: float,
        old_dw: DataWarehouse | None,
        new_dw: DataWarehouse,
        bootstrap: bool = False,
    ) -> _t.Generator:
        """DES process: run every local detailed task of one timestep.

        ``bootstrap`` marks the first timestep after initialization: the
        old-DW ghost slabs were produced by the init graph, so their
        cross-step messages are sent at step start instead of having been
        posted by the previous timestep.
        """
        st = self._begin_step(step, time, dt_value, old_dw, new_dw, bootstrap)
        comm = CommEngine(self, st)
        offload = OffloadEngine(self, st, comm)
        backend = self.backend

        yield from comm.post_recvs()
        comm.queue_startup()
        # prune cross-step sends that completed during earlier steps
        self._carryover_sends = [r for r in self._carryover_sends if not r.complete]

        # the plain-function guards in front of each `yield from` keep the
        # hot loop from building a delegate generator per engine per
        # iteration when there is nothing to do (the monolith's inlined
        # blocks had that property for free)
        tracker = st.tracker
        telemetry = self.telemetry
        while st.remaining or comm.work:
            progressed = False
            if telemetry is not None:
                telemetry.on_loop_sample(
                    len(tracker.ready), len(offload.inflight), len(comm.work)
                )

            # (3c) test MPI: harvest completed receives
            harvested = comm.harvest_recvs()
            if harvested is not None:
                yield from comm.unpack_harvested(harvested)
                progressed = True
            # completed allreduces -> finalize reduction tasks
            if comm.pending_reductions and (yield from comm.finish_reductions()):
                progressed = True
            if offload.inflight:
                # (3b) completion flag set: retire finished offloads
                if offload.any_done() and (yield from offload.retire_completed()):
                    progressed = True
                # watchdog: abort offload slots whose completion flag
                # never came (hung CPE); armed only when kernels can hang
                if self._watchdog and (yield from offload.watchdog()):
                    progressed = True
            # dispatch ready kernels onto the execution backend
            if tracker.ready and len(offload.inflight) < offload.num_groups:
                if (yield from backend.run_kernels(self, st, comm, offload)):
                    progressed = True

            # (3d) other MPE tasks: small kernels and reductions
            if tracker.ready:
                nxt = tracker.pop_ready(_is_mpe_kind)
                if nxt is not None:
                    yield from self._run_mpe_task(st, comm, nxt)
                    progressed = True
                nxt = tracker.pop_ready(_is_reduction)
                if nxt is not None:
                    yield from comm.start_reduction(nxt)
                    progressed = True

            # one queued MPE work item (copies, packs, unpacks)
            if comm.work:
                kind, payload, cost = comm.work.popleft()
                yield from self._mpe(kind, cost)
                comm.apply(kind, payload)
                progressed = True
            elif backend.overlaps and offload.inflight and tracker.ready:
                # idle MPE during a kernel: pre-process the MPE part of
                # the next ready kernel so it launches instantly (step 3d
                # "small kernels").
                cand = offload.prefetch_candidate()
                if cand is not None:
                    yield from self.run_mpe_part(st, cand)
                    progressed = True

            if progressed:
                continue
            yield from self._idle_wait(st, comm, offload)

        # drain outgoing sends before declaring the timestep done
        yield from comm.drain_sends()
