"""Unit tests for the invariant catalog and the validator's audit hooks."""

import types

import pytest

from repro.core.datawarehouse import DataWarehouse
from repro.core.grid import Grid
from repro.core.schedulers.lifecycle import LifecycleEvent, TaskState
from repro.core.varlabel import VarLabel
from repro.telemetry import RunTelemetry
from repro.verify import CATALOG, ScheduleValidator, VerificationError, Violation


# ---------------------------------------------------------------- catalog
def test_catalog_is_keyed_by_identifier():
    assert len(CATALOG) == 14
    for ident, inv in CATALOG.items():
        assert inv.ident == ident
        assert inv.family in {"lifecycle", "flag", "dw", "ldm"}
        assert inv.statement


def test_violation_rejects_unknown_invariant():
    with pytest.raises(ValueError, match="unknown invariant"):
        Violation("not-a-thing", rank=0, step=0, task=None, t=0.0, detail="")


def test_violation_round_trips_and_renders():
    v = Violation(
        "ldm-overflow", rank=1, step=3, task="advect", t=2.5, detail="70000 B"
    )
    assert v.family == "ldm"
    d = v.to_dict()
    assert d["invariant"] == "ldm-overflow" and d["family"] == "ldm"
    rendered = v.render()
    assert "[ldm-overflow]" in rendered
    assert "task=advect" in rendered
    assert "70000 B" in rendered


# ---------------------------------------------------------------- rank mirror
def _empty_graph():
    return types.SimpleNamespace(
        internal_deps={},
        recvs_for=lambda dt: [],
        copies_for=lambda dt: [],
    )


def test_event_for_unregistered_task_is_unknown_task():
    v = ScheduleValidator()
    rv = v.subscriber_for(0, _empty_graph(), costs=None)
    rv(LifecycleEvent("step-begin", None, None, 0.0, {"tasks": [], "step": 0}))
    ghost = types.SimpleNamespace(dt_id=999, name="ghost", patch=None)
    rv(LifecycleEvent("transition", ghost, TaskState.READY, 1.0, {}))
    assert [x.invariant for x in v.violations] == ["unknown-task"]
    assert v.first_violation.task == "ghost"


def test_strict_mode_raises_at_first_violation():
    v = ScheduleValidator(strict=True)
    rv = v.subscriber_for(0, _empty_graph(), costs=None)
    rv(LifecycleEvent("step-begin", None, None, 0.0, {"tasks": [], "step": 0}))
    ghost = types.SimpleNamespace(dt_id=1, name="ghost", patch=None)
    with pytest.raises(VerificationError, match="unknown-task"):
        rv(LifecycleEvent("transition", ghost, TaskState.READY, 0.0, {}))


def test_report_counts_per_invariant():
    v = ScheduleValidator()
    rv = v.subscriber_for(0, _empty_graph(), costs=None)
    rv(LifecycleEvent("step-begin", None, None, 0.0, {"tasks": [], "step": 0}))
    for i in range(3):
        ghost = types.SimpleNamespace(dt_id=100 + i, name=f"g{i}", patch=None)
        rv(LifecycleEvent("transition", ghost, TaskState.READY, 0.0, {}))
    report = v.report()
    assert report["ok"] is False
    assert report["num_violations"] == 3
    assert report["per_invariant"] == {"unknown-task": 3}
    assert len(report["violations"]) == 3


def test_violations_increment_telemetry_counters():
    telemetry = RunTelemetry()
    v = ScheduleValidator(telemetry=telemetry)
    rv = v.subscriber_for(0, _empty_graph(), costs=None)
    rv(LifecycleEvent("step-begin", None, None, 0.0, {"tasks": [], "step": 0}))
    ghost = types.SimpleNamespace(dt_id=7, name="g", patch=None)
    rv(LifecycleEvent("transition", ghost, TaskState.READY, 0.0, {}))
    assert telemetry.registry.counter("verify.violations").value == 1
    assert telemetry.registry.counter("verify.violations.unknown-task").value == 1


# ---------------------------------------------------------------- flag audit
class _FakeFlag:
    observer = None


def _validator_with_flag():
    v = ScheduleValidator()
    v.subscriber_for(0, _empty_graph(), costs=None)
    flag = _FakeFlag()
    v.watch_flag(0, flag)
    return v, flag.observer


def test_flag_nonmonotone_bump_is_flagged():
    v, audit = _validator_with_flag()
    v._ranks[0].cpe_launches = 2
    audit.on_faaw(None, 5, 5)
    assert "flag-nonmonotone" in {x.invariant for x in v.violations}


def test_flag_overcount_is_flagged():
    v, audit = _validator_with_flag()
    # one kernel offloaded, two completion bumps
    v._ranks[0].cpe_launches = 1
    audit.on_faaw(None, 0, 1)
    audit.on_faaw(None, 1, 2)
    assert [x.invariant for x in v.violations] == ["flag-overcount"]


def test_flag_undercount_found_at_finalization():
    v, audit = _validator_with_flag()
    v._ranks[0].cpe_launches = 2
    v._ranks[0].clean_cpe_retires = 2
    audit.on_faaw(None, 0, 1)  # only one of the two kernels bumped
    v.finish()
    assert [x.invariant for x in v.violations] == ["flag-undercount"]
    assert "1 time(s)" in v.first_violation.detail


def test_flag_matching_counts_are_clean():
    v, audit = _validator_with_flag()
    v._ranks[0].cpe_launches = 2
    v._ranks[0].clean_cpe_retires = 2
    audit.on_faaw(None, 0, 1)
    audit.on_faaw(None, 1, 2)
    v.finish()
    assert v.ok


# ---------------------------------------------------------------- DW audit
def _watched_dw():
    v = ScheduleValidator()
    dw = DataWarehouse(step=4, rank=0)
    v.watch_dw(dw)
    grid = Grid(extent=(4, 4, 4), layout=(1, 1, 1))
    return v, dw, grid.patches()[0], VarLabel("u")


def test_dw_read_before_put_is_attributed():
    v, dw, patch, u = _watched_dw()
    with pytest.raises(KeyError):
        dw.get(u, patch)
    assert [x.invariant for x in v.violations] == ["dw-read-before-put"]
    assert "'u'@p0" in v.first_violation.detail


def test_dw_double_put_is_attributed():
    v, dw, patch, u = _watched_dw()
    dw.allocate_and_put(u, patch)
    with pytest.raises(KeyError):
        dw.allocate_and_put(u, patch)
    assert [x.invariant for x in v.violations] == ["dw-double-put"]


def test_dw_use_after_scrub_and_double_scrub_are_attributed():
    v, dw, patch, u = _watched_dw()
    dw.allocate_and_put(u, patch)
    assert dw.scrub(u, patch) is True
    with pytest.raises(KeyError):
        dw.get(u, patch)
    with pytest.raises(KeyError):
        dw.scrub(u, patch)
    assert [x.invariant for x in v.violations] == [
        "dw-use-after-scrub",
        "dw-double-scrub",
    ]
    # violations carry the warehouse generation even with no rank mirror
    assert "generation 4" in v.violations[0].detail


def test_clean_dw_traffic_records_nothing():
    v, dw, patch, u = _watched_dw()
    var = dw.allocate_and_put(u, patch)
    assert dw.get(u, patch) is var
    assert dw.scrub(u, patch) is True
    assert v.ok
