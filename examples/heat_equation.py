#!/usr/bin/env python
"""A user-defined application: 3-D heat equation on the public API.

Demonstrates what the paper's Sec. II promises — "users [describe] their
problems as a collection of dependent coarse tasks ... Uintah keeps users
insulated from all of [the] parallel executing details".  This script
defines a brand-new PDE application (not shipped with the library): the
heat equation ``u_t = alpha * Laplacian(u)`` with homogeneous Dirichlet
boundaries, plus an energy-monitoring reduction — in under a hundred
lines, with the runtime handling patches, ghost exchange, offload and
scheduling.

Usage::

    python examples/heat_equation.py
"""

import numpy as np

from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

ALPHA = 0.1

T_LABEL = VarLabel("temperature")
ENERGY = VarLabel("energy", vartype="reduction")

#: 7-point Laplacian + Euler update: ~14 flops/cell, no exponentials.
HEAT_COST = KernelCost(stencil_flops=14, exp_calls=0, bytes_read=8, bytes_written=8)


def initialize(ctx: TaskContext) -> None:
    """A hot Gaussian blob in the centre of the box."""
    var = ctx.new_dw.allocate_and_put(T_LABEL, ctx.patch, ghosts=1)
    grid = ctx.grid
    lo, hi = ctx.patch.low, ctx.patch.high
    x = (np.arange(lo[0], hi[0]) + 0.5) * grid.spacing[0]
    y = (np.arange(lo[1], hi[1]) + 0.5) * grid.spacing[1]
    z = (np.arange(lo[2], hi[2]) + 0.5) * grid.spacing[2]
    r2 = (
        (x[:, None, None] - 0.5) ** 2
        + (y[None, :, None] - 0.5) ** 2
        + (z[None, None, :] - 0.5) ** 2
    )
    var.interior[...] = np.exp(-r2 / 0.02)


def apply_dirichlet(ctx: TaskContext) -> None:
    """MPE part: zero-temperature walls (ghosts mirror with negation would
    be second order; the simple Dirichlet fill keeps the example short)."""
    var = ctx.old_dw.get(T_LABEL, ctx.patch)
    for axis, side in ctx.grid.boundary_faces(ctx.patch):
        var.region_view(ctx.patch.ghost_region(axis, side))[...] = 0.0


def diffuse(ctx: TaskContext) -> None:
    """CPE kernel part: one forward-Euler diffusion step."""
    old = ctx.old_dw.get(T_LABEL, ctx.patch)
    new = ctx.new_dw.allocate_and_put(T_LABEL, ctx.patch, ghosts=1)
    dx, dy, dz = ctx.grid.spacing
    u = old.data
    c = u[1:-1, 1:-1, 1:-1]
    lap = (
        (u[:-2, 1:-1, 1:-1] - 2 * c + u[2:, 1:-1, 1:-1]) / dx**2
        + (u[1:-1, :-2, 1:-1] - 2 * c + u[1:-1, 2:, 1:-1]) / dy**2
        + (u[1:-1, 1:-1, :-2] - 2 * c + u[1:-1, 1:-1, 2:]) / dz**2
    )
    new.interior[...] = c + ctx.dt * ALPHA * lap


def total_energy(ctx: TaskContext) -> float:
    """Reduction partial: sum of temperature over the patch."""
    var = ctx.new_dw.get(T_LABEL, ctx.patch)
    return float(var.interior.sum())


def main() -> None:
    grid = Grid(extent=(32, 32, 32), layout=(2, 2, 2))

    init = Task("initialize", kind=TaskKind.MPE, action=initialize)
    init.computes_(T_LABEL)

    step = Task(
        "diffuse",
        kind=TaskKind.CPE_KERNEL,
        action=diffuse,
        mpe_action=apply_dirichlet,
        kernel_cost=HEAT_COST,
    )
    step.requires_(T_LABEL, dw="old", ghosts=1).computes_(T_LABEL)

    energy = Task("energy", kind=TaskKind.REDUCTION, action=total_energy,
                  reduction_op=lambda a, b: a + b)
    energy.requires_(T_LABEL, dw="new").computes_(ENERGY)

    controller = SimulationController(
        grid, [step, energy], [init], num_ranks=4, mode="async", real=True
    )
    dx = grid.spacing[0]
    dt = 0.2 * dx * dx / (6 * ALPHA)
    result = controller.run(nsteps=25, dt=dt)

    final = result.final_dws[0].get_reduction(ENERGY)
    peak = max(
        float(v.interior.max())
        for dw in result.final_dws
        for v in dw.grid_variables()
    )
    print("Heat equation on the AMT runtime (user-defined application)")
    print("=" * 60)
    print(f"steps                : 25 x dt={dt:.2e}")
    print(f"simulated time/step  : {result.time_per_step * 1e3:.3f} ms")
    print(f"total energy (sum T) : {final:.4f}")
    print(f"peak temperature     : {peak:.4f}  (started at 1.0, diffusing)")
    assert peak < 1.0, "diffusion must lower the peak"
    print("OK: heat spread and the walls stayed cold.")


if __name__ == "__main__":
    main()
