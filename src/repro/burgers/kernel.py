"""The Burgers kernel (paper Algorithm 1).

Two numerically identical implementations:

* :func:`apply_kernel` — the production form: vectorized NumPy over the
  whole patch (the guides' "vectorize the loop" idiom), evaluating the
  three phi coefficient vectors once per axis and broadcasting.
* :func:`apply_kernel_cell_loop` — a literal per-cell transliteration of
  Algorithm 1, kept as the executable specification; tests assert the
  production kernel matches it bitwise on small patches.

Sign convention: the paper's pseudo-code builds the advection terms with
backward differences as ``u_dudx = phi * (u[i-1] - u[i]) / dx`` (i.e.
``-phi u_x``) and then shows ``du = -((u_dudx + ...) + nu * (...))``,
which would flip both the advection and the diffusion sign relative to
the PDE of Eq. (1).  We implement the update consistent with Eq. (1) —
``du = (u_dudx + u_dudy + u_dudz) + nu * (d2udx2 + d2udy2 + d2udz2)`` —
which the convergence tests verify against the exact solution; the
pseudo-code's outer minus is a typesetting slip.
"""

from __future__ import annotations

import numpy as np

from repro.burgers.phi import phi, NU
from repro.core.grid import Grid
from repro.core.patch import Patch
from repro.core.variables import CCVariable
from repro.sunway.fastmath import ieee_exp


def _phi_axis(grid: Grid, patch: Patch, axis: int, t: float, nu: float, exp) -> np.ndarray:
    """Phi at the interior cell centres of ``patch`` along one axis."""
    d = grid.spacing[axis]
    lo, hi = patch.low[axis], patch.high[axis]
    x = grid.domain_low[axis] + (np.arange(lo, hi, dtype=np.float64) + 0.5) * d
    return np.asarray(phi(x, t, nu, exp))


def apply_kernel(
    u_old: CCVariable,
    u_new: CCVariable,
    grid: Grid,
    t: float,
    dt: float,
    nu: float = NU,
    exp=ieee_exp,
) -> None:
    """One forward-Euler step on a patch (vectorized).

    ``u_old`` must have its one-layer halo filled (neighbour exchange on
    interior faces, boundary conditions on physical faces); ``u_new``'s
    interior is overwritten.
    """
    if u_old.ghosts < 1:
        raise ValueError("Burgers kernel needs one layer of ghost cells")
    patch = u_old.patch
    dx, dy, dz = grid.spacing
    u = u_old.data
    c = u[1:-1, 1:-1, 1:-1]
    xm, xp = u[:-2, 1:-1, 1:-1], u[2:, 1:-1, 1:-1]
    ym, yp = u[1:-1, :-2, 1:-1], u[1:-1, 2:, 1:-1]
    zm, zp = u[1:-1, 1:-1, :-2], u[1:-1, 1:-1, 2:]

    px = _phi_axis(grid, patch, 0, t, nu, exp)[:, None, None]
    py = _phi_axis(grid, patch, 1, t, nu, exp)[None, :, None]
    pz = _phi_axis(grid, patch, 2, t, nu, exp)[None, None, :]

    u_dudx = px * (xm - c) / dx
    u_dudy = py * (ym - c) / dy
    u_dudz = pz * (zm - c) / dz
    d2udx2 = (-2.0 * c + xm + xp) / (dx * dx)
    d2udy2 = (-2.0 * c + ym + yp) / (dy * dy)
    d2udz2 = (-2.0 * c + zm + zp) / (dz * dz)

    du = (u_dudx + u_dudy + u_dudz) + nu * (d2udx2 + d2udy2 + d2udz2)
    u_new.interior[...] = c + dt * du


def apply_kernel_cell_loop(
    u_old: CCVariable,
    u_new: CCVariable,
    grid: Grid,
    t: float,
    dt: float,
    nu: float = NU,
    exp=ieee_exp,
) -> None:
    """Literal Algorithm 1: explicit loop over every cell (tests only)."""
    if u_old.ghosts < 1:
        raise ValueError("Burgers kernel needs one layer of ghost cells")
    patch = u_old.patch
    dx, dy, dz = grid.spacing
    u = u_old.data
    out = u_new.interior
    nx, ny, nz = patch.extent

    def center(axis: int, local: int) -> float:
        # identical float rounding to the vectorized kernel's coordinates
        return grid.domain_low[axis] + (patch.low[axis] + local + 0.5) * grid.spacing[axis]

    for i in range(nx):
        pxi = float(phi(center(0, i), t, nu, exp))
        for j in range(ny):
            pyj = float(phi(center(1, j), t, nu, exp))
            for k in range(nz):
                pzk = float(phi(center(2, k), t, nu, exp))
                I, J, K = i + 1, j + 1, k + 1  # ghosted-array indices
                c = u[I, J, K]
                u_dudx = pxi * (u[I - 1, J, K] - c) / dx
                u_dudy = pyj * (u[I, J - 1, K] - c) / dy
                u_dudz = pzk * (u[I, J, K - 1] - c) / dz
                d2udx2 = (-2.0 * c + u[I - 1, J, K] + u[I + 1, J, K]) / (dx * dx)
                d2udy2 = (-2.0 * c + u[I, J - 1, K] + u[I, J + 1, K]) / (dy * dy)
                d2udz2 = (-2.0 * c + u[I, J, K - 1] + u[I, J, K + 1]) / (dz * dz)
                du = (u_dudx + u_dudy + u_dudz) + nu * (d2udx2 + d2udy2 + d2udz2)
                out[i, j, k] = c + dt * du
