"""Event-level simulation of the CPE tile scheduler (paper Sec. V-D).

The production cost model computes a kernel offload's duration
analytically (:meth:`~repro.sunway.corerates.CoreRates.cluster_kernel_time`:
the most-loaded CPE's serial tile time).  This module simulates the same
tile scheduler at event granularity — one DES process per CPE, one
get/compute/put cycle per tile, a shared completion flag bumped by
``faaw`` as each CPE finishes — so the analytic formula can be validated
against an executable model, and finer-grained policies (asynchronous
double-buffered DMA, work stealing between CPEs) can be studied.

The paper notes its tile scheduler "does not take into account potential
load imbalances among tiles, and does not make use of the fact that the
memory-LDM transfer can be asynchronous. These issues will be addressed
in the future."  Both future policies are implemented here behind flags.
"""

from __future__ import annotations

import dataclasses

from repro.des import Simulator, Store
from repro.sunway.athread import CompletionFlag
from repro.sunway.corerates import CoreRates, KernelCost, TileWork
from repro.sunway.dma import DMAEngine


@dataclasses.dataclass
class ClusterRunResult:
    """Outcome of one event-level cluster execution."""

    #: Simulated seconds from launch to the last CPE's faaw.
    duration: float
    #: Per-CPE busy seconds.
    cpe_busy: list[float]
    #: Tiles processed per CPE (interesting under work stealing).
    tiles_done: list[int]

    @property
    def imbalance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        busy = [b for b in self.cpe_busy]
        mean = sum(busy) / len(busy) if busy else 0.0
        return max(busy) / mean if mean > 0 else 1.0


def simulate_cluster(
    per_cpe_tiles: list[list[TileWork]],
    cost: KernelCost,
    rates: CoreRates,
    dma: DMAEngine,
    simd: bool = False,
    fast_exp: bool = True,
    async_dma: bool = False,
    work_stealing: bool = False,
) -> ClusterRunResult:
    """Run the CPE tile scheduler at event granularity.

    ``per_cpe_tiles`` is the static z-partition assignment (from
    :meth:`~repro.core.tiling.TilePlan.per_cpe_work`).  With
    ``work_stealing=True`` the static assignment only seeds a shared
    queue and idle CPEs take the next tile from it — the future-work
    fix for tile load imbalance.
    """
    num_cpes = len(per_cpe_tiles)
    if num_cpes == 0:
        return ClusterRunResult(0.0, [], [])
    sim = Simulator()
    flag = CompletionFlag(sim)
    busy = [0.0] * num_cpes
    done = [0] * num_cpes

    if work_stealing:
        queue: Store = Store(sim, name="tile-queue")
        total_tiles = 0
        for tiles in per_cpe_tiles:
            for work in tiles:
                queue.put(work)
                total_tiles += 1

        def cpe(sim: Simulator, cpe_id: int):
            while True:
                work = queue.try_get()
                if work is None:
                    break
                t = rates.tile_time(work, cost, dma, simd, fast_exp, async_dma)
                yield sim.timeout(t)
                busy[cpe_id] += t
                done[cpe_id] += 1
            flag.faaw()

    else:

        def cpe(sim: Simulator, cpe_id: int):
            for work in per_cpe_tiles[cpe_id]:
                t = rates.tile_time(work, cost, dma, simd, fast_exp, async_dma)
                yield sim.timeout(t)
                busy[cpe_id] += t
                done[cpe_id] += 1
            flag.faaw()

    for c in range(num_cpes):
        sim.process(cpe(sim, c), name=f"cpe{c}")
    sim.run(until=flag.reached(num_cpes))
    return ClusterRunResult(duration=sim.now, cpe_busy=busy, tiles_done=done)
