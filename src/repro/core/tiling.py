"""LDM-constrained tiling of patches (after TiDA, paper Sec. V-B/VI-A).

"When a kernel is scheduled to run on the CPEs, the patch is further
subdivided into 'tiles' ... defined so that the working memory of the
kernel fits in the 64KB LDM.  The tiles are then assigned evenly to the
CPEs" — by "naturally partitioning the blocks in the z dimension"
(Sec. V-D).

This module provides

* :func:`choose_tile_shape` — the tile-size selection of Sec. VI-A,
  reproducing the paper's 16x16x8 choice (41.3 KB working set) for the
  Burgers kernel on every patch in the evaluation suite;
* :class:`TilePlan` — a patch's tile decomposition plus the z-partition
  assignment of tiles to CPEs, yielding the per-CPE
  :class:`~repro.sunway.corerates.TileWork` lists the cost model and the
  CPE tile scheduler consume;
* :func:`contiguous_chunks` — DMA descriptor counts from tile geometry
  (x is the contiguous axis; tiles spanning the whole patch row coalesce
  into plane- or block-sized transfers).
"""

from __future__ import annotations

import dataclasses

from repro.sunway.corerates import TileWork
from repro.sunway.ldm import LDM, LDMAllocationError


def contiguous_chunks(region_extent: tuple[int, int, int], array_extent: tuple[int, int, int]) -> int:
    """Number of contiguous runs a sub-box occupies in an x-contiguous array.

    ``region_extent`` is the transferred box, ``array_extent`` the full
    (ghosted) patch array.  Full-x regions coalesce rows into planes;
    full-xy regions coalesce into a single block.
    """
    rx, ry, rz = region_extent
    ax, ay, az = array_extent
    if rx > ax or ry > ay or rz > az:
        raise ValueError(f"region {region_extent} exceeds array {array_extent}")
    if min(rx, ry, rz) == 0:
        return 0
    if rx == ax:
        if ry == ay:
            return 1
        return rz
    return ry * rz


def working_set_bytes(
    tile_shape: tuple[int, int, int],
    ghosts: int = 1,
    fields_in: int = 1,
    fields_out: int = 1,
    itemsize: int = 8,
) -> int:
    """LDM bytes needed for one tile: ghosted inputs + interior outputs."""
    tx, ty, tz = tile_shape
    halo = (tx + 2 * ghosts) * (ty + 2 * ghosts) * (tz + 2 * ghosts)
    interior = tx * ty * tz
    return (fields_in * halo + fields_out * interior) * itemsize


def choose_tile_shape(
    patch_extent: tuple[int, int, int],
    ldm_bytes: int = 64 * 1024,
    ghosts: int = 1,
    fields_in: int = 1,
    fields_out: int = 1,
    num_cpes: int = 64,
    itemsize: int = 8,
) -> tuple[int, int, int]:
    """Pick the tile size for a kernel on a patch (paper Sec. VI-A).

    Candidates are power-of-two boxes dividing the patch.  Selection
    order: (1) the tile must fit the LDM (checked against a real
    :class:`~repro.sunway.ldm.LDM` allocator); (2) prefer shapes whose
    z-slab count divides evenly over the CPEs ("larger and regular tiles
    ... keep the ratio of ghost cells low" while the z-partition stays
    balanced); (3) maximize interior cells; (4) minimize halo cells;
    (5) prefer wide x for DMA contiguity and SIMD.

    For the Burgers working set (1 ghosted input + 1 output) this yields
    16x16x8 = 41.3 KB on every patch of the paper's Table III.
    """

    def pow2_divisors(n: int) -> list[int]:
        out = []
        d = 1
        while d <= n:
            if n % d == 0:
                out.append(d)
            d *= 2
        return out

    best = None
    best_key = None
    px, py, pz = patch_extent
    for tx in pow2_divisors(px):
        for ty in pow2_divisors(py):
            for tz in pow2_divisors(pz):
                need = working_set_bytes((tx, ty, tz), ghosts, fields_in, fields_out, itemsize)
                ldm = LDM(ldm_bytes)
                try:
                    ldm.alloc("working-set", need)
                except LDMAllocationError:
                    continue
                slabs = pz // tz
                balanced = 1 if slabs % num_cpes == 0 or num_cpes % slabs == 0 else 0
                cells = tx * ty * tz
                halo = (tx + 2 * ghosts) * (ty + 2 * ghosts) * (tz + 2 * ghosts) - cells
                # Final tie-breaks: wide x (DMA contiguity + SIMD), then
                # wide y over deep z — shallow-z tiles mean more z-slabs,
                # i.e. a finer-grained CPE partition (the paper's 16x16x8).
                key = (balanced, cells, -halo, tx, ty)
                if best_key is None or key > best_key:
                    best_key = key
                    best = (tx, ty, tz)
    if best is None:
        raise LDMAllocationError(
            f"no tile of patch {patch_extent} fits {ldm_bytes} B of LDM "
            f"({fields_in} halo'd inputs + {fields_out} outputs)"
        )
    return best


@dataclasses.dataclass(frozen=True)
class TilePlan:
    """The tile decomposition of one patch for one kernel."""

    patch_extent: tuple[int, int, int]
    tile_shape: tuple[int, int, int]
    ghosts: int = 1
    fields_in: int = 1
    fields_out: int = 1
    num_cpes: int = 64
    itemsize: int = 8

    def __post_init__(self) -> None:
        for axis in range(3):
            if self.tile_shape[axis] < 1:
                raise ValueError(f"tile shape must be positive, got {self.tile_shape}")
            if self.patch_extent[axis] < 1:
                raise ValueError(f"patch extent must be positive, got {self.patch_extent}")
        if self.num_cpes < 1:
            raise ValueError(f"num_cpes must be >= 1, got {self.num_cpes}")

    # -- decomposition ---------------------------------------------------------
    @property
    def tile_counts(self) -> tuple[int, int, int]:
        """Tiles per axis (edge tiles may be smaller)."""
        return tuple(  # type: ignore[return-value]
            -(-p // t) for p, t in zip(self.patch_extent, self.tile_shape)
        )

    @property
    def num_tiles(self) -> int:
        """Total tiles covering the patch."""
        cx, cy, cz = self.tile_counts
        return cx * cy * cz

    def tile_region(self, tile_index: tuple[int, int, int]) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """Patch-local (low, high) of one tile, clipped to the patch."""
        low = []
        high = []
        for axis in range(3):
            lo = tile_index[axis] * self.tile_shape[axis]
            hi = min(lo + self.tile_shape[axis], self.patch_extent[axis])
            if lo >= self.patch_extent[axis]:
                raise IndexError(f"tile index {tile_index} outside patch")
            low.append(lo)
            high.append(hi)
        return tuple(low), tuple(high)  # type: ignore[return-value]

    def tiles(self) -> list[tuple[int, int, int]]:
        """All tile indices, x-fastest order."""
        cx, cy, cz = self.tile_counts
        return [(ix, iy, iz) for iz in range(cz) for iy in range(cy) for ix in range(cx)]

    # -- CPE assignment (z-partition, paper Sec. V-D) -------------------------------
    def cpe_of_slab(self, slab: int) -> int:
        """Which CPE owns z-slab ``slab`` (contiguous block partition)."""
        slabs = self.tile_counts[2]
        if not 0 <= slab < slabs:
            raise IndexError(f"slab {slab} out of range [0, {slabs})")
        if slabs >= self.num_cpes:
            # contiguous blocks of slabs per CPE
            per = slabs / self.num_cpes
            return min(int(slab / per), self.num_cpes - 1)
        return slab  # fewer slabs than CPEs: one slab per CPE, rest idle

    def per_cpe_tile_indices(self) -> list[list[tuple[int, int, int]]]:
        """Tile indices assigned to each CPE."""
        out: list[list[tuple[int, int, int]]] = [[] for _ in range(self.num_cpes)]
        for tile in self.tiles():
            out[self.cpe_of_slab(tile[2])].append(tile)
        return out

    # -- DMA work ------------------------------------------------------------------
    def _array_extent(self) -> tuple[int, int, int]:
        g = self.ghosts
        return tuple(p + 2 * g for p in self.patch_extent)  # type: ignore[return-value]

    def tile_work(self, tile_index: tuple[int, int, int]) -> TileWork:
        """The DMA/compute description of one tile."""
        g = self.ghosts
        low, high = self.tile_region(tile_index)
        shape = tuple(h - l for l, h in zip(low, high))
        halo_shape = tuple(s + 2 * g for s in shape)
        arr = self._array_extent()
        cells = shape[0] * shape[1] * shape[2]
        halo_cells = halo_shape[0] * halo_shape[1] * halo_shape[2]
        get_chunks = contiguous_chunks(halo_shape, arr) * self.fields_in  # type: ignore[arg-type]
        put_chunks = contiguous_chunks(shape, arr) * self.fields_out  # type: ignore[arg-type]
        return TileWork(
            cells=cells,
            get_bytes=halo_cells * self.itemsize * self.fields_in,
            get_chunks=max(get_chunks, 1),
            put_bytes=cells * self.itemsize * self.fields_out,
            put_chunks=max(put_chunks, 1),
        )

    def per_cpe_work(self) -> list[list[TileWork]]:
        """Per-CPE :class:`TileWork` lists for the cluster cost model."""
        return [
            [self.tile_work(t) for t in tiles] for tiles in self.per_cpe_tile_indices()
        ]

    def ldm_working_set(self) -> int:
        """Worst-case LDM bytes over all tiles; must fit the LDM."""
        return working_set_bytes(
            self.tile_shape, self.ghosts, self.fields_in, self.fields_out, self.itemsize
        )

    def validate_against_ldm(self, ldm_bytes: int = 64 * 1024) -> None:
        """Raise :class:`LDMAllocationError` if the working set overflows."""
        ldm = LDM(ldm_bytes)
        ldm.alloc("working-set", self.ldm_working_set())
