"""Regenerate the data series of every figure in the evaluation.

Figures are produced as numeric series (CG count -> value) plus a text
rendering, since the reproduction environment is headless; the series are
what the paper's plots draw.
"""

from __future__ import annotations

from repro.harness import metrics
from repro.harness.problems import PROBLEMS, ProblemSetting, small_medium_large
from repro.harness.reportfmt import pct, render_table, seconds
from repro.harness.runner import run_experiment
from repro.harness.variants import ACCELERATED, variant_by_name


# -- Figure 5: strong-scaling wall time ---------------------------------------------

def fig5_data(problems=PROBLEMS, variants=ACCELERATED, nsteps=10) -> dict:
    """Wall time per step: ``{problem: {variant: {cgs: seconds}}}``."""
    out: dict = {}
    for p in problems:
        out[p.name] = {}
        for vname in variants:
            v = variant_by_name(vname)
            out[p.name][vname] = {
                cgs: run_experiment(p, v, cgs, nsteps=nsteps).time_per_step
                for cgs in p.cg_counts()
            }
    return out


def fig5(problems=PROBLEMS, variants=ACCELERATED, nsteps=10) -> str:
    data = fig5_data(problems, variants, nsteps)
    blocks = []
    for pname, per_variant in data.items():
        cgs_list = sorted(next(iter(per_variant.values())))
        rows = [
            (vname,) + tuple(seconds(per_variant[vname][c]) for c in cgs_list)
            for vname in per_variant
        ]
        blocks.append(
            render_table(
                f"Fig. 5 ({pname}): wall time per step vs CGs",
                ("Variant",) + tuple(str(c) for c in cgs_list),
                rows,
            )
        )
    return "\n\n".join(blocks)


# -- Figures 6-8: optimization boost -----------------------------------------------------

#: The optimization-step ladder of Sec. VII-D.
BOOST_VARIANTS = ("host.sync", "acc.async", "acc_simd.async")


def boost_data(problem: ProblemSetting, nsteps=10) -> dict:
    """Boost over host.sync per CG count: ``{variant: {cgs: boost}}``."""
    host = variant_by_name("host.sync")
    out: dict = {v: {} for v in BOOST_VARIANTS[1:]}
    for cgs in problem.cg_counts():
        base = run_experiment(problem, host, cgs, nsteps=nsteps)
        for vname in BOOST_VARIANTS[1:]:
            opt = run_experiment(problem, variant_by_name(vname), cgs, nsteps=nsteps)
            out[vname][cgs] = metrics.optimization_boost(base, opt)
    return out


def fig678_data(nsteps=10) -> dict:
    """Boost ladders for the small/medium/large problems (Figs. 6, 7, 8)."""
    small, medium, large = small_medium_large()
    return {
        "fig6_small": {"problem": small.name, "boost": boost_data(small, nsteps)},
        "fig7_medium": {"problem": medium.name, "boost": boost_data(medium, nsteps)},
        "fig8_large": {"problem": large.name, "boost": boost_data(large, nsteps)},
    }


def fig678(nsteps=10) -> str:
    blocks = []
    for key, entry in fig678_data(nsteps).items():
        boosts = entry["boost"]
        cgs_list = sorted(next(iter(boosts.values())))
        rows = [
            (vname,) + tuple(f"{boosts[vname][c]:.2f}x" for c in cgs_list)
            for vname in boosts
        ]
        blocks.append(
            render_table(
                f"{key} ({entry['problem']}): boost over host.sync",
                ("Variant",) + tuple(str(c) for c in cgs_list),
                rows,
            )
        )
    return "\n\n".join(blocks)


# -- Figures 9-10: floating point performance and efficiency --------------------------------

def fig9_data(problems=PROBLEMS, nsteps=10) -> dict:
    """Achieved Gflop/s of acc_simd.async: ``{problem: {cgs: gflops}}``."""
    v = variant_by_name("acc_simd.async")
    return {
        p.name: {
            cgs: run_experiment(p, v, cgs, nsteps=nsteps).gflops
            for cgs in p.cg_counts()
        }
        for p in problems
    }


def fig10_data(problems=PROBLEMS, nsteps=10) -> dict:
    """FP efficiency (fraction of peak): ``{problem: {cgs: fraction}}``."""
    v = variant_by_name("acc_simd.async")
    return {
        p.name: {
            cgs: run_experiment(p, v, cgs, nsteps=nsteps).fp_efficiency
            for cgs in p.cg_counts()
        }
        for p in problems
    }


def _series_table(title: str, data: dict, fmt) -> str:
    from repro.harness.problems import CG_COUNTS

    rows = []
    for pname, series in data.items():
        rows.append(
            (pname,) + tuple(fmt(series[c]) if c in series else "-" for c in CG_COUNTS)
        )
    return render_table(title, ("Problem",) + tuple(str(c) for c in CG_COUNTS), rows)


def fig9(problems=PROBLEMS, nsteps=10) -> str:
    return _series_table(
        "Fig. 9: floating point performance (Gflop/s), acc_simd.async",
        fig9_data(problems, nsteps),
        lambda g: f"{g:.1f}",
    )


def fig10(problems=PROBLEMS, nsteps=10) -> str:
    return _series_table(
        "Fig. 10: floating point efficiency (% of peak), acc_simd.async",
        fig10_data(problems, nsteps),
        lambda f: pct(f, 2),
    )
