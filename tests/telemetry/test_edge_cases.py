"""Edge cases for ledger comparison and trace summarization.

The regression gate and the profiler both see degenerate inputs in
practice — empty runs, single-rank runs, ledgers written before metrics
existed, duplicate activity names across lanes — and must degrade to
well-defined answers, not division errors or silently merged rows.
"""

from repro.core.trace import Tracer
from repro.telemetry.ledger import LedgerStep, RunLedger, compare_ledgers


def _step(step=0, wall=1.0, ranks=2, overlap=0.25, comm_wait=0.1):
    return LedgerStep(
        step=step,
        wall=wall,
        sim_time=(step + 1) * 1e-3,
        mpe_busy=[wall * 0.8] * ranks,
        cpe_busy=[wall * 0.5] * ranks,
        overlap=[overlap] * ranks,
        comm_wait=[comm_wait] * ranks,
        totals={"tasks_run": 4.0 * ranks},
    )


def _ledger(steps, metrics=None):
    return RunLedger(manifest={"mode": "async"}, steps=steps, metrics=metrics or {})


# ---------------------------------------------------------- compare_ledgers
def test_compare_empty_ledgers_passes():
    assert compare_ledgers(_ledger([]), _ledger([])) == []


def test_compare_against_empty_baseline_never_divides():
    """A zero-wall baseline cannot gate ratios; only absolute checks run."""
    candidate = _ledger([_step(wall=100.0, comm_wait=5.0)])
    assert compare_ledgers(_ledger([]), candidate) == []


def test_compare_single_rank_ledgers():
    base = _ledger([_step(ranks=1), _step(step=1, ranks=1)])
    good = _ledger([_step(ranks=1), _step(step=1, ranks=1)])
    assert compare_ledgers(base, good) == []
    # overlap scales with the slower step's cpe time: fraction unchanged
    slow = _ledger(
        [
            _step(ranks=1, wall=3.0, overlap=0.75),
            _step(step=1, ranks=1, wall=3.0, overlap=0.75),
        ]
    )
    issues = compare_ledgers(base, slow)
    assert len(issues) == 1 and "wall time regressed" in issues[0]


def test_compare_flags_overlap_erosion_even_with_flat_wall():
    base = _ledger([_step(overlap=0.4)])
    eroded = _ledger([_step(overlap=0.1)])
    issues = compare_ledgers(base, eroded)
    assert any("overlap fraction dropped" in i for i in issues)


def test_compare_flags_comm_wait_regression():
    base = _ledger([_step(comm_wait=0.1)])
    waity = _ledger([_step(comm_wait=0.5)])
    issues = compare_ledgers(base, waity)
    assert any("comm-wait regressed" in i for i in issues)


def test_compare_flags_step_count_mismatch():
    base = _ledger([_step(), _step(step=1)])
    short = _ledger([_step()])
    issues = compare_ledgers(base, short)
    assert any("step count differs" in i for i in issues)


def test_metrics_free_ledger_round_trips(tmp_path):
    """Ledgers written without a metrics line read back with empty metrics."""
    ledger = _ledger([_step()])
    assert "\"kind\": \"metrics\"" not in ledger.to_jsonl()
    path = ledger.write(tmp_path / "run.jsonl")
    back = RunLedger.read(path)
    assert back.metrics == {}
    assert len(back.steps) == 1
    assert compare_ledgers(ledger, back) == []


# ---------------------------------------------------------- Tracer.summarize
def test_summarize_keeps_same_name_on_different_lanes_apart():
    tr = Tracer()
    tr.record(0, "mpe", "timeAdvance@p0", 0.0, 1.0)
    tr.record(0, "cpe", "timeAdvance@p0", 0.0, 3.0)
    summary = tr.summarize()
    assert set(summary) == {("timeAdvance", "mpe"), ("timeAdvance", "cpe")}
    assert summary[("timeAdvance", "mpe")]["total"] == 1.0
    assert summary[("timeAdvance", "cpe")]["total"] == 3.0


def test_summarize_folds_patch_suffixes_per_lane():
    tr = Tracer()
    tr.record(0, "mpe", "mpe-part:timeAdvance@p0", 0.0, 1.0)
    tr.record(0, "mpe", "mpe-part:timeAdvance@p1", 1.0, 3.0)
    tr.record(1, "mpe", "mpe-part:timeAdvance@p2", 0.0, 2.0)
    summary = tr.summarize()
    entry = summary[("mpe-part:timeAdvance", "mpe")]
    assert entry["count"] == 3
    assert entry["total"] == 5.0
    assert entry["mean"] == 5.0 / 3
    # rank filter narrows the same key
    assert tr.summarize(rank=1)[("mpe-part:timeAdvance", "mpe")]["count"] == 1


def test_summarize_empty_tracer_is_empty():
    assert Tracer().summarize() == {}
    assert Tracer(enabled=False).summarize() == {}
