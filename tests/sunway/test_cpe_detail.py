"""Tests for the event-level CPE tile scheduler simulation.

The headline test validates the production analytic formula
(CoreRates.cluster_kernel_time) against the executable event-level
model — the two must agree exactly for the paper's static z-partition.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.burgers.flops import BURGERS_KERNEL_COST
from repro.core.tiling import TilePlan
from repro.harness import calibration
from repro.sunway.corerates import CoreRates, KernelCost, TileWork
from repro.sunway.cpe_detail import simulate_cluster
from repro.sunway.dma import DMAEngine


def paper_plan(pe=(32, 32, 512)):
    return TilePlan(patch_extent=pe, tile_shape=(16, 16, 8), ghosts=1)


@pytest.mark.parametrize("simd", [False, True])
@pytest.mark.parametrize("pe", [(16, 16, 512), (32, 64, 512), (128, 128, 512)])
def test_event_level_matches_analytic(pe, simd):
    """The analytic cluster time equals the event-level simulation."""
    rates, dma = calibration.default_rates(), calibration.default_dma()
    per_cpe = paper_plan(pe).per_cpe_work()
    analytic = rates.cluster_kernel_time(per_cpe, BURGERS_KERNEL_COST, dma, simd=simd)
    simulated = simulate_cluster(per_cpe, BURGERS_KERNEL_COST, rates, dma, simd=simd)
    assert simulated.duration == pytest.approx(analytic, rel=1e-12)


def test_paper_partition_is_perfectly_balanced():
    """512/8 z-slabs over 64 CPEs: every CPE equally busy."""
    rates, dma = calibration.default_rates(), calibration.default_dma()
    res = simulate_cluster(paper_plan().per_cpe_work(), BURGERS_KERNEL_COST, rates, dma)
    assert res.imbalance == pytest.approx(1.0, rel=1e-12)
    assert all(n == res.tiles_done[0] for n in res.tiles_done)


def test_unbalanced_assignment_and_work_stealing():
    """With fewer z-slabs than CPEs, most CPEs idle (the paper's noted
    imbalance); work stealing is the future-work remedy."""
    rates, dma = calibration.default_rates(), calibration.default_dma()
    plan = TilePlan(patch_extent=(64, 64, 64), tile_shape=(16, 16, 8), ghosts=1)
    static = simulate_cluster(plan.per_cpe_work(), BURGERS_KERNEL_COST, rates, dma)
    stolen = simulate_cluster(
        plan.per_cpe_work(), BURGERS_KERNEL_COST, rates, dma, work_stealing=True
    )
    # 8 slabs of 16 tiles: static leaves 56 CPEs idle
    assert sum(1 for n in static.tiles_done if n == 0) == 56
    # stealing spreads the 128 tiles over all 64 CPEs: 2 each
    assert all(n == 2 for n in stolen.tiles_done)
    assert stolen.duration < static.duration
    # 16 tiles serial vs 2 tiles: 8x speedup
    assert static.duration / stolen.duration == pytest.approx(8.0, rel=1e-9)


def test_async_dma_faster_at_event_level():
    rates, dma = calibration.default_rates(), calibration.default_dma()
    per_cpe = paper_plan().per_cpe_work()
    sync = simulate_cluster(per_cpe, BURGERS_KERNEL_COST, rates, dma)
    asyn = simulate_cluster(per_cpe, BURGERS_KERNEL_COST, rates, dma, async_dma=True)
    assert asyn.duration < sync.duration


def test_empty_cluster():
    rates, dma = calibration.default_rates(), calibration.default_dma()
    res = simulate_cluster([], BURGERS_KERNEL_COST, rates, dma)
    assert res.duration == 0.0 and res.cpe_busy == []


def test_total_tiles_conserved_under_stealing():
    rates, dma = calibration.default_rates(), calibration.default_dma()
    per_cpe = paper_plan((32, 32, 512)).per_cpe_work()
    total = sum(len(t) for t in per_cpe)
    res = simulate_cluster(
        per_cpe, BURGERS_KERNEL_COST, rates, dma, work_stealing=True
    )
    assert sum(res.tiles_done) == total


@settings(deadline=None, max_examples=30)
@given(
    ncpe=st.integers(1, 8),
    tiles=st.lists(st.integers(1, 2000), min_size=1, max_size=24),
)
def test_property_stealing_within_graham_bound(ncpe, tiles):
    """Work stealing is greedy list scheduling: its makespan obeys
    Graham's (2 - 1/m) bound relative to the optimum, hence also
    relative to any static split, and can never beat the critical tile
    or the perfectly balanced lower bound."""
    rates = CoreRates(cpe_scalar_flops=1e9)
    dma = DMAEngine(bandwidth=1e9, startup=0.0, chunk_penalty=0.0)
    cost = KernelCost(stencil_flops=100, exp_calls=0)
    per_cpe = [[] for _ in range(ncpe)]
    for i, cells in enumerate(tiles):
        per_cpe[i % ncpe].append(
            TileWork(cells=cells, get_bytes=0, get_chunks=1, put_bytes=0, put_chunks=1)
        )
    static = simulate_cluster(per_cpe, cost, rates, dma)
    stolen = simulate_cluster(per_cpe, cost, rates, dma, work_stealing=True)
    tile_times = [
        rates.tile_time(w, cost, dma, simd=False) for tl in per_cpe for w in tl
    ]
    lower = max(max(tile_times), sum(tile_times) / ncpe)
    assert stolen.duration >= lower - 1e-15
    assert stolen.duration <= static.duration * (2 - 1 / ncpe) + 1e-12
    # greedy also respects Graham vs the balanced lower bound
    assert stolen.duration <= lower * (2 - 1 / ncpe) + 1e-12
