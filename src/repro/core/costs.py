"""The scheduler's cost model: work descriptions -> simulated MPE/CPE seconds.

Every scheduler action that burns MPE time (packing ghost slabs, posting
MPI operations, selecting tasks) and every kernel execution (CPE cluster
or MPE-only) is priced here, combining the architectural cost models of
:mod:`repro.sunway` with the tiling geometry of :mod:`repro.core.tiling`.

The numbers in :class:`SchedulerCosts` and
:class:`~repro.sunway.corerates.CoreRates` are *calibrated effective*
values (see ``repro/harness/calibration.py`` for provenance); the
*formulas* here are structural and follow the paper's Sec. V design.
"""

from __future__ import annotations

import dataclasses

from repro.core.grid import Grid
from repro.core.patch import Patch
from repro.core.task import Task
from repro.core.tiling import TilePlan, choose_tile_shape
from repro.sunway.config import CoreGroupConfig
from repro.sunway.corerates import CoreRates
from repro.sunway.dma import DMAEngine, DMAVolume
from repro.sunway.fastmath import exp_flops


@dataclasses.dataclass(frozen=True)
class SchedulerCosts:
    """Fixed MPE-side bookkeeping costs of the scheduler itself."""

    #: Selecting a ready task and preparing its offload (steps 3(b)ii-iv).
    task_select: float = 25e-6
    #: Posting one non-blocking receive (step 3a).
    recv_post: float = 4e-6
    #: Posting one non-blocking send (step 3(b)i).
    send_post: float = 4e-6
    #: One sweep of MPI_Test over outstanding requests (step 3c).
    mpi_test: float = 2e-6
    #: Per-patch share of executing a local reduction task (step 3d).
    reduction_per_patch: float = 8e-6
    #: MPE cost per boundary-condition cell (exact-solution evaluation:
    #: three phi calls with two exponentials each, on the MPE).
    bc_s_per_cell: float = 320e-9


@dataclasses.dataclass
class SunwayCostModel:
    """Prices all scheduler and kernel work for one experiment variant.

    Parameters mirror the paper's Table IV variant axes: ``simd`` toggles
    the vectorized kernel, ``fast_exp`` the exponential library,
    ``async_dma`` / ``cpe_groups`` the future-work extensions (off to
    match the paper).
    """

    rates: CoreRates = dataclasses.field(default_factory=CoreRates)
    dma: DMAEngine = dataclasses.field(default_factory=DMAEngine)
    sched: SchedulerCosts = dataclasses.field(default_factory=SchedulerCosts)
    core_group: CoreGroupConfig = dataclasses.field(default_factory=CoreGroupConfig)
    simd: bool = False
    fast_exp: bool = True
    async_dma: bool = False
    cpe_groups: int = 1
    #: Future work (paper Sec. IX): keep tiles packed contiguously in main
    #: memory so every DMA is a single descriptor.
    pack_tiles: bool = False
    #: athread spawn latency per offload.
    launch_latency: float = 15e-6

    def __post_init__(self) -> None:
        self._plan_cache: dict[tuple, TilePlan] = {}
        self._kernel_time_cache: dict[tuple, float] = {}
        self._dma_volume_cache: dict[tuple, DMAVolume] = {}

    # -- tiling --------------------------------------------------------------
    def tile_plan(self, task: Task, patch: Patch) -> TilePlan:
        """The (cached) tile decomposition of ``patch`` for ``task``."""
        cpes = self.core_group.num_cpes // self.cpe_groups
        key = (task.name, patch.extent, cpes)
        plan = self._plan_cache.get(key)
        if plan is None:
            shape = choose_tile_shape(
                patch.extent,
                ldm_bytes=self.core_group.ldm_bytes,
                ghosts=1,
                fields_in=task.tile_fields_in,
                fields_out=task.tile_fields_out,
                num_cpes=cpes,
            )
            plan = TilePlan(
                patch_extent=patch.extent,
                tile_shape=shape,
                ghosts=1,
                fields_in=task.tile_fields_in,
                fields_out=task.tile_fields_out,
                num_cpes=cpes,
            )
            plan.validate_against_ldm(self.core_group.ldm_bytes)
            self._plan_cache[key] = plan
        return plan

    # -- kernel execution ------------------------------------------------------
    def cpe_kernel_time(self, task: Task, patch: Patch) -> float:
        """Cluster seconds for the offloaded kernel part on ``patch``."""
        if task.kernel_cost is None:
            raise ValueError(f"task {task.name!r} has no kernel cost model")
        # Kernel time depends only on the patch extent (tiling is
        # translation-invariant), so cache per (task, extent).
        key = (task.name, patch.extent)
        cached = self._kernel_time_cache.get(key)
        if cached is not None:
            return cached
        plan = self.tile_plan(task, patch)
        per_cpe = plan.per_cpe_work()
        if self.pack_tiles:
            per_cpe = [
                [dataclasses.replace(w, get_chunks=1, put_chunks=1) for w in tiles]
                for tiles in per_cpe
            ]
        t = self.rates.cluster_kernel_time(
            per_cpe,
            task.kernel_cost,
            self.dma,
            simd=self.simd,
            fast_exp=self.fast_exp,
            async_dma=self.async_dma,
        )
        self._kernel_time_cache[key] = t
        return t

    def mpe_kernel_time(self, task: Task, patch: Patch) -> float:
        """Seconds for the MPE to run the kernel itself (host.sync mode)."""
        if task.kernel_cost is None:
            raise ValueError(f"task {task.name!r} has no kernel cost model")
        ex = patch.extent
        plane_bytes = ex[0] * ex[1] * 8
        return self.rates.mpe_kernel_time(
            patch.num_cells, plane_bytes, task.kernel_cost, fast_exp=self.fast_exp
        )

    def mpe_task_time(self, task: Task, patch: Patch | None) -> float:
        """Seconds for a small MPE-kind task's kernel part."""
        if task.kernel_cost is not None and patch is not None:
            return self.mpe_kernel_time(task, patch)
        return self.sched.task_select  # pure-control tasks: bookkeeping only

    def mpe_part_time(self, task: Task, patch: Patch | None, grid: Grid) -> float:
        """Seconds for the MPE part run before offload (step 3(b)iii).

        For the model problem this is the boundary-condition fill: ghost
        cells on physical domain faces evaluated from the exact solution
        on the MPE.
        """
        if patch is None or task.mpe_action is None:
            return 0.0
        cells = sum(
            patch.ghost_region(axis, side).num_cells
            for axis, side in grid.boundary_faces(patch)
        )
        return cells * self.sched.bc_s_per_cell

    # -- communication-side MPE work ----------------------------------------------
    def pack_time(self, ncells: int, remote: bool) -> float:
        """Seconds for the MPE to pack or unpack ``ncells`` ghost cells."""
        return self.rates.pack_time(ncells, remote=remote)

    def reduction_local_time(self, num_local_patches: int) -> float:
        """Seconds for the MPE's local part of a reduction task."""
        return max(num_local_patches, 1) * self.sched.reduction_per_patch

    # -- accounting helpers -------------------------------------------------------
    def kernel_dma_volume(self, task: Task, patch: Patch) -> DMAVolume:
        """Aggregate DMA traffic of one kernel launch on ``patch``.

        Like :meth:`cpe_kernel_time` this depends only on the patch
        extent, so it is cached per ``(task, extent)`` — telemetry can
        query it on every launch without re-walking the tile plan.
        """
        key = (task.name, patch.extent)
        cached = self._dma_volume_cache.get(key)
        if cached is not None:
            return cached
        get_b = put_b = descriptors = 0
        for tiles in self.tile_plan(task, patch).per_cpe_work():
            for w in tiles:
                get_b += w.get_bytes
                put_b += w.put_bytes
                if self.pack_tiles:
                    descriptors += 2  # one get + one put, fully packed
                else:
                    descriptors += w.get_chunks + w.put_chunks
        vol = DMAVolume(get_bytes=get_b, put_bytes=put_b, descriptors=descriptors)
        self._dma_volume_cache[key] = vol
        return vol

    def kernel_flops(self, task: Task, patch: Patch) -> int:
        """Counted flops of one kernel execution (perf-counter convention)."""
        if task.kernel_cost is None:
            return 0
        return patch.num_cells * task.kernel_cost.flops_per_cell(self.fast_exp)

    def exp_flops_per_call(self) -> int:
        """Flop cost per exponential under this variant's library."""
        return exp_flops(self.fast_exp)
