"""Tests for the Burgers flop model (Table I) and the simulation component."""

import numpy as np
import pytest

from repro.burgers.component import BurgersProblem
from repro.burgers.flops import (
    BURGERS_KERNEL_COST,
    EXPS_PER_CELL,
    NONEXP_FLOPS_PER_CELL,
    count_kernel_flops,
    flops_per_interior_cell,
    grid_ghosted_cells,
    table1_row,
)
from repro.core.grid import Grid
from repro.core.task import TaskKind
from repro.sunway.perfcounters import FlopCounter


# -- flop model -------------------------------------------------------------------

def test_flops_per_cell_is_paper_311():
    assert flops_per_interior_cell(fast_exp=True) == 311


def test_exp_share_matches_paper():
    """~215 of ~311 flops come from the 6 exponentials."""
    c = FlopCounter(fast_exp=True)
    count_kernel_flops(c, cells=1)
    assert c.report().exp_flops == 216
    assert c.report().exp_share == pytest.approx(216 / 311, abs=1e-9)


def test_breakdown_sums_to_budget():
    c = FlopCounter(fast_exp=True)
    count_kernel_flops(c, cells=10)
    r = c.report()
    assert r.muls == 320 and r.adds == 540 and r.compares == 60 and r.divs == 30
    assert r.total == 3110
    assert r.exp_calls == 10 * EXPS_PER_CELL


def test_nonexp_budget():
    assert NONEXP_FLOPS_PER_CELL == 95
    assert BURGERS_KERNEL_COST.stencil_flops == 95
    assert BURGERS_KERNEL_COST.exp_calls == 6


def test_arithmetic_intensity_19_4():
    """Sec. III-A: ~19.4 flop/byte at 16 bytes per cell."""
    assert BURGERS_KERNEL_COST.arithmetic_intensity() == pytest.approx(19.4, abs=0.1)


def test_ghosted_cells_matches_paper_totals():
    """Table I's Total Cells column is (N+2)^3-style: verified against the
    paper's own numbers."""
    assert grid_ghosted_cells(Grid(extent=(128, 128, 1024))) == 17_339_400
    assert grid_ghosted_cells(Grid(extent=(1024, 1024, 1024))) == 1_080_045_576


def test_table1_trend_rises_toward_311():
    small = table1_row(Grid(extent=(128, 128, 1024)))
    large = table1_row(Grid(extent=(1024, 1024, 1024)))
    assert 298 <= small["flops_per_cell"] <= 304  # paper: 299
    assert 308 <= large["flops_per_cell"] <= 311  # paper: 311
    assert large["flops_per_cell"] > small["flops_per_cell"]


# -- component -------------------------------------------------------------------------

def test_component_task_declarations():
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    tasks = prob.tasks()
    advance = tasks[0]
    assert advance.name == "timeAdvance"
    assert advance.kind is TaskKind.CPE_KERNEL
    assert advance.requires[0].dw == "old" and advance.requires[0].ghosts == 1
    assert advance.computes[0].name == "u"
    norm = tasks[1]
    assert norm.kind is TaskKind.REDUCTION
    assert norm.computes[0].is_reduction

    init = prob.init_tasks()[0]
    assert init.kind is TaskKind.MPE
    assert not init.requires


def test_component_without_reduction():
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    prob = BurgersProblem(grid, with_reduction=False)
    assert [t.name for t in prob.tasks()] == ["timeAdvance"]


def test_component_rejects_unknown_kernel_impl():
    grid = Grid(extent=(8, 8, 8))
    with pytest.raises(ValueError):
        BurgersProblem(grid, kernel_impl="fortran")


def test_stable_dt_is_stable_and_positive():
    grid = Grid(extent=(16, 16, 16), layout=(2, 2, 2))
    prob = BurgersProblem(grid)
    dt = prob.stable_dt()
    dx = grid.spacing[0]
    assert 0 < dt < dx  # far below the advective CFL alone
    # halving safety halves dt
    assert prob.stable_dt(safety=0.25) == pytest.approx(dt / 2)


def test_kernel_impls_produce_identical_runs():
    """Full runs through the controller with each kernel implementation
    give bitwise-identical fields (the Algorithm 1 == Algorithm 2 claim
    at system level)."""
    from repro.core.controller import SimulationController

    fields = {}
    for impl in ("numpy", "cell_loop", "simd"):
        grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
        prob = BurgersProblem(grid, kernel_impl=impl)
        ctl = SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=2, mode="async", real=True
        )
        res = ctl.run(nsteps=2, dt=prob.stable_dt())
        fields[impl] = {
            var.patch.patch_id: var.interior.copy()
            for dw in res.final_dws
            for var in dw.grid_variables()
        }
    for impl in ("cell_loop", "simd"):
        for pid in fields["numpy"]:
            assert np.array_equal(fields["numpy"][pid], fields[impl][pid]), (impl, pid)


def test_fast_exp_component_close_but_not_identical():
    """Sec. VI-C: the fast library shifts results slightly but acceptably."""
    from repro.core.controller import SimulationController

    outs = {}
    for fast in (False, True):
        grid = Grid(extent=(8, 8, 8), layout=(1, 1, 1))
        prob = BurgersProblem(grid, fast_exp=fast, with_reduction=False)
        ctl = SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=1, mode="async", real=True
        )
        res = ctl.run(nsteps=3, dt=prob.stable_dt())
        outs[fast] = next(iter(res.final_dws[0].grid_variables())).interior.copy()
    assert not np.array_equal(outs[False], outs[True])
    assert np.allclose(outs[False], outs[True], rtol=1e-3)
