"""Tests for the load balancer, cost model and tracer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import SunwayCostModel
from repro.core.grid import Grid
from repro.core.loadbalancer import LoadBalancer
from repro.core.task import Task, TaskKind
from repro.core.trace import Span, Tracer
from repro.sunway.corerates import KernelCost


# -- LoadBalancer ----------------------------------------------------------------

GRID = Grid(extent=(16, 16, 16), layout=(4, 4, 2))  # 32 patches


def test_all_strategies_cover_all_patches():
    for strategy in LoadBalancer.STRATEGIES:
        assignment = LoadBalancer(strategy).assign(GRID, 4)
        assert set(assignment) == {p.patch_id for p in GRID.patches()}
        assert set(assignment.values()) == {0, 1, 2, 3}


def test_balance_even_division():
    for strategy in LoadBalancer.STRATEGIES:
        assignment = LoadBalancer(strategy).assign(GRID, 8)
        counts = LoadBalancer.load_counts(assignment, 8)
        assert counts == [4] * 8, strategy


def test_balance_uneven_division():
    assignment = LoadBalancer("sfc").assign(GRID, 5)
    counts = LoadBalancer.load_counts(assignment, 5)
    assert sum(counts) == 32
    assert max(counts) - min(counts) <= 1


def test_sfc_keeps_ranks_spatially_compact():
    """Morton chunks should cut fewer remote faces than round-robin."""

    def remote_faces(assignment):
        n = 0
        for p in GRID.patches():
            for _a, _s, nb in GRID.face_neighbors(p):
                if assignment[p.patch_id] != assignment[nb.patch_id]:
                    n += 1
        return n

    sfc = remote_faces(LoadBalancer("sfc").assign(GRID, 8))
    rr = remote_faces(LoadBalancer("roundrobin").assign(GRID, 8))
    assert sfc < rr


def test_rank_patches_helper():
    assignment = LoadBalancer("block").assign(GRID, 4)
    mine = LoadBalancer.rank_patches(assignment, 0)
    assert mine == sorted(mine)
    assert all(assignment[p] == 0 for p in mine)


def test_validation():
    with pytest.raises(ValueError):
        LoadBalancer("magic")
    with pytest.raises(ValueError):
        LoadBalancer().assign(GRID, 0)
    with pytest.raises(ValueError, match="one patch per CG"):
        LoadBalancer().assign(GRID, 33)


def test_deterministic():
    a = LoadBalancer("sfc").assign(GRID, 4)
    b = LoadBalancer("sfc").assign(GRID, 4)
    assert a == b


# -- SunwayCostModel ----------------------------------------------------------------

KERNEL = Task(
    "k",
    kind=TaskKind.CPE_KERNEL,
    kernel_cost=KernelCost(stencil_flops=95, exp_calls=6),
    mpe_action=lambda ctx: None,
)
PAPER_GRID = Grid(extent=(128, 128, 1024), layout=(8, 8, 2))
PATCH = PAPER_GRID.patch((0, 0, 0))  # 16x16x512, on the domain corner


def test_cpe_kernel_time_positive_and_cached():
    cm = SunwayCostModel()
    t1 = cm.cpe_kernel_time(KERNEL, PATCH)
    t2 = cm.cpe_kernel_time(KERNEL, PATCH)
    assert t1 > 0 and t1 == t2


def test_simd_kernel_faster():
    scalar = SunwayCostModel(simd=False).cpe_kernel_time(KERNEL, PATCH)
    simd = SunwayCostModel(simd=True).cpe_kernel_time(KERNEL, PATCH)
    assert 1.5 < scalar / simd < 3.0


def test_mpe_kernel_much_slower_than_cluster():
    cm = SunwayCostModel()
    assert cm.mpe_kernel_time(KERNEL, PATCH) > 2 * cm.cpe_kernel_time(KERNEL, PATCH)


def test_ieee_exp_variant_slower():
    fast = SunwayCostModel(fast_exp=True).cpe_kernel_time(KERNEL, PATCH)
    ieee = SunwayCostModel(fast_exp=False).cpe_kernel_time(KERNEL, PATCH)
    assert ieee > fast


def test_async_dma_extension_not_slower():
    base = SunwayCostModel(async_dma=False).cpe_kernel_time(KERNEL, PATCH)
    dbuf = SunwayCostModel(async_dma=True).cpe_kernel_time(KERNEL, PATCH)
    assert dbuf <= base


def test_cpe_groups_use_fewer_cpes():
    whole = SunwayCostModel(cpe_groups=1).cpe_kernel_time(KERNEL, PATCH)
    quarter = SunwayCostModel(cpe_groups=4).cpe_kernel_time(KERNEL, PATCH)
    assert quarter > whole  # 16 CPEs per group take longer per kernel


def test_mpe_part_time_counts_boundary_ghosts():
    cm = SunwayCostModel()
    corner = PAPER_GRID.patch((0, 0, 0))
    interior_xy = PAPER_GRID.patch((3, 3, 0))  # boundary only in z
    assert cm.mpe_part_time(KERNEL, corner, PAPER_GRID) > cm.mpe_part_time(
        KERNEL, interior_xy, PAPER_GRID
    )
    no_mpe_part = Task("n", kind=TaskKind.CPE_KERNEL, kernel_cost=KERNEL.kernel_cost)
    assert cm.mpe_part_time(no_mpe_part, corner, PAPER_GRID) == 0.0


def test_kernel_flops_matches_table1_budget():
    cm = SunwayCostModel(fast_exp=True)
    assert cm.kernel_flops(KERNEL, PATCH) == PATCH.num_cells * 311


def test_missing_kernel_cost_raises():
    plain = Task("m", kind=TaskKind.MPE)
    cm = SunwayCostModel()
    with pytest.raises(ValueError):
        cm.cpe_kernel_time(plain, PATCH)
    assert cm.kernel_flops(plain, PATCH) == 0


# -- Tracer --------------------------------------------------------------------------

def test_span_validation():
    with pytest.raises(ValueError):
        Span(0, "mpe", "x", 2.0, 1.0)
    assert Span(0, "mpe", "x", 1.0, 3.0).duration == 2.0


def test_tracer_busy_time_merges_overlaps():
    tr = Tracer()
    tr.record(0, "mpe", "a", 0.0, 2.0)
    tr.record(0, "mpe", "b", 1.0, 3.0)  # overlapping spans union to [0,3]
    tr.record(0, "mpe", "c", 5.0, 6.0)
    assert tr.busy_time(0, "mpe") == pytest.approx(4.0)


def test_tracer_overlap_time():
    tr = Tracer()
    tr.record(0, "mpe", "pack", 1.0, 4.0)
    tr.record(0, "cpe", "kernel", 2.0, 6.0)
    assert tr.overlap_time(0) == pytest.approx(2.0)
    assert tr.overlap_time(1) == 0.0


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    tr.record(0, "mpe", "a", 0.0, 1.0)
    assert tr.spans == []


def test_timeline_render():
    tr = Tracer()
    tr.record(0, "mpe", "a", 0.0, 1.0)
    tr.record(0, "cpe", "k", 0.5, 2.0)
    art = tr.timeline(0, width=40)
    assert "mpe" in art and "cpe" in art and "#" in art
    assert tr.timeline(3) == "rank 3: (no spans)"


@settings(deadline=None, max_examples=30)
@given(
    spans=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 10)), min_size=1, max_size=20
    )
)
def test_property_overlap_bounded_by_busy(spans):
    tr = Tracer()
    for i, (t0, d) in enumerate(spans):
        lane = "mpe" if i % 2 else "cpe"
        tr.record(0, lane, f"s{i}", t0, t0 + d)
    ov = tr.overlap_time(0)
    assert ov <= tr.busy_time(0, "mpe") + 1e-9
    assert ov <= tr.busy_time(0, "cpe") + 1e-9


def test_tracer_summarize_folds_task_names():
    tr = Tracer()
    tr.record(0, "mpe", "mpe-part:timeAdvance@p3", 0.0, 1.0)
    tr.record(0, "mpe", "mpe-part:timeAdvance@p4", 1.0, 3.0)
    tr.record(0, "cpe", "timeAdvance@p3", 0.0, 5.0)
    tr.record(1, "mpe", "copy", 0.0, 0.5)
    summary = tr.summarize(rank=0)
    assert summary[("mpe-part:timeAdvance", "mpe")]["count"] == 2
    assert summary[("mpe-part:timeAdvance", "mpe")]["total"] == pytest.approx(3.0)
    assert summary[("mpe-part:timeAdvance", "mpe")]["mean"] == pytest.approx(1.5)
    assert ("copy", "mpe") not in summary  # rank filter
    assert tr.summarize()[("copy", "mpe")]["count"] == 1


def test_tracer_summarize_keeps_lanes_distinct():
    # regression: the same folded activity name on both lanes used to be
    # merged into one entry, mixing MPE seconds into CPE totals
    tr = Tracer()
    tr.record(0, "cpe", "timeAdvance@p1", 0.0, 5.0)
    tr.record(0, "mpe", "timeAdvance@p1", 0.0, 1.0)  # e.g. an MPE fallback
    summary = tr.summarize(rank=0)
    assert summary[("timeAdvance", "cpe")]["total"] == pytest.approx(5.0)
    assert summary[("timeAdvance", "cpe")]["count"] == 1
    assert summary[("timeAdvance", "mpe")]["total"] == pytest.approx(1.0)
    assert summary[("timeAdvance", "mpe")]["lane"] == "mpe"


def test_tracer_chrome_export():
    import json

    tr = Tracer()
    tr.record(0, "mpe", "pack", 0.0, 1e-3)
    tr.record(0, "cpe", "kernel", 0.0, 2e-3)
    tr.record(1, "mpe", "pack", 0.0, 1e-3)
    events = tr.to_chrome_trace()
    json.dumps(events)  # must be serializable
    metas = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    # 2 process_name (ranks 0, 1) + 3 thread_name (lanes) metadata events
    process_metas = [m for m in metas if m["name"] == "process_name"]
    thread_metas = [m for m in metas if m["name"] == "thread_name"]
    assert len(process_metas) == 2 and len(thread_metas) == 3
    assert {m["args"]["name"] for m in process_metas} == {"rank 0", "rank 1"}
    assert len(spans) == 3
    kernel = next(e for e in spans if e["name"] == "kernel")
    assert kernel["dur"] == pytest.approx(2000.0)  # microseconds
    assert kernel["pid"] == 0
    # span events are sorted for stable diffs
    keys = [(e["ts"], e["pid"], e["tid"]) for e in spans]
    assert keys == sorted(keys)
