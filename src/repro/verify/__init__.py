"""``repro.verify`` — schedule invariant checking and differential
verification.

Two halves:

* the **online validator** (:class:`ScheduleValidator`) — a pure,
  non-perturbing observer of the task-lifecycle bus, the data
  warehouses, and the completion flags, checking the invariant catalog
  (:data:`~repro.verify.invariants.CATALOG`) as a run unfolds;
* the **differential harness** (:func:`run_differential`, exposed as the
  ``repro verify`` CLI) — the same problem across every execution mode,
  selection policy, and fault seed, asserting bitwise-identical physics
  and zero violations, and emitting a minimized
  :class:`~repro.verify.bundle.ReproBundle` on failure.

See ``docs/VERIFICATION.md``.
"""

from repro.verify.bundle import ReproBundle
from repro.verify.differential import (
    CaseResult,
    DEFAULT_MODES,
    DEFAULT_SEEDS,
    check_nonperturbation,
    default_policies,
    fault_config_for,
    fields_identical,
    fields_of,
    run_case,
    run_differential,
)
from repro.verify.invariants import CATALOG, Invariant, VerificationError, Violation
from repro.verify.replay import EventRecorder, RecordedEvent, replay
from repro.verify.validator import ScheduleValidator

__all__ = [
    "CATALOG",
    "CaseResult",
    "DEFAULT_MODES",
    "DEFAULT_SEEDS",
    "EventRecorder",
    "Invariant",
    "RecordedEvent",
    "ReproBundle",
    "ScheduleValidator",
    "VerificationError",
    "Violation",
    "check_nonperturbation",
    "default_policies",
    "fault_config_for",
    "fields_identical",
    "fields_of",
    "replay",
    "run_case",
    "run_differential",
]
