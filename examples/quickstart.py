#!/usr/bin/env python
"""Quickstart: solve the model Burgers problem on the Uintah-style runtime.

Runs a small 3-D Burgers simulation with real numerics on 4 simulated
Sunway core-groups using the paper's asynchronous scheduler, then checks
the result against the exact solution.

Usage::

    python examples/quickstart.py
"""

from repro.burgers import BurgersProblem, solution_errors
from repro.core.controller import SimulationController
from repro.core.grid import Grid


def main() -> None:
    # A 32^3 grid split into 2x2x2 patches (the paper's real grids go up
    # to 1024^3 with an 8x8x2 layout; see examples/strong_scaling_mini.py).
    grid = Grid(extent=(32, 32, 32), layout=(2, 2, 2))

    # The application side: declares labels and coarse tasks; everything
    # else (ghost exchange, MPI, offload, scheduling) is the runtime's job.
    problem = BurgersProblem(grid)

    controller = SimulationController(
        grid,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=4,            # four simulated SW26010 core-groups
        mode="async",           # the paper's asynchronous scheduler
        real=True,              # actually compute (NumPy kernels)
        trace_enabled=True,
    )

    dt = problem.stable_dt()
    nsteps = 10
    result = controller.run(nsteps=nsteps, dt=dt)

    errors = solution_errors(
        grid, result.final_dws, problem.u_label, t=result.sim_time, nu=problem.nu
    )

    print("Burgers quickstart on the simulated Sunway runtime")
    print("=" * 54)
    print(f"grid                 : {grid.extent}, {grid.num_patches} patches")
    print(f"timesteps            : {nsteps} x dt={dt:.3e}")
    print(f"simulated time/step  : {result.time_per_step * 1e3:.3f} ms")
    print(f"achieved (modelled)  : {result.gflops:.2f} Gflop/s")
    print(f"kernels offloaded    : {result.stats.kernels_offloaded}")
    print(f"MPI messages         : {result.stats.messages_sent}")
    print(f"max|u| reduction     : "
          f"{result.final_dws[0].get_reduction(problem.norm_label):.6f}")
    print(f"error vs exact       : Linf={errors['linf']:.3e}  L2={errors['l2']:.3e}")
    print()
    print("Rank 0 timeline ('=' MPE busy, '#' CPE kernel):")
    print(result.trace.timeline(0))


if __name__ == "__main__":
    main()
