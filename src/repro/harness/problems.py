"""The evaluation's problem settings (paper Table III).

"The grid is partitioned into 128 patches with a fixed 8x8x2 patch
layout ... starting from the smallest possible patch, double the size in
a round-robin way among the x and y axes each time, until ... the data
exceeds the memory limit of one CG.  As the tile size used is 16x16x8,
and 64 CPEs per CG are used, the smallest patch is 16x16x512."
"""

from __future__ import annotations

import dataclasses

from repro.core.grid import Grid

#: The evaluation's fixed patch layout: 8 x 8 x 2 = 128 patches.
PATCH_LAYOUT = (8, 8, 2)
#: CG counts swept in the strong-scaling study (Sec. VII-A).
CG_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)
#: Memory a single CG can realistically dedicate to the solution fields
#: (ghost layers included): 2.5 GiB of its 8 GiB — the runtime, the
#: toolchain, MPI buffers and pack scratch consume the rest.  Against
#: the ghosted per-rank demand this reproduces Table III's "Min" column,
#: including the paper's observation that 64x64x512 "crashes with memory
#: allocation errors when using 1 CG".
USABLE_BYTES_PER_CG = int(2.5 * 1024**3)


@dataclasses.dataclass(frozen=True)
class ProblemSetting:
    """One row of Table III."""

    patch_extent: tuple[int, int, int]

    @property
    def name(self) -> str:
        """The paper's problem name, e.g. ``"16x16x512"``."""
        return "x".join(str(e) for e in self.patch_extent)

    @property
    def grid_extent(self) -> tuple[int, int, int]:
        """Global grid size under the fixed 8x8x2 layout."""
        return tuple(  # type: ignore[return-value]
            p * l for p, l in zip(self.patch_extent, PATCH_LAYOUT)
        )

    def grid(self) -> Grid:
        """The mesh object for this problem."""
        return Grid(extent=self.grid_extent, layout=PATCH_LAYOUT)

    @property
    def memory_bytes(self) -> int:
        """Table III "Mem": two 8-byte fields over the grid."""
        nx, ny, nz = self.grid_extent
        return nx * ny * nz * 8 * 2

    @property
    def ghosted_memory_bytes(self) -> int:
        """Allocated bytes including each patch's ghost layer (2 fields)."""
        px, py, pz = self.patch_extent
        per_patch = (px + 2) * (py + 2) * (pz + 2) * 8 * 2
        return per_patch * 128

    @property
    def min_cgs(self) -> int:
        """Smallest CG count the problem fits on (Table III "Min")."""
        cgs = 1
        while self.ghosted_memory_bytes / cgs > USABLE_BYTES_PER_CG:
            cgs *= 2
        return cgs

    def cg_counts(self) -> list[int]:
        """The strong-scaling sweep for this problem: min CGs .. 128."""
        return [c for c in CG_COUNTS if c >= self.min_cgs]


def _double_round_robin() -> list[ProblemSetting]:
    """Generate Table III's suite by the paper's doubling rule."""
    out = []
    px, py, pz = 16, 16, 512
    axis = 1  # first doubling applies to y (16x16 -> 16x32)
    while True:
        p = ProblemSetting((px, py, pz))
        if p.memory_bytes > 128 * USABLE_BYTES_PER_CG * 2:  # beyond the suite
            break
        out.append(p)
        if axis == 1:
            py *= 2
        else:
            px *= 2
        axis ^= 1
        if px > 128 or py > 128:
            break
    return out


#: The seven problems of Table III, smallest to largest.
PROBLEMS: tuple[ProblemSetting, ...] = tuple(
    ProblemSetting(pe)
    for pe in [
        (16, 16, 512),
        (16, 32, 512),
        (32, 32, 512),
        (32, 64, 512),
        (64, 64, 512),
        (64, 128, 512),
        (128, 128, 512),
    ]
)


def problem_by_name(name: str) -> ProblemSetting:
    """Look up a Table III problem by its ``PXxPYxPZ`` name."""
    for p in PROBLEMS:
        if p.name == name:
            return p
    raise KeyError(f"unknown problem {name!r}; have {[p.name for p in PROBLEMS]}")


def small_medium_large() -> tuple[ProblemSetting, ProblemSetting, ProblemSetting]:
    """The paper's three 'typical' problems (Sec. VII-D / Figs. 6-8)."""
    return (
        problem_by_name("16x16x512"),
        problem_by_name("32x64x512"),
        problem_by_name("128x128x512"),
    )
