"""Collection-layer tests: buckets and counters agree with the scheduler's
own stats, and attaching telemetry never perturbs the simulated schedule."""

import pytest

from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.telemetry import RunTelemetry

from tests.telemetry.conftest import CGS, NSTEPS


def _counter(bundle, name):
    return bundle.telemetry.registry.counter(name).value


def test_counters_agree_with_scheduler_stats(bundle):
    stats = bundle.result.stats
    assert _counter(bundle, "tasks.done") == stats.tasks_run
    assert _counter(bundle, "kernels.offloaded") == stats.kernels_offloaded
    assert _counter(bundle, "ghost.msgs.sent") == stats.messages_sent
    assert _counter(bundle, "ghost.bytes.sent") == stats.bytes_sent
    assert _counter(bundle, "ghost.msgs.recv") == stats.messages_received
    assert _counter(bundle, "comm.local_copies") == stats.local_copies
    assert _counter(bundle, "comm.reductions") == stats.reductions
    assert _counter(bundle, "dw.scrubbed") == stats.scrubbed
    assert _counter(bundle, "flops.counted") == stats.kernel_flops
    assert _counter(bundle, "mpe.idle.seconds") == pytest.approx(
        sum(rs.idle_wait for rs in bundle.result.rank_stats)
    )


def test_wire_counters_agree_with_fabric(bundle):
    assert _counter(bundle, "net.messages") == bundle.result.messages_sent
    assert _counter(bundle, "net.bytes") == bundle.result.bytes_sent


def test_step_buckets_partition_run_totals(bundle):
    """Per-(rank, step) buckets must sum to the whole-run counters.

    Nothing may leak into a step-0 bucket: the controller instruments
    the timestep schedulers only, so every event lands in steps 1..N.
    """
    tele = bundle.telemetry
    assert not any(s == 0 for (_r, s) in tele.step_buckets)
    for key, total in (
        ("tasks_done", bundle.result.stats.tasks_run),
        ("msgs_sent", bundle.result.stats.messages_sent),
        ("bytes_sent", bundle.result.stats.bytes_sent),
        ("kernels_offloaded", bundle.result.stats.kernels_offloaded),
        ("flops", bundle.result.stats.kernel_flops),
    ):
        folded = sum(tele.step_totals(s).get(key, 0) for s in range(1, NSTEPS + 1))
        assert folded == total, key


def test_dma_volume_counters(bundle):
    """DMA traffic: every offloaded kernel moves its tile plan's bytes."""
    get_b = _counter(bundle, "dma.get.bytes")
    put_b = _counter(bundle, "dma.put.bytes")
    assert get_b > 0 and put_b > 0
    # ghosted reads always exceed interior writes for a stencil kernel
    assert get_b > put_b
    assert _counter(bundle, "dma.descriptors") > 0
    # per-step attribution folds to the same total
    folded = sum(
        bundle.telemetry.step_totals(s).get("dma_bytes", 0)
        for s in range(1, NSTEPS + 1)
    )
    assert folded == get_b + put_b


def test_queue_depth_histograms_sampled(bundle):
    reg = bundle.telemetry.registry
    for name in ("sched.ready_depth", "cpe.inflight", "comm.workq_depth"):
        h = reg.histogram(name)
        assert h.count > 0, name
    # one loop-iteration sample per histogram, same loop
    assert reg.histogram("sched.ready_depth").count == reg.histogram("cpe.inflight").count


def test_kernel_duration_histograms(bundle):
    reg = bundle.telemetry.registry
    h = reg.histogram("kernel.seconds")
    assert h.count == bundle.result.stats.kernels_offloaded
    # per-task-kind breakdown exists and folds back to the total
    per_task = reg.histogram("kernel.seconds.timeAdvance")
    assert per_task.count == h.count
    assert per_task.total == pytest.approx(h.total)


def test_resilience_counters_zero_in_fault_free_run(bundle):
    reg = bundle.telemetry.registry.snapshot()
    for name in (
        "resilience.kernel_timeouts",
        "resilience.kernel_retries",
        "resilience.mpe_fallbacks",
        "resilience.stragglers",
        "net.retransmits",
    ):
        assert reg.get(name, {"value": 0})["value"] == 0, name


def _tiny_run(telemetry=None):
    grid = Grid(extent=(8, 8, 16), layout=(2, 2, 1))
    problem = BurgersProblem(grid)
    controller = SimulationController(
        grid,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=2,
        mode="async",
        real=True,
        telemetry=telemetry,
    )
    return controller.run(nsteps=3, dt=problem.stable_dt())


def test_telemetry_never_perturbs_the_schedule():
    """The golden-equivalence guarantee: observing changes nothing."""
    import numpy as np

    plain = _tiny_run()
    tele = RunTelemetry()
    observed = _tiny_run(telemetry=tele)
    assert observed.total_time == plain.total_time  # bit-identical, no approx
    assert observed.step_times == plain.step_times
    assert observed.rank_step_ends == plain.rank_step_ends
    for dw_a, dw_b in zip(plain.final_dws, observed.final_dws):
        for va, vb in zip(dw_a.grid_variables(), dw_b.grid_variables()):
            assert np.array_equal(va.interior, vb.interior)
    # and the observer did actually observe
    assert tele.registry.counter("tasks.done").value == observed.stats.tasks_run


def test_telemetry_reaches_timestep_schedulers_only():
    grid = Grid(extent=(8, 8, 16), layout=(2, 2, 1))
    problem = BurgersProblem(grid)
    tele = RunTelemetry()
    controller = SimulationController(
        grid,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=2,
        mode="async",
        real=True,
        telemetry=tele,
    )
    assert all(s.telemetry is tele for s in controller.schedulers)
    assert all(s.telemetry is None for s in controller.init_schedulers)
