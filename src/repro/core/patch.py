"""Patches and index-space regions.

Uintah "subdivides the computational grid into patches, and assigns
groups of patches to distributed memory computing nodes" (paper Sec. II).
A :class:`Patch` is an axis-aligned box of cells in the global index
space; a :class:`Region` is the same thing without an identity, used for
ghost-exchange geometry.

Index conventions: cells are identified by integer triples ``(i, j, k)``;
boxes are half-open, ``low`` inclusive, ``high`` exclusive, per axis
``(x, y, z)``.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

#: Face identifiers: (axis, side) with side -1 = low face, +1 = high face.
FACES: tuple[tuple[int, int], ...] = tuple(
    (axis, side) for axis in range(3) for side in (-1, 1)
)


@dataclasses.dataclass(frozen=True)
class Region:
    """A half-open box of cells in global index space."""

    low: tuple[int, int, int]
    high: tuple[int, int, int]

    def __post_init__(self) -> None:
        for axis in range(3):
            if self.low[axis] > self.high[axis]:
                raise ValueError(f"inverted region on axis {axis}: {self.low} .. {self.high}")

    @property
    def extent(self) -> tuple[int, int, int]:
        """Cells per axis."""
        return tuple(h - l for l, h in zip(self.low, self.high))  # type: ignore[return-value]

    @property
    def num_cells(self) -> int:
        """Total cells in the region."""
        ex, ey, ez = self.extent
        return ex * ey * ez

    @property
    def empty(self) -> bool:
        """True if any axis has zero extent."""
        return any(h <= l for l, h in zip(self.low, self.high))

    def intersect(self, other: "Region") -> "Region":
        """The overlap of two regions (possibly empty)."""
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(min(a, b), l) for a, b, l in zip(self.high, other.high, low))
        return Region(low, high)  # type: ignore[arg-type]

    def grown(self, ghosts: int) -> "Region":
        """The region expanded by ``ghosts`` cells on every side."""
        if ghosts < 0:
            raise ValueError(f"ghosts must be >= 0, got {ghosts}")
        return Region(
            tuple(l - ghosts for l in self.low),  # type: ignore[arg-type]
            tuple(h + ghosts for h in self.high),  # type: ignore[arg-type]
        )

    def contains(self, cell: tuple[int, int, int]) -> bool:
        """Whether ``cell`` lies inside the region."""
        return all(l <= c < h for l, c, h in zip(self.low, cell, self.high))

    def cells(self) -> _t.Iterator[tuple[int, int, int]]:
        """Iterate all cells (for tests; production code slices arrays)."""
        return itertools.product(*(range(l, h) for l, h in zip(self.low, self.high)))


@dataclasses.dataclass(frozen=True)
class Patch:
    """One mesh patch: a region with an identity and a grid position.

    ``index`` is the patch's coordinate in the patch layout (e.g. the
    paper's fixed 8x8x2 layout), ``patch_id`` its global serial number.
    """

    patch_id: int
    index: tuple[int, int, int]
    region: Region

    @property
    def low(self) -> tuple[int, int, int]:
        """Inclusive low cell corner."""
        return self.region.low

    @property
    def high(self) -> tuple[int, int, int]:
        """Exclusive high cell corner."""
        return self.region.high

    @property
    def extent(self) -> tuple[int, int, int]:
        """Patch size in cells per axis."""
        return self.region.extent

    @property
    def num_cells(self) -> int:
        """Interior cells of the patch."""
        return self.region.num_cells

    def face_region(self, axis: int, side: int, width: int = 1) -> Region:
        """The slab of *interior* cells on a face, ``width`` cells deep.

        This is the data a neighbour needs as its ghost layer.
        """
        low = list(self.low)
        high = list(self.high)
        if side < 0:
            high[axis] = low[axis] + width
        else:
            low[axis] = high[axis] - width
        return Region(tuple(low), tuple(high))  # type: ignore[arg-type]

    def ghost_region(self, axis: int, side: int, width: int = 1) -> Region:
        """The slab of ghost cells just outside a face, ``width`` deep."""
        low = list(self.low)
        high = list(self.high)
        if side < 0:
            high[axis] = low[axis]
            low[axis] = low[axis] - width
        else:
            low[axis] = high[axis]
            high[axis] = high[axis] + width
        return Region(tuple(low), tuple(high))  # type: ignore[arg-type]

    @property
    def surface_cells(self) -> int:
        """Total interior cells lying on any face (ghost-source volume)."""
        ex, ey, ez = self.extent
        if min(ex, ey, ez) <= 2:
            return self.num_cells
        return self.num_cells - (ex - 2) * (ey - 2) * (ez - 2)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Patch {self.patch_id} idx={self.index} {self.low}..{self.high}>"
