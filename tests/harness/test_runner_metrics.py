"""Tests for the experiment runner, metrics and paper-shape assertions.

These are the executable form of the reproduction's claims: on the
calibrated model, async beats sync, offload beats the MPE, SIMD helps,
larger problems are more efficient — the shapes of paper Sec. VII.
"""

import pytest

from repro.harness import metrics
from repro.harness.problems import problem_by_name
from repro.harness.runner import clear_cache, run_experiment
from repro.harness.variants import variant_by_name

SMALL = problem_by_name("16x16x512")
MEDIUM = problem_by_name("32x64x512")


@pytest.fixture(scope="module")
def quick():
    """Shared 3-step runs for this module (cached by the runner)."""

    def go(problem, variant, cgs):
        return run_experiment(
            problem, variant_by_name(variant), cgs, nsteps=3
        )

    return go


def test_runner_caches(quick):
    a = quick(SMALL, "acc.async", 4)
    b = quick(SMALL, "acc.async", 4)
    assert a is b


def test_runner_rejects_insufficient_cgs():
    big = problem_by_name("128x128x512")
    with pytest.raises(ValueError, match="at least 8"):
        run_experiment(big, variant_by_name("acc.async"), 2, nsteps=1)


def test_gflops_and_efficiency_consistent(quick):
    r = quick(SMALL, "acc_simd.async", 4)
    assert r.gflops > 0
    assert 0 < r.fp_efficiency < 0.05  # paper: around 1% of peak
    assert r.gflops * 1e9 == pytest.approx(r.flops_per_step / r.time_per_step)


def test_flops_per_step_matches_analytic(quick):
    r = quick(SMALL, "acc.async", 4)
    grid_cells = 128 * 128 * 1024
    assert r.flops_per_step == pytest.approx(grid_cells * 311, rel=1e-12)


# -- paper shapes ------------------------------------------------------------------------

def test_shape_async_beats_sync(quick):
    for cgs in (1, 8):
        s = quick(SMALL, "acc.sync", cgs)
        a = quick(SMALL, "acc.async", cgs)
        assert metrics.async_improvement(s, a) > 0.02, cgs


def test_shape_vectorized_improvement_smaller(quick):
    """Sec. VII-C: 'Smaller improvements are seen with the vectorized
    kernel than the non-vectorized kernel'."""
    s, a = quick(SMALL, "acc.sync", 4), quick(SMALL, "acc.async", 4)
    vs, va = quick(SMALL, "acc_simd.sync", 4), quick(SMALL, "acc_simd.async", 4)
    assert metrics.async_improvement(vs, va) < metrics.async_improvement(s, a)


def test_shape_offload_boost_in_paper_band(quick):
    """Sec. VII-D: offload gives 2.7-6.0x (we accept a slightly wider band)."""
    host = quick(SMALL, "host.sync", 4)
    acc = quick(SMALL, "acc.async", 4)
    boost = metrics.optimization_boost(host, acc)
    assert 2.0 < boost < 7.5


def test_shape_simd_gives_further_boost(quick):
    acc = quick(SMALL, "acc.async", 4)
    simd = quick(SMALL, "acc_simd.async", 4)
    extra = metrics.optimization_boost(acc, simd) * (
        acc.time_per_step / acc.time_per_step
    )
    extra = acc.time_per_step / simd.time_per_step
    assert 1.2 < extra < 2.5  # paper: 1.3-2.2x


def test_shape_strong_scaling_speedup(quick):
    one = quick(SMALL, "acc.async", 1)
    eight = quick(SMALL, "acc.async", 8)
    assert 3.0 < metrics.speedup(one, eight) <= 8.0
    eff = metrics.scaling_efficiency(one, eight)
    assert 0.4 < eff <= 1.0


def test_shape_bigger_problem_more_efficient(quick):
    s = quick(SMALL, "acc_simd.async", 8)
    m = quick(MEDIUM, "acc_simd.async", 8)
    assert m.fp_efficiency > s.fp_efficiency


def test_metrics_validate_comparability(quick):
    a = quick(SMALL, "acc.sync", 4)
    b = quick(MEDIUM, "acc.async", 4)
    with pytest.raises(ValueError):
        metrics.async_improvement(a, b)
    with pytest.raises(ValueError):
        metrics.scaling_efficiency(a, b)
    with pytest.raises(ValueError):
        metrics.optimization_boost(a, b)


def test_clear_cache(quick):
    a = quick(SMALL, "acc.async", 2)
    clear_cache()
    b = quick(SMALL, "acc.async", 2)
    assert a is not b
    assert a.time_per_step == b.time_per_step  # deterministic DES


def test_memory_crash_mechanism_matches_paper():
    """The Table III footnote: 64x64x512 'crashes with memory allocation
    errors when using 1 CG' — reproduced as a MemoryError from the
    controller's per-rank accounting."""
    from repro.burgers import BurgersProblem
    from repro.core.controller import SimulationController
    from repro.harness.problems import USABLE_BYTES_PER_CG

    p = problem_by_name("64x64x512")
    grid = p.grid()
    prob = BurgersProblem(grid)
    with pytest.raises(MemoryError, match="memory allocation errors"):
        SimulationController(
            grid, prob.tasks(), prob.init_tasks(), num_ranks=1, real=False,
            memory_limit_bytes=USABLE_BYTES_PER_CG,
        )
    # the paper's workaround: 2 CGs fit
    SimulationController(
        grid, prob.tasks(), prob.init_tasks(), num_ranks=2, real=False,
        memory_limit_bytes=USABLE_BYTES_PER_CG,
    )


def test_noisy_repeats_take_best(quick):
    """With machine noise, best-of-N approaches the quiet-machine time
    from above (paper Sec. VII-A protocol)."""
    from repro.core.noise import NoiseModel

    clean = quick(SMALL, "acc.async", 4)
    noisy1 = run_experiment(
        SMALL, variant_by_name("acc.async"), 4, nsteps=3,
        noise=NoiseModel(seed=7, kernel_cv=0.2, mpe_cv=0.2), repeats=1,
    )
    noisy5 = run_experiment(
        SMALL, variant_by_name("acc.async"), 4, nsteps=3,
        noise=NoiseModel(seed=7, kernel_cv=0.2, mpe_cv=0.2), repeats=5,
    )
    assert noisy1.time_per_step > clean.time_per_step  # noise only slows
    assert noisy5.time_per_step <= noisy1.time_per_step  # best-of-5 helps
    assert noisy5.time_per_step >= clean.time_per_step  # but never beats quiet


def test_experiments_are_fault_free(quick):
    """Without an injector no recovery machinery may ever fire — the
    resilience counter block is structurally zero."""
    r = quick(SMALL, "acc.async", 4)
    assert metrics.is_fault_free(r)
    assert all(v == 0 for v in metrics.resilience_counters(r).values())


def test_resilience_overhead_metric():
    assert metrics.resilience_overhead(2.0, 2.5) == pytest.approx(0.25)
    assert metrics.resilience_overhead(2.0, 2.0) == 0.0
    with pytest.raises(ValueError):
        metrics.resilience_overhead(0.0, 1.0)
