"""Old/new data warehouses.

"The *old* data warehouse holds the data calculated in the previous
timestep.  The coarse task takes what it needs from the old data
warehouse and produces results that then populate the *new* data
warehouse ... after the timestep is completed, the new data warehouse
becomes the old data warehouse for the next timestep." (paper Sec. II)

Each simulated rank owns one old and one new :class:`DataWarehouse` per
timestep, holding only its local patches' variables (plus whatever ghost
data has been unpacked into their halos).  Reduction variables live in
the warehouse as scalars.
"""

from __future__ import annotations

import typing as _t

from repro.core.patch import Patch
from repro.core.variables import CCVariable
from repro.core.varlabel import VarLabel


class DataWarehouse:
    """Variable storage for one rank and one timestep generation."""

    def __init__(self, step: int, rank: int = 0):
        self.step = step
        self.rank = rank
        self._grid_vars: dict[tuple[str, int], CCVariable] = {}
        self._reductions: dict[str, float] = {}

    # -- grid variables ----------------------------------------------------------
    def put(self, var: CCVariable) -> None:
        """Store a grid variable; a label/patch pair may only be computed once
        per timestep (Uintah's single-assignment rule)."""
        key = (var.label.name, var.patch.patch_id)
        if key in self._grid_vars:
            raise KeyError(
                f"{var.label.name!r} on patch {var.patch.patch_id} already computed "
                f"in DW step {self.step} (variables are single-assignment)"
            )
        self._grid_vars[key] = var

    def get(self, label: VarLabel, patch: Patch) -> CCVariable:
        """Fetch a grid variable; raises if the task graph never produced it."""
        try:
            return self._grid_vars[(label.name, patch.patch_id)]
        except KeyError:
            raise KeyError(
                f"{label.name!r} on patch {patch.patch_id} not in DW step {self.step} "
                f"(rank {self.rank})"
            ) from None

    def exists(self, label: VarLabel, patch: Patch) -> bool:
        """Whether a grid variable is present."""
        return (label.name, patch.patch_id) in self._grid_vars

    def allocate_and_put(self, label: VarLabel, patch: Patch, ghosts: int = 1) -> CCVariable:
        """Create a zeroed variable, register it, return it (Uintah's
        ``allocateAndPut``)."""
        var = CCVariable(label, patch, ghosts)
        self.put(var)
        return var

    def scrub(self, label: VarLabel, patch: Patch) -> bool:
        """Drop a variable whose consumers have all run (memory reclaim).

        Returns whether the variable was actually present.  Delegates to
        :meth:`scrub_named` so both entry points share one removal path
        (the scheduler counts *logical* scrubs on the lifecycle bus,
        identically in real and model mode — not removals here).
        """
        return self.scrub_named(label.name, patch.patch_id)

    def scrub_named(self, label_name: str, patch_id: int) -> bool:
        """Scrub by key — what the scheduler's scrub machinery uses."""
        return self._grid_vars.pop((label_name, patch_id), None) is not None

    # -- reductions -----------------------------------------------------------------
    def put_reduction(self, label: VarLabel, value: float) -> None:
        """Store a reduced scalar (overwrites: reductions are idempotent)."""
        if not label.is_reduction:
            raise TypeError(f"{label.name!r} is not a reduction label")
        self._reductions[label.name] = float(value)

    def get_reduction(self, label: VarLabel) -> float:
        """Fetch a reduced scalar."""
        if not label.is_reduction:
            raise TypeError(f"{label.name!r} is not a reduction label")
        try:
            return self._reductions[label.name]
        except KeyError:
            raise KeyError(f"reduction {label.name!r} not in DW step {self.step}") from None

    def has_reduction(self, label: VarLabel) -> bool:
        """Whether a reduced scalar is present."""
        return label.name in self._reductions

    # -- inventory -------------------------------------------------------------------
    def grid_variables(self) -> _t.Iterator[CCVariable]:
        """Iterate stored grid variables (deterministic order)."""
        for key in sorted(self._grid_vars):
            yield self._grid_vars[key]

    def __len__(self) -> int:
        return len(self._grid_vars) + len(self._reductions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DataWarehouse step={self.step} rank={self.rank} "
            f"{len(self._grid_vars)} grid vars, {len(self._reductions)} reductions>"
        )
