"""FLOP counting with SW26010 performance-counter semantics.

The paper (Sec. VII-E) counts floating point operations with the precise
hardware counters on the CPEs, noting one idiosyncrasy: *division and
square root count as single operations* even though they take many more
cycles.  Table I is produced the same way.  This module reproduces that
counting convention:

* add/sub/mul/div/sqrt/compare each count as 1;
* a fused multiply-add counts as 2 (one multiply, one add — SW26010's
  counters increment per retired flop, not per instruction);
* an exponential counts as the flop cost of the software library that
  evaluated it (see :mod:`repro.sunway.fastmath`).

Counters are plain value objects; kernels accept an optional counter and
report *analytic* per-cell counts multiplied by the number of cells they
actually touched, which mirrors what the hardware counters observe while
keeping real-numerics runs fast.
"""

from __future__ import annotations

import dataclasses

from repro.sunway.fastmath import exp_flops


@dataclasses.dataclass
class FlopReport:
    """Immutable snapshot of a counter, with derived totals."""

    adds: int = 0
    muls: int = 0
    divs: int = 0
    sqrts: int = 0
    compares: int = 0
    exp_flops: int = 0
    exp_calls: int = 0

    @property
    def total(self) -> int:
        """Total flops, SW26010 convention (div/sqrt = 1 each)."""
        return self.adds + self.muls + self.divs + self.sqrts + self.compares + self.exp_flops

    @property
    def exp_share(self) -> float:
        """Fraction of total flops contributed by exponentials."""
        total = self.total
        return self.exp_flops / total if total else 0.0


class FlopCounter:
    """Accumulating flop counter.

    All ``count_*`` methods take a ``times`` multiplier so a kernel can
    register per-cell costs once per bulk (vectorized) operation.
    """

    def __init__(self, fast_exp: bool = True):
        self.fast_exp = fast_exp
        self._r = FlopReport()

    # -- counting ------------------------------------------------------------
    def count(
        self,
        adds: int = 0,
        muls: int = 0,
        divs: int = 0,
        sqrts: int = 0,
        compares: int = 0,
        exps: int = 0,
        times: int = 1,
    ) -> None:
        """Register operations, each scaled by ``times``."""
        if times < 0:
            raise ValueError(f"times must be >= 0, got {times}")
        r = self._r
        r.adds += adds * times
        r.muls += muls * times
        r.divs += divs * times
        r.sqrts += sqrts * times
        r.compares += compares * times
        if exps:
            r.exp_calls += exps * times
            r.exp_flops += exps * times * exp_flops(self.fast_exp)

    def count_fma(self, times: int = 1) -> None:
        """A fused multiply-add: 2 flops (1 mul + 1 add)."""
        self.count(adds=1, muls=1, times=times)

    # -- reporting -----------------------------------------------------------
    @property
    def total(self) -> int:
        """Total flops so far."""
        return self._r.total

    def report(self) -> FlopReport:
        """A snapshot copy of the current counts."""
        return dataclasses.replace(self._r)

    def reset(self) -> None:
        """Zero all counts."""
        self._r = FlopReport()

    def merge(self, other: "FlopCounter | FlopReport") -> None:
        """Fold another counter/report into this one (cross-CPE reduce)."""
        o = other.report() if isinstance(other, FlopCounter) else other
        r = self._r
        r.adds += o.adds
        r.muls += o.muls
        r.divs += o.divs
        r.sqrts += o.sqrts
        r.compares += o.compares
        r.exp_flops += o.exp_flops
        r.exp_calls += o.exp_calls
