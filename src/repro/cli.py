"""Command-line interface: regenerate the paper's evaluation from a shell.

Examples::

    python -m repro info
    python -m repro table 1
    python -m repro table 5 --nsteps 5
    python -m repro fig 9
    python -m repro run --problem 32x32x512 --variant acc.async --cgs 8
    python -m repro sweep --problem 16x16x512 --variant acc_simd.async
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core.schedulers.selection import POLICIES
from repro.harness import metrics
from repro.harness.problems import PROBLEMS, problem_by_name
from repro.harness.reportfmt import pct, render_table, seconds
from repro.harness.runner import run_experiment, run_instrumented
from repro.harness.variants import VARIANTS, variant_by_name


def _check_outdir(path_str: str | None) -> str | None:
    """Reject an output directory blocked by an existing file.

    Returns an error message (for stderr) or None when the path is
    usable; catching this up front turns a mid-run traceback into a
    clear exit-code-2 diagnosis before any simulation time is spent.
    """
    import pathlib

    if not path_str:
        return None
    path = pathlib.Path(path_str)
    for candidate in [path, *path.parents]:
        if candidate.exists():
            if not candidate.is_dir():
                return (
                    f"cannot write telemetry to {path_str!r}: "
                    f"{candidate} exists and is not a directory"
                )
            break
    return None


def _write_telemetry(outdir: str, bundle) -> None:
    """Write a run's telemetry artifacts (ledger, metrics, trace) to a dir."""
    import json
    import pathlib

    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    bundle.ledger.write(out / "ledger.jsonl")
    (out / "metrics.json").write_text(
        json.dumps(bundle.telemetry.registry.snapshot(), indent=2, sort_keys=True) + "\n"
    )
    (out / "trace.json").write_text(
        json.dumps({"traceEvents": bundle.result.trace.to_chrome_trace()}) + "\n"
    )
    print(
        f"telemetry written to {out}/ (ledger.jsonl, metrics.json, trace.json)",
        file=sys.stderr,
    )


def _cmd_info(_args) -> int:
    from repro.harness.tables import table2, table3, table4

    print(table2())
    print()
    print(table3())
    print()
    print(table4())
    return 0


def _cmd_table(args) -> int:
    from repro.harness import tables

    fns = {
        "1": tables.table1,
        "2": tables.table2,
        "3": tables.table3,
        "4": tables.table4,
        "5": lambda: tables.table5(nsteps=args.nsteps),
        "6": lambda: tables.table6(nsteps=args.nsteps),
        "7": lambda: tables.table7(nsteps=args.nsteps),
    }
    fn = fns.get(args.number)
    if fn is None:
        print(f"no table {args.number!r}; choose from {sorted(fns)}", file=sys.stderr)
        return 2
    print(fn())
    return 0


def _cmd_fig(args) -> int:
    from repro.harness import figures

    fns = {
        "5": lambda: figures.fig5(nsteps=args.nsteps),
        "678": lambda: figures.fig678(nsteps=args.nsteps),
        "6": lambda: figures.fig678(nsteps=args.nsteps),
        "7": lambda: figures.fig678(nsteps=args.nsteps),
        "8": lambda: figures.fig678(nsteps=args.nsteps),
        "9": lambda: figures.fig9(nsteps=args.nsteps),
        "10": lambda: figures.fig10(nsteps=args.nsteps),
    }
    fn = fns.get(args.number)
    if fn is None:
        print(f"no figure {args.number!r}; choose from 5, 6-8, 9, 10", file=sys.stderr)
        return 2
    print(fn())
    return 0


def _cmd_run(args) -> int:
    from repro.burgers.flops import table1_row

    err = _check_outdir(getattr(args, "telemetry_out", None))
    if err is not None:
        print(err, file=sys.stderr)
        return 2
    problem = problem_by_name(args.problem)
    variant = dataclasses.replace(
        variant_by_name(args.variant), select_policy=args.select_policy
    )
    bundle = None
    if getattr(args, "telemetry_out", None):
        bundle = run_instrumented(problem, variant, args.cgs, nsteps=args.nsteps)
        result = bundle.experiment
    else:
        result = run_experiment(problem, variant, args.cgs, nsteps=args.nsteps)
    # Counted-flop accounting in the paper's Table I convention (flops
    # divided over the grid plus one global ghost layer).
    flop_row = table1_row(problem.grid(), fast_exp=variant.cost_model().fast_exp)
    rows = [
        ("problem", result.problem),
        ("variant", result.variant),
        ("select policy", variant.select_policy),
        ("CGs", result.num_cgs),
        ("time/step", seconds(result.time_per_step)),
        ("GFLOP/step (counted)", f"{result.flops_per_step / 1e9:.3f}"),
        ("flops/cell (Table I)", f"{flop_row['flops_per_cell']:.0f}"),
        ("exp flop share", pct(flop_row["exp_share"], 1)),
        ("Gflop/s", f"{result.gflops:.2f}"),
        ("FP efficiency", pct(result.fp_efficiency, 2)),
        ("messages/step", f"{result.messages_per_step:.0f}"),
        ("MB/step on the wire", f"{result.bytes_per_step / 1e6:.1f}"),
    ]
    print(render_table("Experiment result (simulated Sunway time)", ["Metric", "Value"], rows))
    if bundle is not None:
        _write_telemetry(args.telemetry_out, bundle)
    return 0


def _cmd_sweep(args) -> int:
    err = _check_outdir(getattr(args, "telemetry_out", None))
    if err is not None:
        print(err, file=sys.stderr)
        return 2
    problem = problem_by_name(args.problem)
    variant = dataclasses.replace(
        variant_by_name(args.variant), select_policy=args.select_policy
    )
    base = None
    rows = []
    for cgs in problem.cg_counts():
        if getattr(args, "telemetry_out", None):
            bundle = run_instrumented(problem, variant, cgs, nsteps=args.nsteps)
            r = bundle.experiment
            _write_telemetry(f"{args.telemetry_out}/cg{cgs}", bundle)
        else:
            r = run_experiment(problem, variant, cgs, nsteps=args.nsteps)
        base = base or r
        rows.append(
            (
                cgs,
                seconds(r.time_per_step),
                f"{metrics.speedup(base, r):.2f}x",
                pct(metrics.scaling_efficiency(base, r)),
                f"{r.gflops:.1f}",
                pct(r.fp_efficiency, 2),
            )
        )
    print(
        render_table(
            f"Strong scaling: {problem.name}, {variant.name}",
            ["CGs", "Time/step", "Speedup", "Efficiency", "Gflop/s", "FP eff"],
            rows,
        )
    )
    return 0


def _cmd_profile(args) -> int:
    """Instrumented run: time accounting, ledger, critical path, top tasks."""
    from repro.telemetry import analyze
    from repro.telemetry.analyzer import render_top_tasks

    err = _check_outdir(getattr(args, "telemetry_out", None))
    if err is not None:
        print(err, file=sys.stderr)
        return 2
    problem = problem_by_name(args.problem)
    variant = dataclasses.replace(
        variant_by_name(args.variant), select_policy=args.select_policy
    )
    bundle = run_instrumented(problem, variant, args.cgs, nsteps=args.nsteps)
    r = bundle.experiment
    rows = [
        ("problem", r.problem),
        ("variant", r.variant),
        ("select policy", variant.select_policy),
        ("CGs", r.num_cgs),
        ("time/step", seconds(r.time_per_step)),
        ("Gflop/s", f"{r.gflops:.2f}"),
        ("mean overlap fraction", pct(bundle.ledger.mean_overlap_fraction)),
        ("total comm wait", seconds(bundle.ledger.total_comm_wait)),
    ]
    print(render_table("Profiled run (simulated Sunway time)", ["Metric", "Value"], rows))
    analysis = analyze(bundle.result, telemetry=bundle.telemetry, ledger=bundle.ledger)
    print()
    print(analysis.render_time_accounting())
    print()
    print(analysis.render_ledger())
    print()
    print(analysis.render_critical_path())
    print()
    print(render_top_tasks(bundle.result.trace, n=args.top))
    if args.telemetry_out:
        _write_telemetry(args.telemetry_out, bundle)
    return 0


def _cmd_trace(args) -> int:
    """Instrumented run: Perfetto/Chrome trace JSON plus an ASCII Gantt."""
    import json
    import pathlib

    problem = problem_by_name(args.problem)
    variant = dataclasses.replace(
        variant_by_name(args.variant), select_policy=args.select_policy
    )
    bundle = run_instrumented(problem, variant, args.cgs, nsteps=args.nsteps)
    out = pathlib.Path(args.output)
    out.write_text(
        json.dumps({"traceEvents": bundle.result.trace.to_chrome_trace()}) + "\n"
    )
    n_events = len(bundle.result.trace.spans)
    print(
        f"wrote {out} ({n_events} spans); load it in https://ui.perfetto.dev "
        "or chrome://tracing"
    )
    for rank in range(min(bundle.result.num_ranks, args.ranks)):
        print()
        print(bundle.result.trace.timeline(rank))
    return 0


def _cmd_resilience(args) -> int:
    """Fault-injection demo: inject, recover, verify bit-exactness."""
    import numpy as np

    from repro.burgers.component import BurgersProblem
    from repro.core.controller import SimulationController
    from repro.core.grid import Grid
    from repro.faults import FaultConfig, ResiliencePolicy
    from repro.faults.recovery import ResilientRunner

    e = args.extent
    grid = Grid(extent=(e, e, e), layout=(2, 2, 1))
    dt = BurgersProblem(grid).stable_dt()

    if args.fail_rank is not None and args.fail_rank < 0:
        args.fail_rank = args.fail_step = None
    config = FaultConfig(
        seed=args.seed,
        kernel_slowdown_prob=args.slowdown,
        kernel_stuck_prob=args.stuck,
        dma_error_prob=args.dma,
        msg_drop_prob=args.drop,
        msg_dup_prob=args.dup,
        msg_delay_prob=args.delay,
        fail_rank=args.fail_rank,
        fail_at_step=args.fail_step,
    )
    policy = ResiliencePolicy(checkpoint_every=args.checkpoint_every)
    runner = ResilientRunner(
        BurgersProblem,
        grid,
        nsteps=args.nsteps,
        dt=dt,
        num_ranks=args.cgs,
        config=config,
        policy=policy,
    )
    report = runner.run()

    # fault-free reference: same problem, no injector — the recovered
    # fields must match it to the last bit
    problem = BurgersProblem(grid)
    reference = SimulationController(
        grid, problem.tasks(), problem.init_tasks(), num_ranks=args.cgs, real=True
    ).run(nsteps=args.nsteps, dt=dt)
    report.fault_free_time = reference.total_time

    def fields(dws):
        return {
            v.patch.patch_id: v.interior
            for dw in dws
            for v in dw.grid_variables()
        }

    ref = fields(reference.final_dws)
    got = fields(runner.final_dws)
    identical = set(ref) == set(got) and all(
        np.array_equal(got[p], ref[p]) for p in ref
    )

    print(report.render())
    print(
        "recovered fields vs fault-free reference: "
        + ("bit-identical" if identical else "MISMATCH")
    )
    return 0 if identical else 1


def _cmd_verify(args) -> int:
    """Differential verification: invariants + bit-identical physics."""
    from repro.verify import (
        DEFAULT_MODES,
        DEFAULT_SEEDS,
        ReproBundle,
        default_policies,
        run_differential,
    )

    if args.quick and args.full:
        print("choose one of --quick / --full, not both", file=sys.stderr)
        return 2
    err = _check_outdir(args.out)
    if err is not None:
        print(err, file=sys.stderr)
        return 2

    modes = tuple(args.modes) if args.modes else DEFAULT_MODES
    if args.seeds is None:
        seeds: tuple = (None, 7) if args.quick else DEFAULT_SEEDS
    else:
        seeds = tuple(
            None if s.lower() == "none" else int(s) for s in args.seeds
        )
    if args.policies:
        policies: tuple = tuple(args.policies)
    else:
        policies = ("fifo",) if args.quick else default_policies()
    try:
        extent = tuple(int(e) for e in args.extent.lower().split("x"))
        if len(extent) != 3 or any(e < 1 for e in extent):
            raise ValueError
    except ValueError:
        print(
            f"bad --extent {args.extent!r}: expected NXxNYxNZ, e.g. 8x8x8",
            file=sys.stderr,
        )
        return 2

    report = run_differential(
        modes=modes,
        policies=policies,
        seeds=seeds,
        nsteps=args.nsteps,
        extent=extent,  # type: ignore[arg-type]
        num_ranks=args.cgs,
        out=args.out,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    rows = [
        (c["mode"], c["policy"], str(c["seed"]),
         str(c["violations"]), "yes" if c["identical_physics"] else "NO",
         "pass" if c["ok"] else "FAIL")
        for c in report["cases"]
    ]
    print(
        render_table(
            f"Differential verification ({report['num_cases']} cases)",
            ["Mode", "Policy", "Seed", "Violations", "Identical", "Verdict"],
            rows,
        )
    )
    for gate in report["nonperturbation"]:
        verdict = "bit-identical" if gate["identical"] else "PERTURBED"
        print(f"validator non-perturbation [{gate['mode']}]: {verdict}")
    if not report["passed"]:
        for b in report["bundles"]:
            print()
            print(ReproBundle(**{k: v for k, v in b.items() if k != "command"}).render())
        if args.out:
            print(f"\nreport + repro bundles written to {args.out}/", file=sys.stderr)
        return 1
    print("all cases passed: zero violations, bitwise-identical physics")
    if args.out:
        print(f"report written to {args.out}/report.json", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.harness.report import full_report

    text = full_report(nsteps=args.nsteps, progress=lambda s: print(s, file=sys.stderr))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Uintah-on-Sunway-TaihuLight evaluation",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for every stochastic model (fault injection, noise); "
        "the DES itself is deterministic",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="machine, problems and variants").set_defaults(
        fn=_cmd_info
    )

    p = sub.add_parser("table", help="regenerate a paper table (1-7)")
    p.add_argument("number", help="table number, e.g. 5")
    p.add_argument("--nsteps", type=int, default=10, help="timesteps per case")
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser("fig", help="regenerate a paper figure (5, 6-8, 9, 10)")
    p.add_argument("number", help="figure number, e.g. 9")
    p.add_argument("--nsteps", type=int, default=10)
    p.set_defaults(fn=_cmd_fig)

    p = sub.add_parser("run", help="run one experimental case")
    p.add_argument("--problem", default="32x32x512", choices=[pr.name for pr in PROBLEMS])
    p.add_argument("--variant", default="acc.async", choices=sorted(VARIANTS))
    p.add_argument("--cgs", type=int, default=8)
    p.add_argument("--nsteps", type=int, default=10)
    p.add_argument(
        "--select-policy",
        default="fifo",
        choices=sorted(POLICIES),
        help="ready-queue ordering for offloadable tasks",
    )
    p.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="also run instrumented and write ledger.jsonl/metrics.json/trace.json",
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "profile",
        help="instrumented run: per-rank time accounting and critical path",
    )
    p.add_argument("--problem", default="16x16x512", choices=[pr.name for pr in PROBLEMS])
    p.add_argument("--variant", default="acc.async", choices=sorted(VARIANTS))
    p.add_argument("--cgs", type=int, default=8)
    p.add_argument("--nsteps", type=int, default=10)
    p.add_argument("--top", type=int, default=10, help="activities in the top-N table")
    p.add_argument(
        "--select-policy",
        default="fifo",
        choices=sorted(POLICIES),
        help="ready-queue ordering for offloadable tasks",
    )
    p.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write ledger.jsonl/metrics.json/trace.json to DIR",
    )
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "trace",
        help="instrumented run: Perfetto/Chrome trace JSON + ASCII Gantt",
    )
    p.add_argument("--problem", default="16x16x512", choices=[pr.name for pr in PROBLEMS])
    p.add_argument("--variant", default="acc.async", choices=sorted(VARIANTS))
    p.add_argument("--cgs", type=int, default=8)
    p.add_argument("--nsteps", type=int, default=10)
    p.add_argument("--output", default="trace.json", help="trace JSON path")
    p.add_argument("--ranks", type=int, default=2, help="ranks to show as ASCII Gantt")
    p.add_argument(
        "--select-policy",
        default="fifo",
        choices=sorted(POLICIES),
        help="ready-queue ordering for offloadable tasks",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "resilience",
        help="inject faults, recover, and verify bit-exact physics",
    )
    p.add_argument("--nsteps", type=int, default=12)
    p.add_argument("--cgs", type=int, default=4)
    p.add_argument("--extent", type=int, default=16, help="cubic grid edge length")
    p.add_argument("--slowdown", type=float, default=0.1, help="kernel slowdown probability")
    p.add_argument("--stuck", type=float, default=0.05, help="stuck-kernel probability")
    p.add_argument("--dma", type=float, default=0.05, help="DMA-error probability")
    p.add_argument("--drop", type=float, default=0.05, help="message drop probability")
    p.add_argument("--dup", type=float, default=0.03, help="message duplication probability")
    p.add_argument("--delay", type=float, default=0.05, help="message delay probability")
    p.add_argument("--fail-rank", type=int, default=2, help="rank to kill (negative: none)")
    p.add_argument("--fail-step", type=int, default=8, help="timestep the rank dies at")
    p.add_argument("--checkpoint-every", type=int, default=5)
    p.set_defaults(fn=_cmd_resilience)

    p = sub.add_parser(
        "verify",
        help="differential verification: schedule invariants + bit-identical physics",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="small matrix (all modes, fifo, one fault seed) for CI smoke",
    )
    p.add_argument(
        "--full",
        action="store_true",
        help="full matrix (all modes x all policies x all seeds); the default",
    )
    p.add_argument(
        "--modes",
        nargs="+",
        choices=["mpe_only", "sync", "async"],
        default=None,
        help="scheduler modes to cover (default: all)",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(POLICIES),
        default=None,
        help="selection policies to cover (default: all; --quick: fifo)",
    )
    p.add_argument(
        "--seeds",
        nargs="+",
        default=None,
        metavar="SEED",
        help="fault seeds to cover ('none' = fault-free case)",
    )
    p.add_argument("--nsteps", type=int, default=3)
    p.add_argument("--extent", default="8x8x8", help="grid extent, e.g. 8x8x8")
    p.add_argument("--cgs", type=int, default=2, help="simulated core-groups (ranks)")
    p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write report.json and any repro bundles under DIR/",
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("report", help="regenerate the complete evaluation")
    p.add_argument("--nsteps", type=int, default=10)
    p.add_argument("--output", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("sweep", help="strong-scaling sweep of one problem/variant")
    p.add_argument("--problem", default="16x16x512", choices=[pr.name for pr in PROBLEMS])
    p.add_argument("--variant", default="acc_simd.async", choices=sorted(VARIANTS))
    p.add_argument("--nsteps", type=int, default=10)
    p.add_argument(
        "--select-policy",
        default="fifo",
        choices=sorted(POLICIES),
        help="ready-queue ordering for offloadable tasks",
    )
    p.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="run instrumented and write per-CG-count artifacts under DIR/cgN/",
    )
    p.set_defaults(fn=_cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # output piped into e.g. `head`; exit quietly like other CLIs
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
