"""Record-and-replay for lifecycle event streams.

The live bus can never carry an illegal transition — the state machine
raises before notifying subscribers — so the validator's own checks are
exercised by *replaying* recorded (and deliberately corrupted) event
streams into a fresh :class:`~repro.verify.validator.RankValidator`.
That is what the mutation self-tests do: record a clean run, mutate the
stream (drop an unpack, duplicate a completion, reorder a retirement),
and assert the validator flags exactly the planted bug.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.schedulers.lifecycle import LifecycleEvent
from repro.verify.validator import ScheduleValidator


@dataclasses.dataclass
class RecordedEvent:
    """One bus announcement, frozen for replay."""

    kind: str
    dt: object
    state: object
    t: float
    info: dict

    def to_live(self) -> LifecycleEvent:
        return LifecycleEvent(self.kind, self.dt, self.state, self.t, self.info)


class EventRecorder:
    """Lifecycle-bus subscriber that freezes the event stream.

    Subscribe it to a scheduler's lifecycle
    (``sched.lifecycle.subscribe(EventRecorder())``), run, then replay —
    verbatim or mutated — with :func:`replay`.
    """

    def __init__(self):
        self.events: list[RecordedEvent] = []

    def __call__(self, ev: LifecycleEvent) -> None:
        self.events.append(
            RecordedEvent(ev.kind, ev.dt, ev.state, ev.t, dict(ev.info))
        )

    def __len__(self) -> int:
        return len(self.events)


def replay(
    events: _t.Iterable[RecordedEvent],
    rank: int,
    graph,
    costs,
    validator: ScheduleValidator | None = None,
) -> ScheduleValidator:
    """Feed a (possibly mutated) event stream through a fresh validator.

    Returns the :class:`ScheduleValidator` holding whatever violations
    the stream exhibited.  ``validator`` may be supplied pre-configured
    (e.g. with a tiny ``ldm_bytes`` budget).
    """
    v = validator if validator is not None else ScheduleValidator()
    rv = v.subscriber_for(rank, graph, costs)
    for ev in events:
        rv(ev.to_live())
    v.finish()
    return v
