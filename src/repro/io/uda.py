"""UDA-style checkpoint archives: save, load, restart.

Archive layout (a light-weight analogue of Uintah's UDA directories)::

    <archive>/
      index.json          grid geometry, labels, checkpointed steps
      t<step>/
        meta.json         step number, simulation time, reductions
        patch<id>.npy     interior cells of each grid variable/patch
                          (one file per (label, patch))

Grid variables are stored interior-only (ghosts are reconstructed by the
first restarted timestep's exchange + boundary conditions, exactly as
after initialization), Fortran-ordered, float64.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

import numpy as np

from repro.core.datawarehouse import DataWarehouse
from repro.core.grid import Grid
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel

_FORMAT_VERSION = 1


@dataclasses.dataclass
class Checkpoint:
    """One loaded checkpoint: everything needed to restart."""

    grid: Grid
    step: int
    time: float
    #: ``{label_name: {patch_id: interior ndarray}}``
    fields: dict[str, dict[int, np.ndarray]]
    #: ``{label_name: value}`` for reduction variables.
    reductions: dict[str, float]


class UdaArchive:
    """A checkpoint archive rooted at a directory."""

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)

    # -- writing -------------------------------------------------------------
    def save(
        self,
        grid: Grid,
        dws: _t.Sequence[DataWarehouse],
        step: int,
        time: float,
    ) -> pathlib.Path:
        """Archive the grid variables and reductions of one timestep.

        ``dws`` are the per-rank data warehouses holding that step's
        state (e.g. ``RunResult.final_dws``).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        step_dir = self.root / f"t{step:05d}"
        step_dir.mkdir(exist_ok=True)

        labels: dict[str, dict] = {}
        reductions: dict[str, float] = {}
        for dw in dws:
            for var in dw.grid_variables():
                labels.setdefault(
                    var.label.name, {"vartype": "cell", "itemsize": var.label.itemsize}
                )
                np.save(
                    step_dir / f"{var.label.name}-patch{var.patch.patch_id:04d}.npy",
                    np.asfortranarray(var.interior),
                )
            for name, value in dw._reductions.items():
                labels.setdefault(name, {"vartype": "reduction", "itemsize": 8})
                reductions[name] = value

        (step_dir / "meta.json").write_text(
            json.dumps({"step": step, "time": time, "reductions": reductions}, indent=2)
        )

        index_path = self.root / "index.json"
        index = (
            json.loads(index_path.read_text())
            if index_path.exists()
            else {
                "format": _FORMAT_VERSION,
                "grid": {
                    "extent": list(grid.extent),
                    "layout": list(grid.layout),
                    "domain_low": list(grid.domain_low),
                    "domain_high": list(grid.domain_high),
                },
                "labels": {},
                "steps": [],
            }
        )
        if tuple(index["grid"]["extent"]) != grid.extent:
            raise ValueError(
                f"archive {self.root} belongs to a grid of extent "
                f"{index['grid']['extent']}, not {grid.extent}"
            )
        index["labels"].update(labels)
        if step not in index["steps"]:
            index["steps"].append(step)
            index["steps"].sort()
        index_path.write_text(json.dumps(index, indent=2))
        return step_dir

    # -- reading ----------------------------------------------------------------
    def steps(self) -> list[int]:
        """Checkpointed step numbers, ascending."""
        return list(self._index()["steps"])

    def _index(self) -> dict:
        index_path = self.root / "index.json"
        if not index_path.exists():
            raise FileNotFoundError(f"no UDA index at {index_path}")
        index = json.loads(index_path.read_text())
        if index.get("format") != _FORMAT_VERSION:
            raise ValueError(f"unsupported archive format {index.get('format')!r}")
        return index

    def load(self, step: int | None = None) -> Checkpoint:
        """Load a checkpoint (default: the latest archived step)."""
        index = self._index()
        if not index["steps"]:
            raise ValueError(f"archive {self.root} holds no checkpoints")
        if step is None:
            step = index["steps"][-1]
        if step not in index["steps"]:
            raise KeyError(f"step {step} not archived; have {index['steps']}")
        g = index["grid"]
        grid = Grid(
            extent=tuple(g["extent"]),
            layout=tuple(g["layout"]),
            domain_low=tuple(g["domain_low"]),
            domain_high=tuple(g["domain_high"]),
        )
        step_dir = self.root / f"t{step:05d}"
        meta = json.loads((step_dir / "meta.json").read_text())
        fields: dict[str, dict[int, np.ndarray]] = {}
        for name, info in index["labels"].items():
            if info["vartype"] != "cell":
                continue
            per_patch: dict[int, np.ndarray] = {}
            for path in sorted(step_dir.glob(f"{name}-patch*.npy")):
                pid = int(path.stem.rsplit("patch", 1)[1])
                per_patch[pid] = np.load(path)
            if per_patch:
                fields[name] = per_patch
        return Checkpoint(
            grid=grid,
            step=meta["step"],
            time=meta["time"],
            fields=fields,
            reductions=dict(meta.get("reductions", {})),
        )


def save_checkpoint(
    root: str | pathlib.Path,
    grid: Grid,
    dws: _t.Sequence[DataWarehouse],
    step: int,
    time: float,
) -> pathlib.Path:
    """Convenience wrapper: archive one step under ``root``."""
    return UdaArchive(root).save(grid, dws, step, time)


def load_checkpoint(root: str | pathlib.Path, step: int | None = None) -> Checkpoint:
    """Convenience wrapper: load a checkpoint from ``root``."""
    return UdaArchive(root).load(step)


def restart_tasks(checkpoint: Checkpoint, label: VarLabel, ghosts: int = 1) -> list[Task]:
    """An initialization graph restoring ``label`` from a checkpoint.

    Use in place of the application's ``init_tasks()``::

        ck = load_checkpoint("out.uda")
        controller = SimulationController(
            ck.grid, problem.tasks(), restart_tasks(ck, problem.u_label), ...)
        controller.run(nsteps, dt, start_step=ck.step)

    Restart is bit-exact: the restored field equals the archived one and
    continuation matches an uninterrupted run (tested).
    """
    per_patch = checkpoint.fields.get(label.name)
    if per_patch is None:
        raise KeyError(
            f"checkpoint has no field {label.name!r}; has {sorted(checkpoint.fields)}"
        )

    def restore(ctx: TaskContext) -> None:
        var = ctx.new_dw.allocate_and_put(label, ctx.patch, ghosts=ghosts)
        try:
            data = per_patch[ctx.patch.patch_id]
        except KeyError:
            raise KeyError(
                f"checkpoint misses patch {ctx.patch.patch_id} of {label.name!r}"
            ) from None
        if data.shape != var.interior.shape:
            raise ValueError(
                f"checkpoint patch {ctx.patch.patch_id} has shape {data.shape}, "
                f"grid expects {var.interior.shape}"
            )
        var.interior[...] = data

    task = Task(f"restart:{label.name}", kind=TaskKind.MPE, action=restore)
    task.computes_(label)
    return [task]
