"""Generator-based cooperative processes.

A process is a Python generator that ``yield``\\ s :class:`~repro.des.event.Event`
instances.  Each yield suspends the process until the event fires; the
event's value is sent back into the generator (or its exception raised).

Processes are themselves events: they fire when the generator returns,
with the generator's return value, so processes can wait on each other
(``yield sim.process(child())``) — this is how the MPE scheduler waits for
a synchronous CPE offload while the async one does not.
"""

from __future__ import annotations

import typing as _t

from repro.des.event import Event, Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator


class Process(Event):
    """A running generator on the virtual timeline.

    Do not instantiate directly — use :meth:`Simulator.process`.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: _t.Generator, name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Simulator.process() needs a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume the generator at the current time.
        boot = Event(sim, name=f"boot:{self.name}")
        boot._ok = True
        boot._value = None
        boot._add_callback(self._resume)
        sim._schedule(boot, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on (the
        event may still fire later, it will simply no longer resume us).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        target = self._waiting_on
        if target is not None:
            # Detach: drop our resume callback (bound methods are recreated
            # on each attribute access, so compare by receiver, not identity).
            if target._callbacks is not None:
                target._callbacks = [
                    cb for cb in target._callbacks if getattr(cb, "__self__", None) is not self
                ]
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke._ok = False
        poke._value = Interrupt(cause)
        poke._defused = True
        poke._add_callback(self._resume)
        self.sim._schedule(poke, 0.0)

    # -- engine -----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            # A stale wake-up (e.g. an event we were detached from while
            # being interrupted) must never resume a finished generator.
            return
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                trigger._defused = True
                target = self._generator.throw(_t.cast(BaseException, trigger._value))
        except StopIteration as stop:
            sim._active_process = None
            self._ok = True
            self._value = stop.value
            sim._schedule(self, 0.0)
            return
        except BaseException as exc:
            sim._active_process = None
            self._ok = False
            self._value = exc
            sim._schedule(self, 0.0)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.sim is not sim:
            raise ValueError(f"process {self.name!r} yielded an event of another simulator")
        self._waiting_on = target
        target._add_callback(self._resume)
