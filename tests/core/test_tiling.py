"""Tests for LDM-constrained tiling: coverage, capacity, CPE assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tiling import (
    TilePlan,
    choose_tile_shape,
    contiguous_chunks,
    working_set_bytes,
)
from repro.sunway.ldm import LDMAllocationError


# -- contiguous_chunks -----------------------------------------------------------

def test_chunks_interior_box():
    # partial-x box: one run per (y, z) line
    assert contiguous_chunks((18, 18, 10), (130, 130, 514)) == 180


def test_chunks_full_x_plane_merge():
    assert contiguous_chunks((18, 10, 10), (18, 18, 514)) == 10


def test_chunks_full_xy_block():
    assert contiguous_chunks((18, 18, 10), (18, 18, 514)) == 1


def test_chunks_validation():
    with pytest.raises(ValueError):
        contiguous_chunks((20, 2, 2), (18, 18, 18))
    assert contiguous_chunks((0, 5, 5), (8, 8, 8)) == 0


# -- working set / tile choice ------------------------------------------------------

def test_working_set_matches_paper_41_3kb():
    """Sec. VI-A: 16x16x8 with u (ghosted) + u_new is ~41.3 KB."""
    ws = working_set_bytes((16, 16, 8), ghosts=1, fields_in=1, fields_out=1)
    assert ws == (18 * 18 * 10 + 16 * 16 * 8) * 8
    assert ws / 1024 == pytest.approx(41.3, abs=0.2)


def test_paper_tile_choice_for_all_table3_patches():
    """The paper uses 16x16x8 for the whole suite."""
    for pe in [
        (16, 16, 512), (16, 32, 512), (32, 32, 512), (32, 64, 512),
        (64, 64, 512), (64, 128, 512), (128, 128, 512),
    ]:
        assert choose_tile_shape(pe) == (16, 16, 8)


def test_chosen_tile_always_fits_ldm():
    shape = choose_tile_shape((128, 128, 512))
    assert working_set_bytes(shape) <= 64 * 1024


def test_choose_tile_impossible_raises():
    with pytest.raises(LDMAllocationError):
        choose_tile_shape((64, 64, 64), ldm_bytes=128)  # absurdly small LDM


def test_choose_tile_two_fields_in():
    """More LDM-resident fields force smaller tiles."""
    one = choose_tile_shape((64, 64, 512), fields_in=1)
    two = choose_tile_shape((64, 64, 512), fields_in=2)
    assert working_set_bytes(two, fields_in=2) <= 64 * 1024

    def cells(s):
        return s[0] * s[1] * s[2]

    assert cells(two) <= cells(one)


# -- TilePlan ---------------------------------------------------------------------

def make_plan(pe=(128, 128, 512), ts=(16, 16, 8)):
    return TilePlan(patch_extent=pe, tile_shape=ts, ghosts=1)


def test_tile_counts_and_total():
    plan = make_plan()
    assert plan.tile_counts == (8, 8, 64)
    assert plan.num_tiles == 4096


def test_tiles_cover_patch_exactly():
    plan = make_plan(pe=(32, 32, 64))
    covered = set()
    for t in plan.tiles():
        low, high = plan.tile_region(t)
        for x in range(low[0], high[0]):
            for y in range(low[1], high[1]):
                for z in range(low[2], high[2]):
                    key = (x, y, z)
                    assert key not in covered, "tiles overlap"
                    covered.add(key)
    assert len(covered) == 32 * 32 * 64


def test_edge_tiles_clipped():
    plan = TilePlan(patch_extent=(20, 16, 8), tile_shape=(16, 16, 8))
    assert plan.tile_counts == (2, 1, 1)
    low, high = plan.tile_region((1, 0, 0))
    assert low == (16, 0, 0) and high == (20, 16, 8)
    work = plan.tile_work((1, 0, 0))
    assert work.cells == 4 * 16 * 8


def test_tile_region_out_of_range():
    with pytest.raises(IndexError):
        make_plan().tile_region((99, 0, 0))


def test_z_partition_balanced_for_paper_case():
    """512/8 = 64 z-slabs over 64 CPEs: exactly one slab each."""
    plan = make_plan()
    per_cpe = plan.per_cpe_tile_indices()
    assert len(per_cpe) == 64
    assert all(len(tiles) == 64 for tiles in per_cpe)  # 8x8 xy tiles per slab
    slabs = {t[2] for t in per_cpe[0]}
    assert slabs == {0}  # CPE 0 owns z-slab 0 only


def test_z_partition_fewer_slabs_than_cpes_idles_some():
    plan = TilePlan(patch_extent=(16, 16, 64), tile_shape=(16, 16, 8), num_cpes=64)
    per_cpe = plan.per_cpe_tile_indices()
    busy = [tiles for tiles in per_cpe if tiles]
    assert len(busy) == 8  # 8 slabs -> 8 busy CPEs, 56 idle (paper's imbalance)


def test_per_cpe_assignment_covers_all_tiles():
    plan = make_plan(pe=(32, 32, 512))
    per_cpe = plan.per_cpe_tile_indices()
    flat = [t for tiles in per_cpe for t in tiles]
    assert sorted(flat) == sorted(plan.tiles())


def test_tile_work_geometry():
    plan = make_plan()
    work = plan.tile_work((1, 1, 1))  # interior tile
    assert work.cells == 2048
    assert work.get_bytes == 18 * 18 * 10 * 8
    assert work.put_bytes == 2048 * 8
    # interior tile reads 18x18x10 halo as (18*10)=180 x-runs
    assert work.get_chunks == 180


def test_tile_work_full_x_patch_coalesces():
    """16x16 patches: the ghosted tile spans the whole array xy-extent,
    so the inbound DMA is one fully contiguous block."""
    plan = make_plan(pe=(16, 16, 512), ts=(16, 16, 8))
    work = plan.tile_work((0, 0, 1))
    assert work.get_chunks == 1  # (18,18,10) block of an (18,18,514) array
    # a 32-wide patch only coalesces to planes when x is spanned
    plan32 = make_plan(pe=(32, 16, 512), ts=(32, 16, 8))
    assert plan32.tile_work((0, 0, 1)).get_chunks == 1
    plan_partial = make_plan(pe=(32, 32, 512), ts=(16, 16, 8))
    assert plan_partial.tile_work((0, 0, 1)).get_chunks == 18 * 10


def test_validate_against_ldm():
    make_plan().validate_against_ldm()
    huge = TilePlan(patch_extent=(64, 64, 64), tile_shape=(64, 64, 64))
    with pytest.raises(LDMAllocationError):
        huge.validate_against_ldm()


def test_plan_validation():
    with pytest.raises(ValueError):
        TilePlan(patch_extent=(16, 16, 16), tile_shape=(0, 4, 4))
    with pytest.raises(ValueError):
        TilePlan(patch_extent=(0, 16, 16), tile_shape=(4, 4, 4))
    with pytest.raises(ValueError):
        TilePlan(patch_extent=(16, 16, 16), tile_shape=(4, 4, 4), num_cpes=0)


@settings(deadline=None, max_examples=40)
@given(
    pe=st.tuples(st.integers(4, 48), st.integers(4, 48), st.integers(4, 48)),
    ts=st.tuples(st.integers(1, 20), st.integers(1, 20), st.integers(1, 20)),
)
def test_property_tiles_partition_any_patch(pe, ts):
    """Tiles cover every cell exactly once for arbitrary shapes."""
    plan = TilePlan(patch_extent=pe, tile_shape=ts)
    total = 0
    for t in plan.tiles():
        low, high = plan.tile_region(t)
        vol = 1
        for a in range(3):
            assert 0 <= low[a] < high[a] <= pe[a]
            vol *= high[a] - low[a]
        total += vol
    assert total == pe[0] * pe[1] * pe[2]


@settings(deadline=None, max_examples=40)
@given(
    pe=st.tuples(st.integers(4, 64), st.integers(4, 64), st.integers(8, 128)),
)
def test_property_chosen_tiles_fit_ldm(pe):
    """Whatever the patch, the chosen tile's working set fits 64 KB."""
    shape = choose_tile_shape(pe)
    assert working_set_bytes(shape) <= 64 * 1024
