"""The simulated interconnect fabric.

Models the Sunway proprietary network at the level the paper's evaluation
depends on: per-message cost ``software overhead + latency + bytes /
bandwidth`` charged once both sides of a point-to-point transfer have
posted, FIFO matching per ``(source, dest, tag)`` channel, eager-protocol
send completion for small messages, and tree-shaped collectives.

Fault model
-----------
When a :class:`~repro.faults.injector.FaultInjector` is attached
(:attr:`Fabric.faults`), every matched point-to-point transfer asks it
for a fault: extra *delay*, a per-rank *brownout* slow-down window,
*duplication* (the wire carries the payload twice; the transport filters
the copy but pays its bytes), or a *drop*.  Dropped messages are
retransmitted by the reliable transport with exponential backoff plus
jitter (:class:`~repro.faults.policies.ResiliencePolicy` parameters, or
built-in defaults) until they get through — MPI semantics are preserved,
only completion times and the retry counters change.  Matching order is
decided at post time, so faults never mis-deliver a payload.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import typing as _t

from repro.des import Simulator
from repro.simmpi.request import SendRequest, RecvRequest, CollectiveRequest


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Interconnect cost parameters.

    Defaults follow Table II of the paper (16 GB/s bidirectional P2P,
    ~1 us latency) plus an MPI software overhead per message, which on
    Sunway's MPI is several microseconds.
    """

    #: Point-to-point bandwidth, bytes/s.
    bandwidth: float = 16e9
    #: Wire latency, seconds.
    latency: float = 1e-6
    #: MPI software overhead per message (matching, headers), seconds.
    sw_overhead: float = 6e-6
    #: Messages at or below this size complete the *send* side eagerly
    #: (buffered) at post time + overhead; larger sends complete with the
    #: transfer (rendezvous-like).
    eager_threshold: int = 32 * 1024
    #: Model per-rank NIC contention: concurrent transfers touching the
    #: same rank serialize their bandwidth phase through its NIC.  Off by
    #: default (the paper's runs never saturate the 16 GB/s links; the
    #: calibrated evaluation keeps the simpler model).
    serialize_nic: bool = False

    def transfer_time(self, nbytes: int) -> float:
        """Seconds on the wire for an ``nbytes`` message."""
        return self.sw_overhead + self.latency + nbytes / self.bandwidth

    def allreduce_time(self, num_ranks: int, nbytes: int = 8) -> float:
        """Seconds for a tree allreduce (reduce + broadcast) of ``nbytes``."""
        if num_ranks <= 1:
            return 0.0
        hops = 2 * math.ceil(math.log2(num_ranks))
        return hops * (self.sw_overhead + self.latency + nbytes / self.bandwidth)


class _Channel:
    """FIFO matching queue for one (source, dest, tag) triple."""

    __slots__ = ("sends", "recvs")

    def __init__(self) -> None:
        self.sends: collections.deque = collections.deque()
        self.recvs: collections.deque = collections.deque()


class Fabric:
    """The interconnect shared by all ranks of one simulated job.

    Ranks interact through their :class:`~repro.simmpi.comm.Comm`; the
    fabric performs matching, charges costs, and fires request events at
    the right simulated times.
    """

    #: Fallback retransmission parameters when faults are injected but no
    #: ResiliencePolicy is attached.
    _DEFAULT_BACKOFF = 100e-6
    _DEFAULT_JITTER = 0.25
    _DEFAULT_MAX_RETRIES = 5

    def __init__(
        self,
        sim: Simulator,
        num_ranks: int,
        config: FabricConfig | None = None,
        faults=None,
        policy=None,
        telemetry=None,
    ):
        if num_ranks < 1:
            raise ValueError(f"need >= 1 rank, got {num_ranks}")
        self.sim = sim
        self.num_ranks = num_ranks
        self.config = config or FabricConfig()
        self._channels: dict[tuple[int, int, int], _Channel] = {}
        self._collectives: dict[tuple[str, int], list] = {}
        self._finished_collectives: set[tuple[str, int]] = set()
        #: Per-rank NIC availability time (serialize_nic mode).
        self._nic_free: list[float] = [0.0] * num_ranks
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector` and
        #: :class:`~repro.faults.policies.ResiliencePolicy`.
        self.faults = faults
        self.policy = policy
        #: Hot-path gate: skip the per-message injector query entirely
        #: when no network fault can ever fire (fault-free overhead).
        self._net_active = faults is not None and faults.config.net_active
        #: Retransmissions of dropped messages, attributed to the sender.
        self.retries_by_rank: list[int] = [0] * num_ranks
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        #: Observability sink (:class:`repro.telemetry.collect.RunTelemetry`);
        #: wire-level traffic counters, None by default.
        self.telemetry = telemetry

    @property
    def mpi_retries(self) -> int:
        """Total retransmissions over all ranks."""
        return sum(self.retries_by_rank)

    # -- point to point -------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")

    def _channel(self, source: int, dest: int, tag: int) -> _Channel:
        key = (source, dest, tag)
        chan = self._channels.get(key)
        if chan is None:
            chan = self._channels[key] = _Channel()
        return chan

    def post_send(
        self, source: int, dest: int, tag: int, nbytes: int, payload: object = None
    ) -> SendRequest:
        """Register a non-blocking send; returns its request."""
        self._check_rank(source)
        self._check_rank(dest)
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        req = SendRequest(self.sim, dest, tag, nbytes, source=source)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.telemetry is not None:
            self.telemetry.on_wire_message(nbytes)
        if source == dest:
            # Self-messages short-circuit through memory: cheap but not free.
            req.event.succeed(None, delay=0.0)
            self._deliver_local(source, dest, tag, payload)
            return req
        chan = self._channel(source, dest, tag)
        entry = {"req": req, "payload": payload, "posted": self.sim.now}
        if chan.recvs:
            self._match(entry, chan.recvs.popleft())
        else:
            chan.sends.append(entry)
            if nbytes <= self.config.eager_threshold:
                # Eager protocol: the send buffer is copied out immediately.
                req.event.succeed(None, delay=self.config.sw_overhead)
        return req

    def post_recv(self, source: int, dest: int, tag: int) -> RecvRequest:
        """Register a non-blocking receive; returns its request."""
        self._check_rank(source)
        self._check_rank(dest)
        req = RecvRequest(self.sim, source, tag)
        if source == dest:
            chan = self._channel(source, dest, tag)
            if chan.sends:
                entry = chan.sends.popleft()
                req.event.succeed(entry["payload"], delay=0.0)
            else:
                chan.recvs.append({"req": req, "posted": self.sim.now})
            return req
        chan = self._channel(source, dest, tag)
        if chan.sends:
            self._match(chan.sends.popleft(), {"req": req, "posted": self.sim.now})
        else:
            chan.recvs.append({"req": req, "posted": self.sim.now})
        return req

    def _deliver_local(self, source: int, dest: int, tag: int, payload: object) -> None:
        chan = self._channel(source, dest, tag)
        if chan.recvs:
            entry = chan.recvs.popleft()
            entry["req"].event.succeed(payload, delay=0.0)
        else:
            chan.sends.append({"payload": payload, "posted": self.sim.now})

    def _match(self, send_entry: dict, recv_entry: dict) -> None:
        send_req: SendRequest = send_entry["req"]
        recv_req: RecvRequest = recv_entry["req"]
        # Transfer runs once both sides are posted (match happens "now").
        if self.config.serialize_nic:
            now = self.sim.now
            src, dst = self._nic_lookup(send_req)
            start = max(now, self._nic_free[src], self._nic_free[dst])
            occupancy = send_req.nbytes / self.config.bandwidth
            self._nic_free[src] = self._nic_free[dst] = start + occupancy
            done_at = (
                start + occupancy + self.config.sw_overhead + self.config.latency
            )
            done_in = done_at - now
        else:
            done_in = self.config.transfer_time(send_req.nbytes)
        if self._net_active:
            fault = self.faults.message_fault(
                send_req.source, send_req.dest, send_req.nbytes, self.sim.now
            )
            if fault is not None:
                done_in = done_in * fault.slow_factor + fault.extra_delay
                if fault.extra_delay > 0:
                    self.messages_delayed += 1
                if fault.duplicate:
                    # The wire carries the payload twice; the transport's
                    # sequence numbers filter the copy at delivery.
                    self.messages_duplicated += 1
                    self.bytes_sent += send_req.nbytes
                if fault.drop:
                    self.messages_dropped += 1
                    self.sim.process(
                        self._retransmit(send_entry, recv_entry, done_in),
                        name=f"retx:{send_req.source}->{send_req.dest}",
                    )
                    return
        self._deliver(send_entry, recv_entry, done_in)

    def _deliver(self, send_entry: dict, recv_entry: dict, done_in: float) -> None:
        """Complete both sides of a matched transfer ``done_in`` from now."""
        send_req: SendRequest = send_entry["req"]
        recv_req: RecvRequest = recv_entry["req"]
        recv_req.event.succeed(send_entry["payload"], delay=done_in)
        if not send_req.event.triggered:  # large message: rendezvous completion
            send_req.event.succeed(None, delay=done_in)

    def _retransmit(self, send_entry: dict, recv_entry: dict, wire_cost: float):
        """Reliable-transport recovery of a dropped message.

        The sender detects the loss after the wire time plus an
        exponentially growing, jittered backoff, then resends; each
        resend may be dropped again (same drop rate) until the retry
        budget forces the message through — the simulated analogue of a
        link-level reliable channel underneath lossy injection.
        """
        send_req: SendRequest = send_entry["req"]
        pol = self.policy
        backoff_base = pol.mpi_backoff_base if pol else self._DEFAULT_BACKOFF
        jitter_frac = pol.mpi_backoff_jitter if pol else self._DEFAULT_JITTER
        max_retries = pol.mpi_max_retries if pol else self._DEFAULT_MAX_RETRIES
        site = f"{send_req.source}->{send_req.dest}:{send_req.nbytes}B"
        attempt = 0
        while True:
            attempt += 1
            rto = backoff_base * (2.0 ** (attempt - 1))
            rto *= 1.0 + jitter_frac * self.faults.jitter()
            yield self.sim.timeout(wire_cost + rto)
            self.retries_by_rank[send_req.source] += 1
            self.bytes_sent += send_req.nbytes
            if self.telemetry is not None:
                self.telemetry.on_retransmit(send_req.source, send_req.nbytes)
            if attempt >= max_retries or not self.faults.redrop(self.sim.now, site):
                break
            self.messages_dropped += 1
        self._deliver(send_entry, recv_entry, wire_cost)

    def _nic_lookup(self, send_req: SendRequest) -> tuple[int, int]:
        """Source and destination ranks of a matched send."""
        return send_req.source, send_req.dest

    # -- collectives -------------------------------------------------------------
    def post_allreduce(
        self,
        rank: int,
        epoch: int,
        value: float,
        op: _t.Callable[[float, float], float],
    ) -> CollectiveRequest:
        """Register one rank's contribution to allreduce ``epoch``.

        All ranks must call with the same epoch (the communicator numbers
        them); the result fires on every rank at the same simulated time,
        reduced deterministically in rank order.
        """
        req = CollectiveRequest(self.sim, "iallreduce", epoch)
        key = ("allreduce", epoch)
        if key in self._finished_collectives:
            raise RuntimeError(f"allreduce epoch {epoch} already completed (over-posted)")
        entries = self._collectives.setdefault(key, [])
        entries.append((rank, value, op, req))
        if len(entries) == self.num_ranks:
            self._finished_collectives.add(key)
            entries.sort(key=lambda e: e[0])
            acc = entries[0][1]
            the_op = entries[0][2]
            for _, v, _, _ in entries[1:]:
                acc = the_op(acc, v)
            delay = self.config.allreduce_time(self.num_ranks)
            for _, _, _, r in entries:
                r.event.succeed(acc, delay=delay)
            del self._collectives[key]
        return req

    def post_barrier(self, rank: int, epoch: int) -> CollectiveRequest:
        """Register one rank's arrival at barrier ``epoch``."""
        req = CollectiveRequest(self.sim, "ibarrier", epoch)
        key = ("barrier", epoch)
        if key in self._finished_collectives:
            raise RuntimeError(f"barrier epoch {epoch} already completed (over-posted)")
        entries = self._collectives.setdefault(key, [])
        entries.append(req)
        if len(entries) == self.num_ranks:
            self._finished_collectives.add(key)
            delay = self.config.allreduce_time(self.num_ranks, nbytes=0)
            for r in entries:
                r.event.succeed(None, delay=delay)
            del self._collectives[key]
        return req
