"""Property tests: randomized multi-stage workloads through the full stack.

Hypothesis generates task pipelines (random stage counts, ghost widths,
optional reductions), random rank counts, balancer strategies and
scheduler modes; every combination must complete without deadlock and —
in real mode — produce results identical to a single-rank reference.
This is the out-of-order-execution safety net for the whole runtime.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.core.loadbalancer import LoadBalancer
from repro.core.task import Task, TaskContext, TaskKind
from repro.core.varlabel import VarLabel
from repro.sunway.corerates import KernelCost

COST = KernelCost(stencil_flops=20, exp_calls=0)


def build_pipeline(num_stages: int, ghost_pattern: list[int], with_reduction: bool):
    """A circular chain u0 -> u1 -> ... -> u0 of stencil-ish stages.

    The last stage writes u0 again so the next timestep's old-DW
    requirement is satisfied — the same closure property every real
    Uintah timestep graph has.
    """
    labels = [VarLabel(f"u{i}") for i in range(num_stages)]
    labels.append(labels[0])  # circular: stage n-1 recomputes u0

    def make_action(src: VarLabel, dst: VarLabel, ghosts: int, stage: int):
        def action(ctx: TaskContext) -> None:
            prev_dw = ctx.old_dw if stage == 0 else ctx.new_dw
            old = prev_dw.get(src, ctx.patch)
            new = ctx.new_dw.allocate_and_put(dst, ctx.patch, ghosts=1)
            u = old.data
            if ghosts:
                # average with the -x neighbour: exercises halo data
                new.interior[...] = 0.5 * (u[1:-1, 1:-1, 1:-1] + u[:-2, 1:-1, 1:-1])
            else:
                new.interior[...] = u[1:-1, 1:-1, 1:-1] * 1.03125 + float(stage)
        return action

    def make_bc(src: VarLabel, stage: int):
        def bc(ctx: TaskContext) -> None:
            dw = ctx.old_dw if stage == 0 else ctx.new_dw
            var = dw.get(src, ctx.patch)
            for axis, side in ctx.grid.boundary_faces(ctx.patch):
                var.region_view(ctx.patch.ghost_region(axis, side))[...] = 0.25
        return bc

    tasks = []
    for stage in range(num_stages):
        src, dst = labels[stage], labels[stage + 1]
        ghosts = ghost_pattern[stage % len(ghost_pattern)]
        task = Task(
            f"stage{stage}",
            kind=TaskKind.CPE_KERNEL,
            action=make_action(src, dst, ghosts, stage),
            mpe_action=make_bc(src, stage) if ghosts else None,
            kernel_cost=COST,
        )
        task.requires_(src, dw="old" if stage == 0 else "new", ghosts=ghosts)
        task.computes_(dst)
        tasks.append(task)

    if with_reduction:
        norm = VarLabel("norm", vartype="reduction")
        red = Task(
            "norm",
            kind=TaskKind.REDUCTION,
            action=lambda ctx: float(ctx.new_dw.get(labels[-1], ctx.patch).interior.sum()),
            reduction_op=lambda a, b: a + b,
        )
        red.requires_(labels[-1], dw="new").computes_(norm)
        tasks.append(red)

    def init_action(ctx: TaskContext) -> None:
        var = ctx.new_dw.allocate_and_put(labels[0], ctx.patch, ghosts=1)
        lo = ctx.patch.low
        var.interior[...] = (
            np.arange(var.interior.size, dtype=np.float64).reshape(var.interior.shape)
            * 1e-3
            + lo[0] + 2 * lo[1] + 3 * lo[2]
        )

    init = Task("init", kind=TaskKind.MPE, action=init_action)
    init.computes_(labels[0])
    return tasks, [init], labels


def run_workload(tasks, init, num_ranks, mode, balancer, nsteps):
    grid = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    ctl = SimulationController(
        grid, tasks, init, num_ranks=num_ranks, mode=mode,
        balancer=balancer, real=True,
    )
    res = ctl.run(nsteps=nsteps, dt=1e-3)
    out = {}
    for dw in res.final_dws:
        for var in dw.grid_variables():
            out[(var.label.name, var.patch.patch_id)] = var.interior.copy()
    return out, res


@settings(deadline=None, max_examples=25)
@given(
    num_stages=st.integers(1, 3),
    ghost_pattern=st.lists(st.integers(0, 1), min_size=1, max_size=3),
    with_reduction=st.booleans(),
    num_ranks=st.sampled_from([2, 4, 8]),
    mode=st.sampled_from(["async", "sync", "mpe_only"]),
    balancer=st.sampled_from(LoadBalancer.STRATEGIES),
)
def test_property_random_pipeline_matches_serial_reference(
    num_stages, ghost_pattern, with_reduction, num_ranks, mode, balancer
):
    tasks, init, labels = build_pipeline(num_stages, ghost_pattern, with_reduction)
    ref, ref_res = run_workload(tasks, init, 1, "async", "block", nsteps=2)
    # fresh task objects for the second controller (tasks are stateless,
    # but build again to rule out shared-state artefacts)
    tasks2, init2, _ = build_pipeline(num_stages, ghost_pattern, with_reduction)
    got, got_res = run_workload(tasks2, init2, num_ranks, mode, balancer, nsteps=2)
    assert set(got) == set(ref)
    for key in ref:
        assert np.array_equal(ref[key], got[key]), key
    # kernel executions are distribution-invariant (reduction detailed
    # tasks are per-rank, so total tasks_run is not)
    got_kernels = got_res.stats.kernels_offloaded + got_res.stats.kernels_on_mpe
    ref_kernels = ref_res.stats.kernels_offloaded + ref_res.stats.kernels_on_mpe
    assert got_kernels == ref_kernels


@settings(deadline=None, max_examples=10)
@given(
    num_stages=st.integers(1, 3),
    num_ranks=st.sampled_from([2, 4]),
)
def test_property_async_never_slower_than_sync(num_stages, num_ranks):
    tasks, init, _ = build_pipeline(num_stages, [1], with_reduction=True)
    _, sync_res = run_workload(tasks, init, num_ranks, "sync", "sfc", nsteps=2)
    tasks2, init2, _ = build_pipeline(num_stages, [1], with_reduction=True)
    _, async_res = run_workload(tasks2, init2, num_ranks, "async", "sfc", nsteps=2)
    assert async_res.time_per_step <= sync_res.time_per_step * 1.001
