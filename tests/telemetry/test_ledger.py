"""Ledger tests: determinism, overlap agreement, round-trip, regression gate."""

import dataclasses

import pytest

from repro.harness.problems import problem_by_name
from repro.harness.runner import run_instrumented
from repro.harness.variants import variant_by_name
from repro.telemetry.ledger import LedgerStep, RunLedger, build_ledger, compare_ledgers

from tests.telemetry.conftest import CGS, NSTEPS


def test_ledger_shape(bundle):
    ledger = bundle.ledger
    assert len(ledger.steps) == NSTEPS
    assert ledger.manifest["problem"] == "16x16x512"
    assert ledger.manifest["num_cgs"] == CGS
    for s in ledger.steps:
        assert len(s.mpe_busy) == CGS
        assert len(s.cpe_busy) == CGS
        assert s.wall > 0
        assert 0.0 <= s.overlap_fraction <= 1.0
        # the async variant actually overlaps (the paper's core claim)
        assert s.overlap_fraction > 0.1
        assert s.totals["tasks_done"] > 0
        assert s.totals["bytes_sent"] > 0
        assert s.totals["dma_bytes"] > 0


def test_ledger_overlap_agrees_with_tracer(bundle):
    """Summed per-step overlap must reproduce Tracer.overlap_time per rank.

    Step windows partition each rank's timeline, clipping is additive,
    so folding per-step clipped intersections must give the same answer
    as intersecting the whole-run interval lists.
    """
    trace = bundle.result.trace
    for r in range(CGS):
        assert bundle.ledger.overlap_per_rank(r) == pytest.approx(
            trace.overlap_time(r), rel=1e-9, abs=1e-12
        )


def test_ledger_wall_matches_run_result(bundle):
    res = bundle.result
    assert bundle.ledger.total_wall == pytest.approx(res.total_time, rel=1e-9)
    for step, expected in zip(bundle.ledger.steps, res.step_times):
        assert step.wall == pytest.approx(expected, rel=1e-9)


def test_ledger_determinism_two_runs_byte_identical():
    """Two identical runs serialize identically except the manifest line."""

    def one(created_at):
        return run_instrumented(
            problem_by_name("16x16x512"),
            variant_by_name("acc.async"),
            2,
            nsteps=2,
            created_at=created_at,
        ).ledger.to_jsonl()

    a, b = one("2026-01-01T00:00:00+00:00"), one("2026-02-02T00:00:00+00:00")
    assert a != b  # the timestamp differs...
    a_lines, b_lines = a.splitlines(), b.splitlines()
    assert a_lines[1:] == b_lines[1:]  # ...and ONLY the timestamp
    assert a_lines[0].startswith('{"created_at": "2026-01-01')


def test_ledger_jsonl_round_trip(tmp_path, bundle):
    path = bundle.ledger.write(tmp_path / "ledger.jsonl")
    loaded = RunLedger.read(path)
    assert loaded.manifest == bundle.ledger.manifest
    assert len(loaded.steps) == len(bundle.ledger.steps)
    for got, want in zip(loaded.steps, bundle.ledger.steps):
        assert got == want
    assert loaded.metrics == bundle.ledger.metrics
    assert loaded.to_jsonl() == bundle.ledger.to_jsonl()


def test_build_ledger_requires_step_boundaries(bundle):
    res = dataclasses.replace(bundle.result, rank_step_ends=None)
    with pytest.raises(ValueError, match="step boundaries"):
        build_ledger(res, bundle.telemetry, {})


def _ledger(wall, overlap_frac, comm_wait, nsteps=2):
    steps = [
        LedgerStep(
            step=s + 1,
            wall=wall,
            sim_time=0.0,
            mpe_busy=[wall * 0.5],
            cpe_busy=[wall],
            overlap=[wall * overlap_frac],
            comm_wait=[comm_wait],
            totals={},
        )
        for s in range(nsteps)
    ]
    return RunLedger(manifest={}, steps=steps)


def test_compare_ledgers_passes_identical():
    base = _ledger(1.0, 0.4, 0.1)
    assert compare_ledgers(base, _ledger(1.0, 0.4, 0.1)) == []


def test_compare_ledgers_flags_wall_regression():
    issues = compare_ledgers(_ledger(1.0, 0.4, 0.1), _ledger(1.2, 0.4, 0.1))
    assert any("wall time regressed" in i for i in issues)


def test_compare_ledgers_flags_overlap_drop_even_at_equal_wall():
    issues = compare_ledgers(_ledger(1.0, 0.4, 0.1), _ledger(1.0, 0.2, 0.1))
    assert any("overlap fraction dropped" in i for i in issues)


def test_compare_ledgers_flags_comm_wait_and_step_count():
    issues = compare_ledgers(_ledger(1.0, 0.4, 0.1), _ledger(1.0, 0.4, 0.5))
    assert any("comm-wait regressed" in i for i in issues)
    issues = compare_ledgers(_ledger(1.0, 0.4, 0.1), _ledger(1.0, 0.4, 0.1, nsteps=3))
    assert any("step count differs" in i for i in issues)


def test_compare_ledgers_within_tolerances_pass():
    base = _ledger(1.0, 0.4, 0.1)
    assert compare_ledgers(base, _ledger(1.04, 0.37, 0.105)) == []
