"""Ablation: the paper's Sec. IX future-work optimizations, implemented.

The paper lists three further optimizations it did *not* evaluate:

1. asynchronous (double-buffered) memory<->LDM DMA,
2. packing the tiles so DMA transfers are contiguous,
3. grouping CPEs to run multiple patches concurrently per CG.

All three exist behind flags in this reproduction; this bench measures
what each would have bought on the medium problem, against the paper's
measured configuration (acc_simd.async).
"""

import pytest

from benchmarks.conftest import run_once
from repro.burgers.component import BurgersProblem
from repro.core.controller import SimulationController
from repro.harness import calibration
from repro.harness.problems import problem_by_name
from repro.harness.reportfmt import render_table, seconds


def run_case(simd=True, async_dma=False, pack_tiles=False, cpe_groups=1, cgs=8):
    problem = problem_by_name("32x64x512")
    grid = problem.grid()
    burgers = BurgersProblem(grid, with_reduction=True)
    cm = calibration.cost_model(
        simd=simd, async_dma=async_dma, cpe_groups=cpe_groups, pack_tiles=pack_tiles
    )
    ctl = SimulationController(
        grid,
        burgers.tasks(),
        burgers.init_tasks(),
        num_ranks=cgs,
        mode="async",
        cost_model=cm,
        real=False,
        fabric_config=calibration.FABRIC,
        scheduler_kwargs=calibration.scheduler_kwargs(),
    )
    return ctl.run(nsteps=5, dt=burgers.stable_dt()).time_per_step


def sweep():
    base = run_case()
    return {
        "baseline (paper config)": base,
        "+async DMA": run_case(async_dma=True),
        "+tile packing": run_case(pack_tiles=True),
        "+async DMA +packing": run_case(async_dma=True, pack_tiles=True),
        "4 CPE groups": run_case(cpe_groups=4),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_future_work(benchmark, publish):
    results = run_once(benchmark, sweep)
    base = results["baseline (paper config)"]
    rows = [
        (name, seconds(t), f"{base / t:.3f}x")
        for name, t in results.items()
    ]
    publish(
        "ablation_futurework",
        render_table(
            "Ablation: Sec. IX future-work optimizations (32x64x512, 8 CGs, "
            "acc_simd.async)",
            ["Configuration", "Time/step", "Speedup vs baseline"],
            rows,
        ),
    )

    # async DMA hides part of every tile's transfer: strictly helps
    assert results["+async DMA"] < base
    # packing removes per-descriptor costs: helps (modestly)
    assert results["+tile packing"] <= base
    # combined at least as good as either alone
    assert results["+async DMA +packing"] <= results["+async DMA"] + 1e-12
    # 4 groups of 16 CPEs: kernels take longer each, but four patches run
    # concurrently; must stay within 2x either way of the baseline
    assert 0.5 * base < results["4 CPE groups"] < 2.0 * base
