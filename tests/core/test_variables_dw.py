"""Tests for grid variables (ghosted storage) and the data warehouses."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.datawarehouse import DataWarehouse
from repro.core.patch import Region
from repro.core.variables import CCVariable
from repro.core.varlabel import VarLabel


U = VarLabel("u")
NORM = VarLabel("norm", vartype="reduction")


def make_patch():
    return Grid(extent=(8, 8, 8), layout=(2, 2, 2)).patch((0, 0, 0))


# -- VarLabel ---------------------------------------------------------------

def test_varlabel_validation():
    with pytest.raises(ValueError):
        VarLabel("")
    with pytest.raises(ValueError):
        VarLabel("x", vartype="nodal")
    assert NORM.is_reduction and not U.is_reduction
    assert str(U) == "u"


# -- CCVariable ---------------------------------------------------------------

def test_variable_shape_includes_ghosts():
    var = CCVariable(U, make_patch(), ghosts=1)
    assert var.data.shape == (6, 6, 6)
    assert var.data.flags.f_contiguous  # x is the fast axis


def test_variable_interior_view_writes_through():
    var = CCVariable(U, make_patch(), ghosts=1)
    var.interior[...] = 7.0
    assert var.data[1:-1, 1:-1, 1:-1].min() == 7.0
    assert var.data[0, 0, 0] == 0.0  # ghosts untouched


def test_variable_region_views_use_global_indices():
    patch = make_patch()  # cells (0..4)^3
    var = CCVariable(U, patch, ghosts=1)
    var.region_view(Region((0, 0, 0), (1, 1, 1)))[...] = 3.0
    assert var.data[1, 1, 1] == 3.0
    # ghost cell at (-1, 0, 0)
    var.region_view(Region((-1, 0, 0), (0, 1, 1)))[...] = 9.0
    assert var.data[0, 1, 1] == 9.0


def test_variable_region_out_of_bounds():
    var = CCVariable(U, make_patch(), ghosts=1)
    with pytest.raises(IndexError):
        var.region_view(Region((-2, 0, 0), (0, 1, 1)))
    with pytest.raises(IndexError):
        var.region_view(Region((0, 0, 0), (6, 1, 1)))


def test_pack_unpack_roundtrip():
    patch = make_patch()
    src = CCVariable(U, patch, ghosts=1)
    src.interior[...] = np.arange(64, dtype=float).reshape(4, 4, 4)
    region = patch.face_region(0, +1)
    packed = src.get_region(region)
    assert packed.flags.c_contiguous

    dst = CCVariable(U, patch, ghosts=1)
    dst.set_region(region, packed)
    assert np.array_equal(dst.get_region(region), packed)


def test_unpack_shape_mismatch_rejected():
    patch = make_patch()
    var = CCVariable(U, patch, ghosts=1)
    with pytest.raises(ValueError):
        var.set_region(patch.face_region(0, 1), np.zeros((2, 2, 2)))


def test_variable_rejects_reduction_label_and_negative_ghosts():
    with pytest.raises(TypeError):
        CCVariable(NORM, make_patch())
    with pytest.raises(ValueError):
        CCVariable(U, make_patch(), ghosts=-1)


def test_variable_copy_is_deep():
    var = CCVariable(U, make_patch())
    var.interior[...] = 1.0
    dup = var.copy()
    dup.interior[...] = 2.0
    assert var.interior.max() == 1.0


# -- DataWarehouse ----------------------------------------------------------------

def test_dw_put_get_roundtrip():
    patch = make_patch()
    dw = DataWarehouse(step=1)
    var = dw.allocate_and_put(U, patch, ghosts=1)
    assert dw.get(U, patch) is var
    assert dw.exists(U, patch)


def test_dw_single_assignment():
    patch = make_patch()
    dw = DataWarehouse(step=1)
    dw.allocate_and_put(U, patch)
    with pytest.raises(KeyError, match="single-assignment"):
        dw.allocate_and_put(U, patch)


def test_dw_missing_variable_message():
    dw = DataWarehouse(step=3, rank=2)
    with pytest.raises(KeyError, match="not in DW step 3"):
        dw.get(U, make_patch())


def test_dw_scrub():
    patch = make_patch()
    dw = DataWarehouse(step=1)
    dw.allocate_and_put(U, patch)
    dw.scrub(U, patch)
    assert not dw.exists(U, patch)
    with pytest.raises(KeyError, match="double-scrub"):
        dw.scrub(U, patch)


def test_dw_get_after_scrub_names_the_bug():
    patch = make_patch()
    dw = DataWarehouse(step=2, rank=1)
    dw.allocate_and_put(U, patch)
    dw.scrub(U, patch)
    with pytest.raises(KeyError, match="use-after-scrub"):
        dw.get(U, patch)


def test_dw_put_after_scrub_rejected():
    patch = make_patch()
    dw = DataWarehouse(step=1)
    dw.allocate_and_put(U, patch)
    dw.scrub(U, patch)
    with pytest.raises(KeyError, match="single-assignment"):
        dw.allocate_and_put(U, patch)


def test_dw_observer_sees_access_bugs():
    class Audit:
        def __init__(self):
            self.events = []

        def on_dw_double_put(self, dw, key):
            self.events.append(("double-put", key))

        def on_dw_bad_get(self, dw, key, scrubbed):
            self.events.append(("bad-get", key, scrubbed))

        def on_dw_double_scrub(self, dw, key):
            self.events.append(("double-scrub", key))

    patch = make_patch()
    audit = Audit()
    dw = DataWarehouse(step=1, observer=audit)
    key = ("u", patch.patch_id)
    with pytest.raises(KeyError):
        dw.get(U, patch)  # read-before-put
    dw.allocate_and_put(U, patch)
    with pytest.raises(KeyError):
        dw.allocate_and_put(U, patch)  # double-put
    dw.scrub(U, patch)
    with pytest.raises(KeyError):
        dw.get(U, patch)  # use-after-scrub
    with pytest.raises(KeyError):
        dw.scrub(U, patch)  # double-scrub
    assert audit.events == [
        ("bad-get", key, False),
        ("double-put", key),
        ("bad-get", key, True),
        ("double-scrub", key),
    ]


def test_dw_reductions():
    dw = DataWarehouse(step=1)
    dw.put_reduction(NORM, 4.5)
    assert dw.get_reduction(NORM) == 4.5
    assert dw.has_reduction(NORM)
    dw.put_reduction(NORM, 5.0)  # reductions may be overwritten
    assert dw.get_reduction(NORM) == 5.0
    with pytest.raises(TypeError):
        dw.put_reduction(U, 1.0)
    with pytest.raises(TypeError):
        dw.get_reduction(U)
    with pytest.raises(KeyError):
        dw.get_reduction(VarLabel("other", vartype="reduction"))


def test_dw_inventory_deterministic():
    g = Grid(extent=(8, 8, 8), layout=(2, 2, 2))
    dw = DataWarehouse(step=0)
    for p in reversed(g.patches()):
        dw.allocate_and_put(U, p)
    ids = [v.patch.patch_id for v in dw.grid_variables()]
    assert ids == sorted(ids)
    assert len(dw) == 8
