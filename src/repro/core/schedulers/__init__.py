"""Task schedulers: the paper's Sunway-specific scheduler and its modes.

One scheduler implementation (:class:`~repro.core.schedulers.scheduler.
SunwayScheduler`) supports the three operating modes of paper Sec. V-C,
each resolved at construction to an executor backend
(:mod:`~repro.core.schedulers.backends`):

* ``"async"`` — the contribution: offload a kernel to the CPE cluster and
  *return immediately*, overlapping kernel execution with MPI progress,
  ghost packing, reductions and other MPE tasks (variants ``acc.async``,
  ``acc_simd.async``);
* ``"sync"`` — offload, then spin on the completion flag: no overlap
  (variants ``acc.sync``, ``acc_simd.sync``);
* ``"mpe_only"`` — execute kernels on the MPE without offloading
  (variant ``host.sync``).

:class:`AsyncScheduler`, :class:`SyncScheduler` and
:class:`MPEOnlyScheduler` are convenience subclasses pinning the mode.
The layered machinery underneath — lifecycle events, the communication
and offload engines, selection strategies — is documented in
``docs/ARCHITECTURE.md``.
"""

from repro.core.schedulers.base import (
    DeadlockError,
    ReadinessTracker,
    SchedulerCore,
    SchedulerStats,
    StepContext,
)
from repro.core.schedulers.lifecycle import TaskLifecycle, TaskState
from repro.core.schedulers.modes import AsyncScheduler, MPEOnlyScheduler, SyncScheduler
from repro.core.schedulers.scheduler import SunwayScheduler
from repro.core.schedulers.selection import POLICIES, SelectionPolicy, make_policy

__all__ = [
    "SchedulerStats",
    "DeadlockError",
    "ReadinessTracker",
    "SchedulerCore",
    "StepContext",
    "SunwayScheduler",
    "AsyncScheduler",
    "SyncScheduler",
    "MPEOnlyScheduler",
    "TaskLifecycle",
    "TaskState",
    "SelectionPolicy",
    "POLICIES",
    "make_policy",
]
