"""The validator must be a pure observer: attaching it changes nothing.

Every mode runs the differential problem twice — bare and validated —
and the schedules must match exactly: same per-step times, same per-rank
counters, bit-identical fields.  This is the acceptance gate that lets
the validator default to off without ever being suspected of masking or
causing a schedule difference.
"""

import pytest

from repro.verify import check_nonperturbation


@pytest.mark.parametrize("mode", ["mpe_only", "sync", "async"])
def test_validated_run_is_bit_identical(mode):
    gate = check_nonperturbation(
        mode, nsteps=2, extent=(8, 8, 8), layout=(2, 2, 1), num_ranks=2
    )
    assert gate == {"mode": mode, "identical": True}
