"""Integration: whole-rank failure recovered from a UDA checkpoint."""

import numpy as np
import pytest

from repro.burgers import BurgersProblem
from repro.core.controller import SimulationController
from repro.core.grid import Grid
from repro.faults import FaultConfig, ResiliencePolicy
from repro.faults.injector import RankFailure
from repro.faults.recovery import ResilientRunner

GRID = Grid(extent=(16, 16, 16), layout=(2, 2, 1))
NSTEPS = 12


def reference(num_ranks=4):
    problem = BurgersProblem(GRID)
    return SimulationController(
        GRID, problem.tasks(), problem.init_tasks(), num_ranks=num_ranks, real=True
    ).run(nsteps=NSTEPS, dt=BurgersProblem(GRID).stable_dt())


def fields(dws):
    return {
        v.patch.patch_id: v.interior.copy()
        for dw in dws
        for v in dw.grid_variables()
    }


def test_rank_failure_without_runner_aborts_the_job():
    """A died rank kills a plain run — recovery is the runner's job."""
    problem = BurgersProblem(GRID)
    from repro.faults import FaultInjector

    controller = SimulationController(
        GRID,
        problem.tasks(),
        problem.init_tasks(),
        num_ranks=4,
        real=True,
        faults=FaultInjector(FaultConfig(seed=0, fail_rank=1, fail_at_step=2)),
        resilience=ResiliencePolicy(),
    )
    with pytest.raises(RankFailure):
        controller.run(nsteps=4, dt=problem.stable_dt())


def test_midrun_rank_failure_recovers_from_checkpoint(tmp_path):
    """Rank 2 dies at step 8; the runner replays from the step-5 archive
    on 3 surviving CGs and the final fields match the fault-free run."""
    dt = BurgersProblem(GRID).stable_dt()
    runner = ResilientRunner(
        BurgersProblem,
        GRID,
        nsteps=NSTEPS,
        dt=dt,
        num_ranks=4,
        config=FaultConfig(seed=0, fail_rank=2, fail_at_step=8),
        policy=ResiliencePolicy(checkpoint_every=5),
        archive_root=str(tmp_path / "ck.uda"),
    )
    report = runner.run()

    assert report.rank_failures == 1
    assert report.recoveries == 1
    assert report.num_ranks_start == 4 and report.num_ranks_end == 3
    assert report.stats.rank_recoveries == 1
    # steps 6 and 7 ran, were poisoned by the failure at 8, and replayed
    assert report.steps_replayed == 2
    assert report.stats.steps_replayed == 2
    assert report.checkpoints_written >= 2
    assert report.faults_by_kind.get("rank_failure") == 1

    ref = fields(reference().final_dws)
    got = fields(runner.final_dws)
    assert set(got) == set(ref)
    for pid in ref:
        assert np.array_equal(got[pid], ref[pid]), f"patch {pid} diverged"


def test_recovery_with_concurrent_cpe_and_network_faults(tmp_path):
    """The acceptance scenario: everything at once, physics still exact,
    retries and recoveries all nonzero in the report."""
    dt = BurgersProblem(GRID).stable_dt()
    runner = ResilientRunner(
        BurgersProblem,
        GRID,
        nsteps=NSTEPS,
        dt=dt,
        num_ranks=4,
        config=FaultConfig(
            seed=7,
            kernel_slowdown_prob=0.10,
            kernel_stuck_prob=0.05,
            dma_error_prob=0.05,
            msg_drop_prob=0.05,
            msg_dup_prob=0.03,
            msg_delay_prob=0.05,
            fail_rank=2,
            fail_at_step=8,
        ),
        policy=ResiliencePolicy(checkpoint_every=5),
        archive_root=str(tmp_path / "ck.uda"),
    )
    report = runner.run()

    assert report.rank_failures == 1 and report.recoveries == 1
    assert report.stats.kernel_retries > 0
    assert report.stats.mpi_retries > 0
    assert report.recovery_spans > 0

    ref = fields(reference().final_dws)
    got = fields(runner.final_dws)
    for pid in ref:
        assert np.array_equal(got[pid], ref[pid]), f"patch {pid} diverged"


def test_failure_in_first_segment_restarts_from_scratch(tmp_path):
    """No checkpoint exists yet: recovery falls back to re-initializing."""
    dt = BurgersProblem(GRID).stable_dt()
    runner = ResilientRunner(
        BurgersProblem,
        GRID,
        nsteps=6,
        dt=dt,
        num_ranks=4,
        config=FaultConfig(seed=0, fail_rank=0, fail_at_step=2),
        policy=ResiliencePolicy(checkpoint_every=5),
        archive_root=str(tmp_path / "ck.uda"),
    )
    report = runner.run()
    assert report.recoveries == 1 and report.num_ranks_end == 3

    problem = BurgersProblem(GRID)
    ref_run = SimulationController(
        GRID, problem.tasks(), problem.init_tasks(), num_ranks=4, real=True
    ).run(nsteps=6, dt=dt)
    ref = fields(ref_run.final_dws)
    got = fields(runner.final_dws)
    for pid in ref:
        assert np.array_equal(got[pid], ref[pid])


def test_last_survivor_cannot_recover(tmp_path):
    dt = BurgersProblem(GRID).stable_dt()
    runner = ResilientRunner(
        BurgersProblem,
        GRID,
        nsteps=4,
        dt=dt,
        num_ranks=1,
        config=FaultConfig(seed=0, fail_rank=0, fail_at_step=2),
        policy=ResiliencePolicy(checkpoint_every=2),
        archive_root=str(tmp_path / "ck.uda"),
    )
    with pytest.raises(RuntimeError, match="no survivors"):
        runner.run()


def test_deterministic_reports(tmp_path):
    """Two identical resilient runs produce identical reports."""
    dt = BurgersProblem(GRID).stable_dt()

    def go(root):
        runner = ResilientRunner(
            BurgersProblem,
            GRID,
            nsteps=8,
            dt=dt,
            num_ranks=4,
            config=FaultConfig(seed=3, dma_error_prob=0.1, msg_drop_prob=0.1,
                               fail_rank=1, fail_at_step=6),
            policy=ResiliencePolicy(checkpoint_every=4),
            archive_root=str(root),
        )
        rep = runner.run()
        return rep, fields(runner.final_dws)

    r1, f1 = go(tmp_path / "a.uda")
    r2, f2 = go(tmp_path / "b.uda")
    assert r1 == r2
    assert all(np.array_equal(f1[p], f2[p]) for p in f1)
