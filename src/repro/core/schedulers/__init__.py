"""Task schedulers: the paper's Sunway-specific scheduler and its modes.

One scheduler implementation (:class:`~repro.core.schedulers.scheduler.
SunwayScheduler`) supports the three operating modes of paper Sec. V-C:

* ``"async"`` — the contribution: offload a kernel to the CPE cluster and
  *return immediately*, overlapping kernel execution with MPI progress,
  ghost packing, reductions and other MPE tasks (variants ``acc.async``,
  ``acc_simd.async``);
* ``"sync"`` — offload, then spin on the completion flag: no overlap
  (variants ``acc.sync``, ``acc_simd.sync``);
* ``"mpe_only"`` — execute kernels on the MPE without offloading
  (variant ``host.sync``).

:class:`AsyncScheduler`, :class:`SyncScheduler` and
:class:`MPEOnlyScheduler` are convenience subclasses pinning the mode.
"""

from repro.core.schedulers.base import SchedulerStats, DeadlockError
from repro.core.schedulers.scheduler import SunwayScheduler
from repro.core.schedulers.modes import AsyncScheduler, SyncScheduler, MPEOnlyScheduler

__all__ = [
    "SchedulerStats",
    "DeadlockError",
    "SunwayScheduler",
    "AsyncScheduler",
    "SyncScheduler",
    "MPEOnlyScheduler",
]
