"""CPE offload engine: flights, completion flags, watchdog, fallback.

Tracks every kernel offloaded to a CPE group as a :class:`Flight`
(step 3b of the paper's scheduler), retires completed flights, arms the
completion-timeout watchdog when kernels can hang, and runs the
re-offload / MPE-fallback recovery ladder under the
:class:`~repro.core.schedulers.lifecycle.RetryGovernor`'s verdicts.

:class:`InterferenceModel` is the memory-interference debt model: MPE
and CPEs share one memory controller, so MPE bulk traffic overlapped
with an in-flight kernel is charged back as extra kernel time on
retirement (factor ``interference``); see ``docs/ARCHITECTURE.md`` and
the paper's Sec. VII-C observation on the vectorized kernel.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.schedulers.lifecycle import TaskState
from repro.core.task import DetailedTask, TaskKind
from repro.sunway.athread import CompletionFlag


class InterferenceModel:
    """Accumulates MPE busy time overlapped with in-flight kernels.

    ``on_mpe_busy`` is called for every charged MPE interval; while a
    kernel is in flight the time adds to the debt pool, and the retiring
    kernel pays ``factor * pool`` as extra duration.  With several CPE
    groups the pooled debt goes to whichever kernel retires first (a
    pooled approximation; exact with one group).
    """

    def __init__(self, factor: float):
        self.factor = factor
        #: True while at least one kernel is offloaded.
        self.kernel_inflight = False
        self.overlap_busy = 0.0

    def on_mpe_busy(self, cost: float) -> None:
        if self.kernel_inflight:
            self.overlap_busy += cost

    def take_debt(self) -> float:
        """Drain the pool and return the debt the retiring kernel pays."""
        debt = self.factor * self.overlap_busy
        self.overlap_busy = 0.0
        return debt

    def clear(self) -> None:
        self.kernel_inflight = False
        self.overlap_busy = 0.0


@dataclasses.dataclass
class Flight:
    """One offloaded kernel the engine is tracking."""

    handle: object  # OffloadHandle
    dt: DetailedTask
    #: Fault-free duration estimate (launch + kernel), for straggler and
    #: timeout thresholds.
    expected: float
    #: Watchdog deadline (inf when no policy / no hang risk).
    deadline: float
    t_launch: float
    #: Requested kernel duration (re-used verbatim on a respawn).
    duration: float


class OffloadEngine:
    """Per-timestep offload state for one rank's CPE cluster."""

    def __init__(self, sched, st, comm):
        self.sched = sched
        self.st = st
        self.comm = comm
        #: Offload slot per CPE group -> in-flight kernel.
        self.inflight: dict[int, Flight] = {}
        self.flag = CompletionFlag(sched.sim)
        if sched.validator is not None:
            sched.validator.watch_flag(sched.rank, self.flag)
        #: Tasks whose useful flops were already counted (retries and
        #: fallbacks must not double-count).
        self.flops_counted: set[int] = set()
        self.num_groups = sched.backend.num_groups(sched.athread)
        self.interference = sched.interference_model

    @staticmethod
    def is_offloadable(d: DetailedTask) -> bool:
        return d.task.kind is TaskKind.CPE_KERNEL

    def count_flops(self, dt: DetailedTask) -> None:
        # useful work is counted once per task, however many times a
        # fault forces it to be re-executed
        if dt.dt_id not in self.flops_counted:
            self.flops_counted.add(dt.dt_id)
            self.sched.lifecycle.emit(
                "flops", dt, n=self.sched.costs.kernel_flops(dt.task, dt.patch)
            )

    # ------------------------------------------------------------ launch
    def launch(self, nxt: DetailedTask, group: int) -> Flight:
        """Clear the flag and offload ``nxt`` onto CPE ``group`` (3b iv)."""
        sched = self.sched
        sim = sched.sim
        duration = sched._noise.kernel(sched.costs.cpe_kernel_time(nxt.task, nxt.patch))
        self.flag.clear()
        t_launch = sim.now
        expected = sched.athread.launch_latency + duration
        handle = sched.athread.spawn(
            duration=duration,
            payload=nxt,
            on_complete=sched.kernel_action(self.st, nxt),
            name=nxt.name,
            flag=self.flag,
            group=group,
        )
        deadline = (
            t_launch + sched.policy.kernel_timeout(expected)
            if sched._watchdog
            else float("inf")
        )
        fl = Flight(handle, nxt, expected, deadline, t_launch, duration)
        self.inflight[group] = fl
        self.interference.kernel_inflight = True
        if sched.telemetry is not None:
            sched.telemetry.on_kernel_launch(
                sched.rank,
                nxt.name,
                duration,
                sched.costs.kernel_dma_volume(nxt.task, nxt.patch),
            )
        sched.lifecycle.transition(
            nxt,
            TaskState.RUNNING,
            backend="cpe",
            span=("cpe", nxt.name, t_launch, t_launch + handle.duration),
        )
        self.count_flops(nxt)
        return fl

    # ------------------------------------------------------------ retire
    def any_done(self) -> bool:
        """Whether a completion flag is set (plain fast-path check)."""
        for fl in self.inflight.values():
            if fl.handle.done:
                return True
        return False

    def retire_completed(self) -> _t.Generator:
        """(3b) completion flag set: retire finished offloaded tasks."""
        sched = self.sched
        sim = sched.sim
        progressed = False
        done_groups = [g for g, fl in self.inflight.items() if fl.handle.done]
        for g in done_groups:
            fl = self.inflight.pop(g)
            done_dt = fl.dt
            if not self.inflight:
                self.interference.kernel_inflight = False
            if fl.handle.error is not None:
                # The kernel died mid-flight (simulated DMA fault): its
                # data effects were never published, so re-execution is
                # safe.  Fault-oblivious runs propagate the error.
                self.interference.overlap_busy = 0.0
                if sched.policy is None:
                    raise fl.handle.error
                sched.lifecycle.transition(done_dt, TaskState.FAILED, cause="error")
                yield from self.requeue_or_fallback(done_dt)
                progressed = True
                continue
            sched.lifecycle.transition(done_dt, TaskState.RETIRING)
            debt = self.interference.take_debt()
            if debt > 0:
                # memory interference from overlapped MPE traffic
                # stretched the kernel (see InterferenceModel)
                t0 = sim.now
                yield sim.timeout(debt)
                sched.lifecycle.emit(
                    "interference",
                    done_dt,
                    span=("cpe", f"interference:{done_dt.name}", t0, sim.now),
                )
            if (
                sched.policy is not None
                and fl.handle.duration > sched.policy.straggler_factor * fl.expected
            ):
                sched.lifecycle.emit(
                    "straggler",
                    done_dt,
                    span=("cpe", f"straggler:{done_dt.name}", fl.t_launch, sim.now),
                )
            sched.finish_task(self.st, self.comm, done_dt)
            progressed = True
        return progressed

    def watchdog(self) -> _t.Generator:
        """Abort offload slots whose completion flag never came."""
        sched = self.sched
        sim = sched.sim
        progressed = False
        overdue = [
            g
            for g, fl in self.inflight.items()
            if not fl.handle.done and sim.now >= fl.deadline
        ]
        for g in overdue:
            fl = self.inflight.pop(g)
            sched.athread.abort(g)
            if not self.inflight:
                self.interference.kernel_inflight = False
            self.interference.overlap_busy = 0.0
            sched.lifecycle.transition(
                fl.dt,
                TaskState.FAILED,
                cause="timeout",
                span=("mpe", f"recover-timeout:{fl.dt.name}", fl.t_launch, sim.now),
            )
            yield from self.requeue_or_fallback(fl.dt)
            progressed = True
        return progressed

    # ------------------------------------------------------------ recovery
    def requeue_or_fallback(self, dt: DetailedTask) -> _t.Generator:
        """Retry a failed offload (policy permitting) or run on the MPE."""
        sched = self.sched
        if sched.retry_governor.should_retry(dt):
            sched.lifecycle.transition(dt, TaskState.READY, retry=True)
            self.st.tracker.ready.insert(0, dt)  # retry ahead of fresh work
        else:
            yield from self.mpe_fallback(dt)

    def mpe_fallback(self, dt: DetailedTask) -> _t.Generator:
        # last-resort execution on the management core: slow, but
        # immune to CPE/DMA faults
        sched = self.sched
        sched.lifecycle.transition(dt, TaskState.RUNNING, backend="mpe_fallback")
        action = sched.kernel_action(self.st, dt)
        if action is not None:
            action()
        yield from sched._mpe(
            f"recover-fallback:{dt.name}",
            sched.costs.mpe_kernel_time(dt.task, dt.patch),
        )
        self.count_flops(dt)
        sched.finish_task(self.st, self.comm, dt)

    # ------------------------------------------------------------ sync spin
    def spin_to_completion(self, group: int) -> _t.Generator:
        """Spin on the completion flag: no overlap (Sec. V-C sync mode)."""
        sched = self.sched
        sim = sched.sim
        t0 = sim.now
        fl = self.inflight.pop(group)
        nxt = fl.dt
        while True:
            if sched._watchdog:
                yield sim.any_of(
                    [
                        fl.handle.event,
                        sim.timeout(max(0.0, fl.deadline - sim.now)),
                    ]
                )
            else:
                yield fl.handle.event
            if fl.handle.done and fl.handle.error is None:
                break  # completed cleanly
            if not fl.handle.done:
                # flag never came: watchdog fired
                sched.athread.abort(group)
                sched.lifecycle.transition(nxt, TaskState.FAILED, cause="timeout")
            elif sched.policy is None:
                raise fl.handle.error
            else:
                sched.lifecycle.transition(nxt, TaskState.FAILED, cause="error")
            if sched.retry_governor.should_retry(nxt):
                h2 = sched.athread.spawn(
                    duration=fl.duration,
                    payload=nxt,
                    on_complete=sched.kernel_action(self.st, nxt),
                    name=nxt.name,
                    flag=self.flag,
                    group=group,
                )
                sched.lifecycle.transition(nxt, TaskState.RUNNING, backend="cpe", retry=True)
                fl = Flight(
                    h2,
                    nxt,
                    fl.expected,
                    (
                        sim.now + sched.policy.kernel_timeout(fl.expected)
                        if sched._watchdog
                        else float("inf")
                    ),
                    sim.now,
                    fl.duration,
                )
                continue
            # retries exhausted: execute on the MPE instead
            self.interference.clear()
            sched.lifecycle.emit(
                "spin", nxt, seconds=sim.now - t0, span=("spin", nxt.name, t0, sim.now)
            )
            yield from self.mpe_fallback(nxt)
            return
        self.interference.clear()
        sched.lifecycle.emit(
            "spin", nxt, seconds=sim.now - t0, span=("spin", nxt.name, t0, sim.now)
        )
        sched.finish_task(self.st, self.comm, nxt)

    # ------------------------------------------------------------ prefetch
    def prefetch_candidate(self) -> DetailedTask | None:
        """Next ready kernel whose MPE part can be pre-run (plain check)."""
        st = self.st
        return next(
            (
                d
                for d in st.tracker.ready
                if self.is_offloadable(d) and d.dt_id not in st.prepared
            ),
            None,
        )

    # ------------------------------------------------------------ waiting
    def wait_events(self) -> list:
        """Completion events of every in-flight kernel."""
        return [fl.handle.event for fl in self.inflight.values()]

    def deadline_event(self):
        """Timeout event at the nearest watchdog deadline, if armed."""
        if not (self.sched._watchdog and self.inflight):
            return None
        next_deadline = min(fl.deadline for fl in self.inflight.values())
        if next_deadline < float("inf"):
            sim = self.sched.sim
            return sim.timeout(max(0.0, next_deadline - sim.now))
        return None
