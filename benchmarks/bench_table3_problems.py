"""Table III: problem settings (patch sizes, grids, memory, min CGs)."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import table3, table3_data


@pytest.mark.benchmark(group="table3")
def test_table3_problem_settings(benchmark, publish):
    rows = run_once(benchmark, table3_data)
    publish("table3", table3())

    by_name = {r["problem"]: r for r in rows}
    assert by_name["16x16x512"]["memory_bytes"] == 256 * 1024**2
    assert by_name["128x128x512"]["memory_bytes"] == 16 * 1024**3
    # the paper's starred rows: 64x64x512 crashes on 1 CG etc.
    assert by_name["64x64x512"]["min_cgs"] == 2
    assert by_name["64x128x512"]["min_cgs"] == 4
    assert by_name["128x128x512"]["min_cgs"] == 8
