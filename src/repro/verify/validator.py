"""The online schedule validator: a pure observer of the runtime.

:class:`ScheduleValidator` mirrors every rank's task-lifecycle state
machine from the event bus and checks the invariant catalog
(:mod:`repro.verify.invariants`) as the schedule unfolds:

* readiness — a task enters RUNNING only after its task-graph producers
  retired, its ghost messages were unpacked, and its intra-rank copies
  were applied;
* state-machine legality — every transition is one the lifecycle allows;
* completion-flag protocol — ``faaw`` counts are monotone, never exceed
  launched kernels, and match clean retirements at step end;
* data-warehouse access — no read-before-put, double-put,
  use-after-scrub, double-scrub, or premature scrub;
* LDM budget — every offloaded kernel's tile plan fits the 64 KB
  scratchpad.

The validator is wired in exactly like telemetry: pass
``validator=ScheduleValidator()`` to the controller and it subscribes
one :class:`RankValidator` per timestep scheduler, audits each data
warehouse through its observer hook, and watches each offload engine's
completion flag.  It charges **no simulated time** and mutates **no
runtime state** — a validated run's schedule and physics are
bit-identical to an unvalidated one (enforced by
``tests/verify/test_nonperturbation.py``).
"""

from __future__ import annotations

import collections
import typing as _t

from repro.core.schedulers.lifecycle import _ALLOWED, LifecycleEvent, TaskState
from repro.sunway.ldm import DEFAULT_LDM_BYTES, LDMAllocationError
from repro.verify.invariants import VerificationError, Violation


class ScheduleValidator:
    """Collects violations from every rank, warehouse, and flag.

    Parameters
    ----------
    ldm_bytes:
        Scratchpad budget offloaded tile plans are checked against.
    strict:
        Raise :class:`VerificationError` at the first violation instead
        of collecting (useful under a debugger; the differential harness
        collects).
    window:
        How many recent events to keep in the ring buffer that a repro
        bundle snapshots around the first violation.
    telemetry:
        Optional :class:`~repro.telemetry.collect.RunTelemetry`; when
        given, every violation increments ``verify.violations`` and
        ``verify.violations.<invariant>`` counters.
    """

    def __init__(
        self,
        ldm_bytes: int = DEFAULT_LDM_BYTES,
        strict: bool = False,
        window: int = 64,
        telemetry=None,
    ):
        self.ldm_bytes = int(ldm_bytes)
        self.strict = strict
        self.telemetry = telemetry
        self.violations: list[Violation] = []
        #: Ring buffer of recent event summaries (all ranks interleaved,
        #: in simulated-time order because the bus is synchronous).
        self.recent: collections.deque[dict] = collections.deque(maxlen=window)
        #: Snapshot of :attr:`recent` taken at the first violation.
        self.first_window: list[dict] | None = None
        self._ranks: dict[int, "RankValidator"] = {}
        self._flags: dict[int, "FlagAudit"] = {}
        self._dw_audit = DWAudit(self)

    # ------------------------------------------------------------ wiring
    def subscriber_for(self, rank: int, graph, costs) -> "RankValidator":
        """Lifecycle-bus subscriber for one rank's timestep scheduler."""
        rv = RankValidator(self, rank, graph, costs)
        self._ranks[rank] = rv
        return rv

    def watch_dw(self, dw) -> None:
        """Audit a data warehouse through its observer hook."""
        dw.observer = self._dw_audit

    def watch_flag(self, rank: int, flag) -> None:
        """Audit one offload engine's completion flag."""
        audit = FlagAudit(self, rank)
        self._flags[rank] = audit
        flag.observer = audit

    # ------------------------------------------------------------ recording
    def note(self, summary: dict) -> None:
        """Append one event summary to the ring buffer."""
        self.recent.append(summary)

    def record(self, violation: Violation) -> None:
        """File a violation (and raise, in strict mode)."""
        self.violations.append(violation)
        if self.first_window is None:
            self.first_window = list(self.recent)
        if self.telemetry is not None:
            self.telemetry.registry.inc("verify.violations")
            self.telemetry.registry.inc(f"verify.violations.{violation.invariant}")
        if self.strict:
            raise VerificationError(violation.render())

    def finalize_flag(self, rank: int) -> None:
        """Step-boundary flag reconciliation: bumps vs clean retires."""
        audit = self._flags.get(rank)
        rv = self._ranks.get(rank)
        if audit is None or audit.finalized or rv is None:
            return
        audit.finalized = True
        if audit.faaws != rv.clean_cpe_retires:
            self.record(
                Violation(
                    "flag-undercount" if audit.faaws < rv.clean_cpe_retires
                    else "flag-overcount",
                    rank=rank,
                    step=rv.step,
                    task=None,
                    t=rv.last_t,
                    detail=(
                        f"completion flag bumped {audit.faaws} time(s) but "
                        f"{rv.clean_cpe_retires} offloaded kernel(s) retired "
                        "cleanly this step"
                    ),
                )
            )

    def finish(self) -> None:
        """End-of-run reconciliation (the last step has no successor)."""
        for rank in list(self._flags):
            self.finalize_flag(rank)

    # ------------------------------------------------------------ results
    @property
    def ok(self) -> bool:
        """Whether the run (so far) is violation-free."""
        return not self.violations

    @property
    def first_violation(self) -> Violation | None:
        return self.violations[0] if self.violations else None

    def report(self) -> dict:
        """Summary dict: counts per invariant plus the full list."""
        self.finish()
        per_invariant: dict[str, int] = {}
        for v in self.violations:
            per_invariant[v.invariant] = per_invariant.get(v.invariant, 0) + 1
        return {
            "ok": self.ok,
            "num_violations": len(self.violations),
            "per_invariant": per_invariant,
            "violations": [v.to_dict() for v in self.violations],
        }


class RankValidator:
    """Mirror of one rank's per-timestep lifecycle state machine.

    Subscribed to the rank's lifecycle bus; consumes the same events the
    stats/telemetry subscribers do and rebuilds the readiness ledger
    independently, from the task graph's static structure — so a
    scheduler bug that mis-counts blockers cannot fool it.
    """

    def __init__(self, owner: ScheduleValidator, rank: int, graph, costs):
        self.owner = owner
        self.rank = rank
        self.graph = graph
        self.costs = costs
        # -- static requirements, computed once per dt_id ---------------
        self._deps: dict[int, frozenset[int]] = {}
        self._n_recvs: dict[int, int] = {}
        self._n_copies: dict[int, int] = {}
        #: (label, patch_id) -> local task dt_ids reading it from old DW.
        self._old_readers: dict[tuple[str, int], list[int]] = {}
        self._names: dict[int, str] = {}
        self._static_ready = False
        # -- per-step mutable state -------------------------------------
        self.step = -1
        self.last_t = 0.0
        self.state: dict[int, TaskState] = {}
        self.done: set[int] = set()
        self.recv_count: dict[int, int] = {}
        self.copy_count: dict[int, int] = {}
        self.cpe_launches = 0
        self.clean_cpe_retires = 0
        self.backend_of: dict[int, str] = {}

    # ------------------------------------------------------------ static
    def _compute_static(self, tasks) -> None:
        graph = self.graph
        for dt in tasks:
            did = dt.dt_id
            if did in self._deps:
                continue
            self._names[did] = dt.name
            self._deps[did] = frozenset(graph.internal_deps[did])
            self._n_recvs[did] = len(graph.recvs_for(dt))
            self._n_copies[did] = len(graph.copies_for(dt))
            if dt.patch is not None:
                pid = dt.patch.patch_id
                for req in dt.task.requires:
                    if req.dw == "old" and not req.label.is_reduction:
                        self._old_readers.setdefault(
                            (req.label.name, pid), []
                        ).append(did)

    # ------------------------------------------------------------ helpers
    def _flag(self, invariant: str, detail: str, dt=None) -> None:
        self.owner.record(
            Violation(
                invariant,
                rank=self.rank,
                step=self.step,
                task=dt.name if dt is not None else None,
                t=self.last_t,
                detail=detail,
            )
        )

    def _check_runnable(self, dt) -> None:
        """Readiness contract for a task entering RUNNING."""
        did = dt.dt_id
        missing = [
            self._names.get(d, str(d))
            for d in self._deps.get(did, frozenset())
            if d not in self.done
        ]
        if missing:
            self._flag(
                "run-before-dep",
                f"{dt.name} started with producer(s) not done: "
                + ", ".join(sorted(missing)),
                dt,
            )
        need = self._n_recvs.get(did, 0)
        got = self.recv_count.get(did, 0)
        if got < need:
            self._flag(
                "run-before-recv",
                f"{dt.name} started with {got}/{need} ghost message(s) unpacked",
                dt,
            )
        need = self._n_copies.get(did, 0)
        got = self.copy_count.get(did, 0)
        if got < need:
            self._flag(
                "run-before-copy",
                f"{dt.name} started with {got}/{need} local ghost copies applied",
                dt,
            )

    def _check_ldm(self, dt) -> None:
        """The offloaded kernel's tile plan must fit the LDM budget."""
        budget = self.owner.ldm_bytes
        try:
            ws = self.costs.tile_plan(dt.task, dt.patch).ldm_working_set()
        except LDMAllocationError as exc:
            self._flag("ldm-overflow", f"{dt.name}: no tile plan fits LDM ({exc})", dt)
            return
        if ws > budget:
            self._flag(
                "ldm-overflow",
                f"{dt.name}: tile working set {ws} B exceeds LDM budget {budget} B",
                dt,
            )

    # ------------------------------------------------------------ the bus
    def __call__(self, ev: LifecycleEvent) -> None:
        self.last_t = ev.t
        kind = ev.kind
        if kind == "step-begin":
            # reconcile the previous step's completion flag before the
            # counters reset (the new step's flag is watched afterwards)
            self.owner.finalize_flag(self.rank)
            tasks = ev.info.get("tasks", ())
            self._compute_static(tasks)
            self.step = ev.info.get("step", self.step + 1)
            self.state = {dt.dt_id: TaskState.PENDING for dt in tasks}
            self.done = set()
            self.recv_count = {}
            self.copy_count = {}
            self.cpe_launches = 0
            self.clean_cpe_retires = 0
            self.backend_of = {}
            self.owner.note(
                {"rank": self.rank, "t": ev.t, "kind": "step-begin", "step": self.step}
            )
            return
        dt = ev.dt
        if kind == "transition":
            state = ev.state
            self.owner.note(
                {
                    "rank": self.rank,
                    "t": ev.t,
                    "kind": state.name,
                    "task": dt.name,
                    **{
                        k: v
                        for k, v in ev.info.items()
                        if k in ("backend", "cause", "retry")
                    },
                }
            )
            cur = self.state.get(dt.dt_id)
            if cur is None:
                self._flag(
                    "unknown-task",
                    f"{dt.name} is not part of timestep {self.step}",
                    dt,
                )
                self.state[dt.dt_id] = state  # track it anyway
                return
            if state not in _ALLOWED[cur]:
                self._flag(
                    "illegal-transition",
                    f"{dt.name}: {cur.name} -> {state.name}",
                    dt,
                )
            self.state[dt.dt_id] = state
            if state is TaskState.RUNNING:
                self._check_runnable(dt)
                backend = ev.info.get("backend")
                if backend is not None:
                    self.backend_of[dt.dt_id] = backend
                if backend == "cpe":
                    self.cpe_launches += 1
                    self._check_ldm(dt)
            elif state is TaskState.DONE:
                self.done.add(dt.dt_id)
                if self.backend_of.get(dt.dt_id) == "cpe":
                    self.clean_cpe_retires += 1
        elif kind == "msg-recv":
            if dt is not None:
                self.recv_count[dt.dt_id] = self.recv_count.get(dt.dt_id, 0) + 1
            self.owner.note(
                {"rank": self.rank, "t": ev.t, "kind": "msg-recv",
                 "task": dt.name if dt is not None else None}
            )
        elif kind == "local-copy":
            if dt is not None:
                self.copy_count[dt.dt_id] = self.copy_count.get(dt.dt_id, 0) + 1
            self.owner.note(
                {"rank": self.rank, "t": ev.t, "kind": "local-copy",
                 "task": dt.name if dt is not None else None}
            )
        elif kind == "scrubbed":
            label = ev.info.get("label")
            pid = ev.info.get("patch")
            self.owner.note(
                {"rank": self.rank, "t": ev.t, "kind": "scrubbed",
                 "label": label, "patch": pid}
            )
            for did in self._old_readers.get((label, pid), ()):
                if self.state.get(did) is not TaskState.DONE:
                    st = self.state.get(did)
                    self._flag(
                        "scrub-early",
                        f"old {label!r}@p{pid} scrubbed while reader "
                        f"{self._names.get(did, did)} is "
                        f"{st.name if st is not None else 'unregistered'}",
                    )


class FlagAudit:
    """Observer of one step's completion flag (``faaw`` protocol)."""

    def __init__(self, owner: ScheduleValidator, rank: int):
        self.owner = owner
        self.rank = rank
        #: Total clean completion bumps observed this step.
        self.faaws = 0
        self.finalized = False

    def on_clear(self, flag, old_value: int) -> None:
        pass  # clears precede launches; nothing to check

    def on_faaw(self, flag, old: int, new: int) -> None:
        rv = self.owner._ranks.get(self.rank)
        step = rv.step if rv is not None else -1
        t = rv.last_t if rv is not None else 0.0
        if new <= old:
            self.owner.record(
                Violation(
                    "flag-nonmonotone",
                    rank=self.rank,
                    step=step,
                    task=None,
                    t=t,
                    detail=f"faaw moved the counter {old} -> {new}",
                )
            )
        self.faaws += 1
        launches = rv.cpe_launches if rv is not None else 0
        if self.faaws > launches:
            self.owner.record(
                Violation(
                    "flag-overcount",
                    rank=self.rank,
                    step=step,
                    task=None,
                    t=t,
                    detail=(
                        f"flag bumped {self.faaws} time(s) with only "
                        f"{launches} kernel(s) offloaded this step"
                    ),
                )
            )


class DWAudit:
    """Observer of every watched data warehouse's access bugs.

    The warehouse raises its own :class:`KeyError` after notifying us;
    recording here attributes the breach to the running schedule even if
    the raise is swallowed upstream.
    """

    def __init__(self, owner: ScheduleValidator):
        self.owner = owner

    def _step_t(self, dw) -> tuple[int, float]:
        rv = self.owner._ranks.get(dw.rank)
        return (rv.step, rv.last_t) if rv is not None else (dw.step, 0.0)

    def _record(self, dw, invariant: str, key: tuple[str, int], what: str) -> None:
        step, t = self._step_t(dw)
        label, pid = key
        self.owner.record(
            Violation(
                invariant,
                rank=dw.rank,
                step=step,
                task=None,
                t=t,
                detail=f"{what}: {label!r}@p{pid} in DW generation {dw.step}",
            )
        )

    def on_dw_double_put(self, dw, key) -> None:
        self._record(dw, "dw-double-put", key, "second put")

    def on_dw_bad_get(self, dw, key, scrubbed: bool) -> None:
        if scrubbed:
            self._record(dw, "dw-use-after-scrub", key, "read of scrubbed variable")
        else:
            self._record(dw, "dw-read-before-put", key, "read before any put")

    def on_dw_double_scrub(self, dw, key) -> None:
        self._record(dw, "dw-double-scrub", key, "second scrub")
