"""The per-timestep run ledger: where the time went, step by step.

One :class:`LedgerStep` per timestep records wall and simulated time,
per-rank MPE/CPE busy and idle seconds, the overlap fraction (the
paper's Sec. VII-C quantity), comm-wait, and the step's metric deltas
(messages, bytes, flops, kernels, resilience events) summed over ranks.
The ledger serializes to JSONL — a ``manifest`` provenance line, one
``step`` line per timestep, a closing ``metrics`` line with the
registry snapshot — so runs can be archived, diffed, and regression-
gated with :func:`compare_ledgers` on *overlap fraction*, not just wall
time.

Determinism contract: the DES is deterministic, so two identical runs
produce byte-identical ledgers except for the manifest's ``created_at``
timestamp (pinned by ``tests/telemetry/test_ledger.py``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import subprocess

from repro.core.trace import clip_intervals, intersect_total, merge_intervals

#: Bucket keys folded into each step line (sum over ranks).
_STEP_TOTAL_KEYS = (
    "tasks_done",
    "kernels_offloaded",
    "kernels_mpe",
    "msgs_sent",
    "bytes_sent",
    "msgs_recv",
    "local_copies",
    "reductions",
    "scrubbed",
    "flops",
    "dma_bytes",
    "kernel_timeouts",
    "kernel_retries",
    "mpe_fallbacks",
    "stragglers",
)


def git_revision(repo_dir: str | None = None) -> str | None:
    """Best-effort ``git rev-parse HEAD`` for the run manifest."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclasses.dataclass
class LedgerStep:
    """One timestep's accounting, all ranks."""

    step: int
    #: Global wall seconds of the step (max over ranks), simulated.
    wall: float
    #: Simulation time reached at the end of the step.
    sim_time: float
    #: Per-rank lane seconds within this step's window.
    mpe_busy: list[float]
    cpe_busy: list[float]
    overlap: list[float]
    #: Per-rank seconds the MPE spent blocked on events (MPI, kernels).
    comm_wait: list[float]
    #: Step metric deltas summed over ranks (see ``_STEP_TOTAL_KEYS``).
    totals: dict[str, float]

    @property
    def overlap_fraction(self) -> float:
        """Overlapped share of CPE busy time this step (0 when no CPE)."""
        cpe = sum(self.cpe_busy)
        return sum(self.overlap) / cpe if cpe > 0 else 0.0

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["overlap_fraction"] = self.overlap_fraction
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LedgerStep":
        d = dict(d)
        d.pop("overlap_fraction", None)
        d.pop("kind", None)
        return cls(**d)


@dataclasses.dataclass
class RunLedger:
    """A run manifest, its per-step records, and the final metric state."""

    manifest: dict
    steps: list[LedgerStep]
    metrics: dict = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------ aggregates
    @property
    def total_wall(self) -> float:
        return sum(s.wall for s in self.steps)

    @property
    def mean_overlap_fraction(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.overlap_fraction for s in self.steps) / len(self.steps)

    @property
    def total_comm_wait(self) -> float:
        return sum(sum(s.comm_wait) for s in self.steps)

    def overlap_per_rank(self, rank: int) -> float:
        """Total overlapped seconds of one rank across all steps."""
        return sum(s.overlap[rank] for s in self.steps)

    # ------------------------------------------------------------ (de)serialize
    def to_jsonl(self) -> str:
        lines = [json.dumps({"kind": "manifest", **self.manifest}, sort_keys=True)]
        for s in self.steps:
            lines.append(json.dumps({"kind": "step", **s.to_dict()}, sort_keys=True))
        if self.metrics:
            lines.append(json.dumps({"kind": "metrics", "metrics": self.metrics}, sort_keys=True))
        return "\n".join(lines) + "\n"

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def read(cls, path: str | pathlib.Path) -> "RunLedger":
        manifest: dict = {}
        steps: list[LedgerStep] = []
        metrics: dict = {}
        for line in pathlib.Path(path).read_text().splitlines():
            if not line.strip():
                continue
            d = json.loads(line)
            kind = d.pop("kind", "step")
            if kind == "manifest":
                manifest = d
            elif kind == "metrics":
                metrics = d.get("metrics", {})
            else:
                steps.append(LedgerStep.from_dict(d))
        return cls(manifest=manifest, steps=steps, metrics=metrics)


def build_ledger(result, telemetry, manifest: dict) -> RunLedger:
    """Fold a run's trace, step boundaries and buckets into a ledger.

    ``result`` is a :class:`~repro.core.controller.RunResult` from a run
    with tracing enabled and per-rank step boundaries recorded;
    ``telemetry`` a :class:`~repro.telemetry.collect.RunTelemetry` (may
    be ``None`` — bucket-derived columns then read zero).
    """
    ranks = result.num_ranks
    boundaries = result.rank_step_ends
    if boundaries is None:
        raise ValueError("run has no per-rank step boundaries (telemetry off?)")
    # Merged busy intervals per rank/lane, clipped per step window below.
    mpe_merged = []
    cpe_merged = []
    for r in range(ranks):
        mpe_merged.append(merge_intervals([(s.t0, s.t1) for s in result.trace.spans_for(r, "mpe")]))
        cpe_merged.append(merge_intervals([(s.t0, s.t1) for s in result.trace.spans_for(r, "cpe")]))

    # Simulation time advances linearly; recover dt from the run result
    # (the manifest's dt takes precedence when recorded).
    t0 = manifest.get("t0", 0.0)
    dt = manifest.get("dt", (result.sim_time - t0) / result.nsteps if result.nsteps else 0.0)
    steps: list[LedgerStep] = []
    prev_global = max(boundaries[r][0] for r in range(ranks))
    for s in range(1, result.nsteps + 1):
        mpe_busy, cpe_busy, overlap, comm_wait = [], [], [], []
        for r in range(ranks):
            lo, hi = boundaries[r][s - 1], boundaries[r][s]
            m = clip_intervals(mpe_merged[r], lo, hi)
            c = clip_intervals(cpe_merged[r], lo, hi)
            mpe_busy.append(sum(b - a for a, b in m))
            cpe_busy.append(sum(b - a for a, b in c))
            overlap.append(intersect_total(m, c))
            bucket = telemetry.step_buckets.get((r, s), {}) if telemetry else {}
            comm_wait.append(
                bucket.get("idle_seconds", 0.0) + bucket.get("spin_seconds", 0.0)
            )
        cur_global = max(boundaries[r][s] for r in range(ranks))
        step_totals = telemetry.step_totals(s) if telemetry else {}
        steps.append(
            LedgerStep(
                step=s,
                wall=cur_global - prev_global,
                sim_time=t0 + s * dt,
                mpe_busy=mpe_busy,
                cpe_busy=cpe_busy,
                overlap=overlap,
                comm_wait=comm_wait,
                totals={k: step_totals.get(k, 0) for k in _STEP_TOTAL_KEYS},
            )
        )
        prev_global = cur_global
    metrics = telemetry.registry.snapshot() if telemetry else {}
    return RunLedger(manifest=manifest, steps=steps, metrics=metrics)


def compare_ledgers(
    baseline: RunLedger,
    candidate: RunLedger,
    max_wall_ratio: float = 1.05,
    min_overlap_delta: float = -0.05,
    max_comm_wait_ratio: float = 1.10,
) -> list[str]:
    """Regression-check ``candidate`` against ``baseline``.

    Returns a list of human-readable violations (empty = pass):

    * total wall time must not exceed ``baseline * max_wall_ratio``;
    * mean overlap fraction must not fall more than
      ``-min_overlap_delta`` below the baseline (the paper's async win
      must not silently erode even when wall time still looks fine);
    * total comm-wait must not exceed ``baseline * max_comm_wait_ratio``.

    Benchmarks gate on this so perf PRs are judged on *why* the time
    went, not just how much of it.
    """
    issues: list[str] = []
    bw, cw = baseline.total_wall, candidate.total_wall
    if bw > 0 and cw > bw * max_wall_ratio:
        issues.append(
            f"wall time regressed: {cw:.6g}s vs baseline {bw:.6g}s "
            f"(> {max_wall_ratio:.2f}x)"
        )
    bo, co = baseline.mean_overlap_fraction, candidate.mean_overlap_fraction
    if co - bo < min_overlap_delta:
        issues.append(
            f"overlap fraction dropped: {co:.3f} vs baseline {bo:.3f} "
            f"(delta {co - bo:+.3f} < {min_overlap_delta:+.3f})"
        )
    bcw, ccw = baseline.total_comm_wait, candidate.total_comm_wait
    if bcw > 0 and ccw > bcw * max_comm_wait_ratio:
        issues.append(
            f"comm-wait regressed: {ccw:.6g}s vs baseline {bcw:.6g}s "
            f"(> {max_comm_wait_ratio:.2f}x)"
        )
    if baseline.steps and candidate.steps and len(baseline.steps) != len(candidate.steps):
        issues.append(
            f"step count differs: {len(candidate.steps)} vs baseline {len(baseline.steps)}"
        )
    return issues
